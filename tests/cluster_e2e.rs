//! End-to-end tests for the distributed sweep cluster: a 2-worker
//! cluster's fetched report must be byte-identical to the offline CLI,
//! a worker that dies holding a lease must not stall the sweep or
//! duplicate results (its shard is re-leased and the re-lease is
//! visible in /metrics), the merge must be exactly-once under
//! duplicate deliveries, and a restarted coordinator must remember its
//! merged shards from the journal.

use mpstream_cluster::shard::MergedShard;
use mpstream_cluster::{Coordinator, CoordinatorOpts, ShardCounters, Worker, WorkerOpts};
use mpstream_core::checkpoint;
use mpstream_core::cli as core_cli;
use mpstream_core::json::parse_flat_object;
use mpstream_serve::client::http_request;
use mpstream_serve::spec::request_to_spec;
use mpstream_serve::ServeOpts;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("mpstream-cluster-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bind a coordinator on a free port over `dir` and run it on a
/// thread. Returns `(addr, shutdown handle, join handle)`.
fn start_coordinator(
    dir: &Path,
    lease: Duration,
    shard_points: usize,
) -> (
    String,
    mpstream_serve::server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let coordinator = Coordinator::bind(CoordinatorOpts {
        serve: ServeOpts {
            addr: "127.0.0.1:0".into(),
            store_dir: dir.to_path_buf(),
            http_workers: 2,
            queue_capacity: 4,
            ..ServeOpts::default()
        },
        lease,
        shard_points,
    })
    .unwrap();
    let addr = coordinator.local_addr().unwrap().to_string();
    let handle = coordinator.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || coordinator.run());
    (addr, handle, join)
}

/// Bind an in-process worker joined to `addr` and run it on a thread.
fn start_worker(
    join_addr: &str,
    dir: &Path,
) -> (
    Arc<AtomicBool>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let worker = Worker::bind(WorkerOpts {
        join: join_addr.to_string(),
        serve: ServeOpts {
            addr: "127.0.0.1:0".into(),
            store_dir: dir.to_path_buf(),
            http_workers: 2,
            queue_capacity: 4,
            ..ServeOpts::default()
        },
        poll: Duration::from_millis(25),
        trace: None,
        ..WorkerOpts::default()
    })
    .unwrap();
    let stop = worker.stop_flag();
    let join = std::thread::spawn(move || worker.run());
    (stop, join)
}

fn sweep_request(args: &[&str]) -> core_cli::CliRequest {
    let mut argv = vec!["sweep".to_string()];
    argv.extend(args.iter().map(|s| s.to_string()));
    core_cli::parse_args(&argv).unwrap().unwrap()
}

/// The deterministic quick sweep both byte-identity tests use:
/// `--jobs 1` keeps the build-cache column a pure function of the
/// config order, on workers exactly as offline.
const SWEEP_ARGS: [&str; 12] = [
    "--kernel",
    "copy",
    "--kernel",
    "triad",
    "--size",
    "131072",
    "--vectors",
    "1,2,4,8",
    "--ntimes",
    "1",
    "--jobs",
    "1",
];

fn submit(addr: &str, spec: &str) -> u64 {
    let reply = http_request(addr, "POST", "/jobs", spec.as_bytes()).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("id")?.as_u64())
        .expect("submit reply has an id")
}

fn poll_done(addr: &str, id: u64, what: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = http_request(addr, "GET", &format!("/jobs/{id}"), b"").unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let obj = parse_flat_object(reply.text().trim()).unwrap();
        let state = obj
            .get("state")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        assert_ne!(state, "failed", "job failed: {}", reply.text());
        if state == "done" {
            return obj.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn fetch_report(addr: &str, id: u64) -> String {
    let reply = http_request(addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    reply.text()
}

/// The value of a bare (unlabelled) metric in Prometheus exposition.
fn metric_value(metrics_text: &str, name: &str) -> u64 {
    metrics_text
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found:\n{metrics_text}"))
}

/// Two workers, one coordinator: the fetched report must be the exact
/// bytes the offline CLI prints, and the cluster gauges must account
/// every shard exactly once.
#[test]
fn two_worker_cluster_report_is_byte_identical_to_offline_cli() {
    let req = sweep_request(&SWEEP_ARGS);
    let offline = core_cli::execute(&req).unwrap();
    let total = core_cli::sweep_param_space(&req).configs().len();

    let dir = temp_dir("identical");
    let (addr, handle, join) = start_coordinator(&dir, Duration::from_secs(5), 3);
    let (stop_a, join_a) = start_worker(&addr, &dir.join("worker-a"));
    let (stop_b, join_b) = start_worker(&addr, &dir.join("worker-b"));

    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let done = poll_done(&addr, id, "cluster job done");
    assert_eq!(done as usize, total);
    assert_eq!(
        fetch_report(&addr, id),
        offline,
        "cluster report differs from offline CLI"
    );

    // 8 configs in shards of 3 -> 3 shards, each merged exactly once.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap().text();
    assert_eq!(
        metric_value(&metrics, "mpstream_cluster_shards_merged_total"),
        3
    );
    assert_eq!(metric_value(&metrics, "mpstream_cluster_shards_queued"), 0);
    assert_eq!(metric_value(&metrics, "mpstream_cluster_workers_live"), 2);
    assert_eq!(
        metric_value(&metrics, "mpstream_points_executed_total"),
        total as u64
    );

    // The merged checkpoint holds each config once (compaction after
    // the merge found nothing to supersede).
    let stats = checkpoint::Checkpoint::compact(dir.join(format!("job-{id}.jsonl"))).unwrap();
    assert_eq!(stats.kept, total);
    assert_eq!(stats.superseded, 0, "a shard was double-merged");

    stop_a.store(true, Ordering::Release);
    stop_b.store(true, Ordering::Release);
    join_a.join().unwrap().unwrap();
    join_b.join().unwrap().unwrap();
    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that leases a shard and dies (registered over raw HTTP,
/// never heartbeats, never completes) must not stall the sweep: its
/// lease expires, the shard is re-leased to live workers, the re-lease
/// count lands in /metrics, and the report is still byte-identical.
#[test]
fn dead_worker_shard_is_released_without_duplicating_results() {
    let req = sweep_request(&SWEEP_ARGS);
    let offline = core_cli::execute(&req).unwrap();
    let total = core_cli::sweep_param_space(&req).configs().len();

    let dir = temp_dir("dead-worker");
    let (addr, handle, join) = start_coordinator(&dir, Duration::from_millis(750), 2);

    // The doomed worker registers and grabs the first shard before any
    // live worker exists, then vanishes.
    let reply = http_request(&addr, "POST", "/register", b"{\"addr\":\"\"}").unwrap();
    assert_eq!(reply.status, 200);
    let ghost = parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("worker")?.as_u64())
        .unwrap();
    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let lease_body = format!("{{\"worker\":{ghost}}}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = http_request(&addr, "POST", "/lease", lease_body.as_bytes()).unwrap();
        if reply.status == 200 {
            break;
        }
        assert_eq!(reply.status, 204, "{}", reply.text());
        assert!(Instant::now() < deadline, "ghost worker never got a lease");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (stop_a, join_a) = start_worker(&addr, &dir.join("worker-a"));
    let (stop_b, join_b) = start_worker(&addr, &dir.join("worker-b"));
    let done = poll_done(&addr, id, "job done despite a dead worker");
    assert_eq!(done as usize, total);
    assert_eq!(
        fetch_report(&addr, id),
        offline,
        "report differs after a shard re-lease"
    );

    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap().text();
    assert!(
        metric_value(&metrics, "mpstream_cluster_shard_releases_total") >= 1,
        "expected at least one re-lease:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "mpstream_cluster_workers_lost") >= 1,
        "the ghost worker should be marked lost:\n{metrics}"
    );

    // Exactly-once despite the re-lease: each config appears once.
    let stats = checkpoint::Checkpoint::compact(dir.join(format!("job-{id}.jsonl"))).unwrap();
    assert_eq!(stats.kept, total);
    assert_eq!(stats.superseded, 0, "a re-leased shard was double-merged");

    stop_a.store(true, Ordering::Release);
    stop_b.store(true, Ordering::Release);
    join_a.join().unwrap().unwrap();
    join_b.join().unwrap().unwrap();
    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The coordinator streams merged shard records live over
/// `GET /jobs/<id>/stream`: a client watching while two workers chew
/// through shards receives exactly the records the merged checkpoint
/// holds, in merge (append) order, closed by a `done` status line.
#[test]
fn coordinator_streams_merged_shard_records_live() {
    use mpstream_serve::client::{http_stream_keyed, ClientOpts, StreamReply};

    let req = sweep_request(&SWEEP_ARGS);
    let total = core_cli::sweep_param_space(&req).configs().len();

    let dir = temp_dir("stream");
    let (addr, handle, join) = start_coordinator(&dir, Duration::from_secs(5), 3);
    let (stop_a, join_a) = start_worker(&addr, &dir.join("worker-a"));
    let (stop_b, join_b) = start_worker(&addr, &dir.join("worker-b"));

    let id = submit(&addr, &request_to_spec(&req).unwrap());

    // Tail the stream while the shards land.
    let reply = http_stream_keyed(
        &addr,
        &format!("/jobs/{id}/stream"),
        None,
        &ClientOpts::default(),
    )
    .unwrap();
    let mut reader = match reply {
        StreamReply::Open(r) => r,
        StreamReply::Refused(r) => panic!("stream refused: {} {}", r.status, r.text()),
    };
    let mut streamed = Vec::new();
    let mut status = None;
    while let Some(line) = reader.next_line().unwrap() {
        if line.starts_with(':') {
            continue;
        }
        let obj = parse_flat_object(&line).unwrap();
        if obj.contains_key("key") {
            streamed.push(line);
        } else {
            status = Some(line);
        }
    }
    let status = status.expect("stream ended without a status line");
    let sobj = parse_flat_object(&status).unwrap();
    assert_eq!(sobj.get("state").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(
        sobj.get("done").and_then(|v| v.as_u64()),
        Some(total as u64)
    );

    // The streamed set is exactly what the results endpoint serves —
    // same records, same merge order, same bytes.
    let fetched =
        http_request(&addr, "GET", &format!("/jobs/{id}/results?limit=1000"), b"").unwrap();
    assert_eq!(fetched.status, 200);
    let fetched: Vec<String> = fetched.text().lines().map(str::to_string).collect();
    assert_eq!(
        streamed, fetched,
        "streamed shard records differ from the merged checkpoint"
    );
    assert_eq!(streamed.len(), total);

    stop_a.store(true, Ordering::Release);
    stop_b.store(true, Ordering::Release);
    join_a.join().unwrap().unwrap();
    join_b.join().unwrap().unwrap();
    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Drive the wire protocol by hand: a duplicate `/complete` for an
/// already-merged shard must be refused, and a restarted coordinator
/// must replay the shard journal (merged shards survive restarts).
#[test]
fn duplicate_complete_is_refused_and_journal_survives_restart() {
    let req = sweep_request(&SWEEP_ARGS);
    let engine = core_cli::build_engine(&req, None);
    let offline = core_cli::run_sweep(&engine, &req, None);
    let report = core_cli::render_sweep_report(&req, &offline);
    let total = offline.points.len();

    let dir = temp_dir("dup");
    // One shard covers the whole sweep.
    let (addr, handle, join) = start_coordinator(&dir, Duration::from_secs(30), total);

    let reply = http_request(&addr, "POST", "/register", b"{\"addr\":\"\"}").unwrap();
    let me = parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("worker")?.as_u64())
        .unwrap();
    let id = submit(&addr, &request_to_spec(&req).unwrap());

    // Claim the single shard.
    let lease_body = format!("{{\"worker\":{me}}}");
    let lease = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let reply = http_request(&addr, "POST", "/lease", lease_body.as_bytes()).unwrap();
            if reply.status == 200 {
                break mpstream_cluster::Lease::parse(reply.text().trim()).unwrap();
            }
            assert!(Instant::now() < deadline, "never got the shard lease");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    assert_eq!((lease.start, lease.end), (0, total));

    // Deliver the offline outcomes as the shard's results.
    let header = MergedShard {
        shard: lease.shard.clone(),
        job: id,
        start: lease.start,
        end: lease.end,
        counters: ShardCounters {
            cache_hits: offline.cache.hits,
            cache_misses: offline.cache.misses,
            retries: offline.retry.retries,
            transient_errors: offline.retry.transient_errors,
            gave_up: offline.retry.gave_up,
            panics_isolated: offline.retry.panics_isolated,
            fault_build: offline.faults.build,
            fault_timeout: offline.faults.timeout,
            fault_device_lost: offline.faults.device_lost,
            fault_bit_flip: offline.faults.bit_flip,
        },
    };
    let mut body = header.render();
    body.push('\n');
    for point in &offline.points {
        body.push_str(&checkpoint::render_record(point));
        body.push('\n');
    }
    let first = http_request(&addr, "POST", "/complete", body.as_bytes()).unwrap();
    assert_eq!(first.status, 200);
    assert!(first.text().contains("\"merged\":true"), "{}", first.text());

    let second = http_request(&addr, "POST", "/complete", body.as_bytes()).unwrap();
    assert_eq!(second.status, 200);
    assert!(
        second.text().contains("\"merged\":false"),
        "duplicate delivery was merged twice: {}",
        second.text()
    );

    let done = poll_done(&addr, id, "manually-completed job done");
    assert_eq!(done as usize, total);
    assert_eq!(fetch_report(&addr, id), report);

    // Restart the coordinator over the same store: the journal replay
    // must remember the merged shard and the report must still serve.
    handle.trigger();
    join.join().unwrap().unwrap();
    let (addr, handle, join) = start_coordinator(&dir, Duration::from_secs(30), total);
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap().text();
    assert_eq!(
        metric_value(&metrics, "mpstream_cluster_shards_merged_total"),
        1,
        "journal replay lost the merged shard"
    );
    assert_eq!(fetch_report(&addr, id), report);

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
