//! Golden-file tests for the report layer: the sweep point table, the
//! degradation summary and the per-config metrics table are pinned
//! byte-for-byte against files in `tests/golden/`. The simulator is
//! deterministic, so any diff here is a real formatting or metrics
//! change.
//!
//! To regenerate the goldens after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test report_golden
//! ```
//!
//! then review the diff under `tests/golden/` like any other code
//! change and commit it with the change that caused it.

use kernelgen::{KernelConfig, StreamOp};
use mpstream_core::sweep::sweep_space;
use mpstream_core::{BenchConfig, Engine, ParamSpace, SweepResult};
use std::path::PathBuf;
use targets::TargetId;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test report_golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "report output for {name} diverged from its golden; if the \
         change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test report_golden"
    );
}

/// The reference sweep: serial (so the cache column is deterministic),
/// fault-free, on the CPU model.
fn reference_sweep() -> SweepResult {
    let space = ParamSpace::new()
        .ops([StreamOp::Copy, StreamOp::Triad])
        .sizes_bytes([64 << 10])
        .widths([1, 4]);
    let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(true);
    sweep_space(&Engine::with_jobs(1), TargetId::Cpu, &space, protocol)
}

#[test]
fn sweep_point_table_matches_golden() {
    let s = reference_sweep();
    check_golden("sweep_table.txt", &s.table().to_text());
}

#[test]
fn sweep_summary_table_matches_golden() {
    let s = reference_sweep();
    check_golden("sweep_summary.txt", &s.summary().to_text());
}

#[test]
fn metrics_table_matches_golden() {
    let s = reference_sweep();
    check_golden("metrics_table.txt", &s.metrics_table().to_text());
}

#[test]
fn metrics_table_csv_matches_golden() {
    let s = reference_sweep();
    check_golden("metrics_table.csv", &s.metrics_table().to_csv());
}
