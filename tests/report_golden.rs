//! Golden-file tests for the report layer: the sweep point table, the
//! degradation summary and the per-config metrics table are pinned
//! byte-for-byte against files in `tests/golden/`. The simulator is
//! deterministic, so any diff here is a real formatting or metrics
//! change.
//!
//! To regenerate the goldens after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test report_golden
//! ```
//!
//! then review the diff under `tests/golden/` like any other code
//! change and commit it with the change that caused it.

use kernelgen::{KernelConfig, StreamOp};
use mpstream_core::sweep::sweep_space;
use mpstream_core::{
    run_figure, BenchConfig, Engine, Figure, FigureId, ParamSpace, RunOpts, SweepResult,
};
use std::path::PathBuf;
use targets::TargetId;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test report_golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "report output for {name} diverged from its golden; if the \
         change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test report_golden"
    );
}

/// The reference sweep: serial (so the cache column is deterministic),
/// fault-free, on the CPU model.
fn reference_sweep() -> SweepResult {
    let space = ParamSpace::new()
        .ops([StreamOp::Copy, StreamOp::Triad])
        .sizes_bytes([64 << 10])
        .widths([1, 4]);
    let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(true);
    sweep_space(&Engine::with_jobs(1), TargetId::Cpu, &space, protocol)
}

#[test]
fn sweep_point_table_matches_golden() {
    let s = reference_sweep();
    check_golden("sweep_table.txt", &s.table().to_text());
}

#[test]
fn sweep_summary_table_matches_golden() {
    let s = reference_sweep();
    check_golden("sweep_summary.txt", &s.summary().to_text());
}

#[test]
fn metrics_table_matches_golden() {
    let s = reference_sweep();
    check_golden("metrics_table.txt", &s.metrics_table().to_text());
}

#[test]
fn metrics_table_csv_matches_golden() {
    let s = reference_sweep();
    check_golden("metrics_table.csv", &s.metrics_table().to_csv());
}

// ---------------------------------------------------------------------
// Paper-parity trends (Fig. 3 / Fig. 4a), pinned both qualitatively —
// the orderings the paper's text calls out — and byte-for-byte as
// golden series data, so a cost-model change that silently moves the
// numbers shows up even when the trend still holds.
// ---------------------------------------------------------------------

/// Serialize a figure's series to one line per point with full
/// round-trip float precision — stable because the simulator is
/// deterministic.
fn figure_series_text(fig: &Figure) -> String {
    let mut out = String::new();
    for s in &fig.series {
        for &(x, y) in &s.points {
            out.push_str(&format!("{} {x:?} {y:?}\n", s.label));
        }
    }
    out
}

/// Serial, fault-free, full-fidelity figure run (quick mode thins the
/// protocol and would change the golden values).
fn reference_figure(id: FigureId) -> Figure {
    run_figure(id, RunOpts::full().with_jobs(1))
}

/// The y value of series `label` at target slot `x` (1=aocl 2=sdaccel
/// 3=cpu 4=gpu in Fig. 3/4a).
fn at(fig: &Figure, label: &str, x: f64) -> f64 {
    let s = fig
        .series
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("series '{label}' missing from {:?}", fig.id));
    s.points
        .iter()
        .find(|(px, _)| *px == x)
        .unwrap_or_else(|| panic!("series '{label}' has no point at x={x}"))
        .1
}

#[test]
fn gups_bandwidth_collapses_past_tlb_reach_and_matches_golden() {
    // The HPCC scatter kernel against the CPU model's address
    // translation: while the update table fits in TLB reach the random
    // accesses still translate cheaply, past it nearly every access is
    // a TLB miss and sustained bandwidth collapses. The contiguous copy
    // kernel over the same footprints is the control — its page
    // locality amortizes one walk per page at every size. The standard
    // CPU model's 2 MiB transparent huge pages give 128 MiB of reach
    // (too big to sweep per-access), so this series runs the same
    // machine with 4 KiB base pages — 64 entries x 4 KiB = 256 KiB
    // reach, crossed inside the sweep.
    let tuning = targets::cpu::CpuTuning {
        page_bytes: 4 << 10,
        ..Default::default()
    };
    let device = mpcl::Device::new(Box::new(targets::CpuBackend::with_tuning(tuning)));
    let runner = mpstream_core::Runner::new(device);
    let measure = |op: StreamOp, size_bytes: u64| {
        let cfg = KernelConfig::baseline(op, size_bytes / 4);
        let bc = BenchConfig::new(cfg).with_ntimes(1).with_validation(false);
        runner.run(&bc).expect("runs").gbps()
    };
    let sizes: &[u64] = &[64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20];
    let mut series = Vec::new();
    for &op in &[StreamOp::RandomAccess, StreamOp::Copy] {
        let points: Vec<(f64, f64)> = sizes.iter().map(|&s| (s as f64, measure(op, s))).collect();
        series.push(mpstream_core::Series::new(op.name(), points));
    }

    let ratio = |s: &mpstream_core::Series| {
        let ys = s.ys();
        ys.first().copied().unwrap_or(0.0) / ys.last().copied().unwrap_or(f64::NAN)
    };
    let gups_collapse = ratio(&series[0]);
    let copy_collapse = ratio(&series[1]);
    assert!(
        gups_collapse >= 2.0,
        "GUPS should collapse past TLB reach, got {gups_collapse:.2}x"
    );
    assert!(
        gups_collapse >= copy_collapse * 2.0,
        "the collapse must be a scatter phenomenon: gups {gups_collapse:.2}x \
         vs copy {copy_collapse:.2}x"
    );

    let mut out = String::new();
    for s in &series {
        for &(x, y) in &s.points {
            out.push_str(&format!("{} {x:?} {y:?}\n", s.label));
        }
    }
    check_golden("gups_tlb_series.txt", &out);
}

#[test]
fn fig3_gpu_single_work_item_collapses_and_matches_golden() {
    let fig = reference_figure(FigureId::Fig3);
    // The paper's headline Fig. 3 result: a single-work-item loop on the
    // GPU forfeits all thread-level parallelism and collapses bandwidth
    // roughly three orders of magnitude below the NDRange kernel.
    let gpu_ndrange = at(&fig, "ndrange-kernel", 4.0);
    let gpu_flat = at(&fig, "kernel-loop-flat", 4.0);
    let collapse = gpu_ndrange / gpu_flat;
    assert!(
        collapse >= 100.0,
        "GPU single-work-item should collapse ~1000x vs NDRange, got {collapse:.1}x"
    );
    // And on the CPU the three loop managements are within the same
    // order of magnitude — the collapse is a GPU phenomenon.
    let cpu_ratio = at(&fig, "ndrange-kernel", 3.0) / at(&fig, "kernel-loop-flat", 3.0);
    assert!(
        cpu_ratio < 10.0,
        "CPU loop modes should be comparable, got {cpu_ratio:.1}x"
    );
    check_golden("fig3_series.txt", &figure_series_text(&fig));
}

#[test]
fn fig3_nested_loop_beats_flat_on_sdaccel() {
    let fig = reference_figure(FigureId::Fig3);
    // The surprising SDAccel result: the nested single-work-item loop
    // (over the 2D view) outperforms the flat one, while everywhere
    // else nesting is neutral-to-worse.
    let sda_nested = at(&fig, "kernel-loop-nested", 2.0);
    let sda_flat = at(&fig, "kernel-loop-flat", 2.0);
    assert!(
        sda_nested > sda_flat,
        "nested ({sda_nested:.1} KB/s) must beat flat ({sda_flat:.1} KB/s) on SDAccel"
    );
    let gpu_nested = at(&fig, "kernel-loop-nested", 4.0);
    let gpu_flat = at(&fig, "kernel-loop-flat", 4.0);
    assert!(
        gpu_nested <= gpu_flat * 1.5,
        "nesting must not help the GPU the way it helps SDAccel"
    );
}

// ---------------------------------------------------------------------
// Golden chart renderings: the zero-dependency ASCII chart module over
// the paper-parity figure series and the committed BENCH trajectories.
// Charts are pure functions of the (deterministic) result data, so any
// diff is a real renderer or cost-model change.
// ---------------------------------------------------------------------

/// Render a figure through the chart module the `--chart` flag and
/// `mpstream watch` use: one line series per figure series, log10 y
/// (the paper's figures are log-scaled), fixed 64x16 plot.
fn figure_chart(fig: &Figure) -> String {
    let mut chart = mpstream_core::Chart::new(fig.title.clone())
        .size(64, 16)
        .y_scale(mpstream_core::Scale::Log10)
        .x_label(fig.x_label.clone())
        .y_label(fig.y_label.clone());
    for s in &fig.series {
        chart = chart.line(s.clone());
    }
    chart.render()
}

#[test]
fn fig3_chart_matches_golden() {
    let fig = reference_figure(FigureId::Fig3);
    check_golden("fig3_chart.txt", &figure_chart(&fig));
}

#[test]
fn fig4a_chart_matches_golden() {
    let fig = reference_figure(FigureId::Fig4a);
    check_golden("fig4a_chart.txt", &figure_chart(&fig));
}

/// The committed BENCH trajectory files render to pinned trend charts:
/// the same sparkline + table `bench-self --check` prints, so the CI
/// log rendering is itself regression-tested.
#[test]
fn bench_trajectory_trends_match_golden() {
    use mpstream_core::bench_self::{parse_trajectory, render_trend};
    for (file, value_label, golden) in [
        ("BENCH_sim.json", "points/s", "bench_sim_trend.txt"),
        ("BENCH_sweep.json", "points/s", "bench_sweep_trend.txt"),
        ("BENCH_dse.json", "GB/s", "bench_dse_trend.txt"),
    ] {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("committed {file} unreadable: {e}"));
        let entries = parse_trajectory(&text);
        assert!(!entries.is_empty(), "{file} parsed to no trajectory points");
        let title = format!("{file} trajectory");
        check_golden(golden, &render_trend(&title, value_label, &entries));
    }
}

#[test]
fn fig4a_kernel_ordering_matches_golden() {
    let fig = reference_figure(FigureId::Fig4a);
    // Fig. 4a shape: on every target the two-array kernels (copy,
    // scale) sustain at least the bandwidth of the three-array ones
    // (add, triad) — more arrays never raises sustained bandwidth.
    for (x, target) in [(1.0, "aocl"), (2.0, "sdaccel"), (3.0, "cpu"), (4.0, "gpu")] {
        let copy = at(&fig, "copy", x);
        let triad = at(&fig, "triad", x);
        assert!(
            copy >= triad * 0.8,
            "{target}: copy ({copy:.1}) should not trail triad ({triad:.1}) by >20%"
        );
    }
    check_golden("fig4a_series.txt", &figure_series_text(&fig));
}
