//! Acceptance tests for model-guided design-space exploration: on the
//! simulated FPGA targets the genetic and surrogate-model strategies
//! must find a configuration within 2% of the exhaustive best using at
//! most a tenth of the exhaustive point count — deterministically for a
//! fixed seed at any `--jobs`, clean or under injected faults — and a
//! checkpointed search must resume along the original visit order.

use kernelgen::{KernelConfig, LoopMode, StreamOp};
use mpcl::{FaultPlan, FaultSpec};
use mpstream_core::dse::{
    search_target, GeneticSearch, HillClimbSearch, ModelSearch, Strategy, SurrogateCheckpoint,
};
use mpstream_core::{
    BenchConfig, CancelToken, Checkpoint, Engine, Outcome, ParamSpace, ResiliencePolicy,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use targets::TargetId;

/// The 90-point quick space the CI smoke job searches: 2 ops x 5 widths
/// x 3 unrolls x 3 loop modes.
fn quick_space() -> ParamSpace {
    ParamSpace::new()
        .ops([StreamOp::Copy, StreamOp::Triad])
        .sizes_bytes([64 << 10])
        .widths([1, 2, 4, 8, 16])
        .loop_modes(LoopMode::ALL)
        .unrolls([1, 2, 4])
}

fn protocol(k: KernelConfig) -> BenchConfig {
    BenchConfig::new(k).with_ntimes(1).with_validation(false)
}

fn best_gbps(trace: &[Outcome]) -> f64 {
    trace
        .iter()
        .filter_map(Outcome::gbps)
        .fold(f64::NEG_INFINITY, f64::max)
}

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mpstream-dse-{tag}-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The CLI's DEFAULT_DSE_SEED — the quality bound below is pinned to
/// it, so the `mpstream dse` defaults the CI smoke job runs are the
/// exact configuration proven here.
const SEED: u64 = 42;

/// The headline claim: within 2% of the exhaustive best on ≤10% of the
/// points, on both FPGA targets, for both smart strategies.
#[test]
fn genetic_and_model_match_exhaustive_within_two_percent_on_a_tenth() {
    let space = quick_space();
    let n = space.configs().len();
    assert_eq!(n, 90, "the quick space is the documented 90 points");
    let budget = n / 10;

    for target in [TargetId::FpgaAocl, TargetId::FpgaSdaccel] {
        let engine = Engine::with_jobs(4);
        let exhaustive: Vec<Outcome> = engine.run_configs(target, space.configs(), protocol);
        let optimum = best_gbps(&exhaustive);
        assert!(optimum.is_finite());

        let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
            (
                "genetic",
                Box::new(GeneticSearch::new(&space, budget, SEED)),
            ),
            ("model", Box::new(ModelSearch::new(&space, budget, SEED))),
        ];
        for (name, mut strategy) in strategies {
            let r = search_target(&engine, target, strategy.as_mut(), budget, protocol, None);
            assert!(
                r.evaluations() <= budget,
                "{name} on {target:?} used {} of {budget} points",
                r.evaluations()
            );
            let found = r.best.as_ref().and_then(Outcome::gbps).unwrap_or(0.0);
            assert!(
                found >= optimum * 0.98,
                "{name} on {target:?}: {found:.3} GB/s vs exhaustive {optimum:.3} \
                 ({} points of {n})",
                r.evaluations()
            );
        }
    }
}

/// A quick space mixing the STREAM family with the HPCC extension ops
/// and both channel variants. Invalid combinations (HPCC ops are
/// scalar-only) are filtered by the space itself, like any sweep.
fn mixed_family_space() -> ParamSpace {
    ParamSpace::new()
        .ops([
            StreamOp::Copy,
            StreamOp::Triad,
            StreamOp::RandomAccess,
            StreamOp::DgemmLite,
        ])
        .sizes_bytes([64 << 10])
        .widths([1, 2, 4])
        .loop_modes(LoopMode::ALL)
        .unrolls([1, 2])
        .channel_depths([None, Some(4)])
}

/// The 2% quality bound must survive the workload-family growth: on a
/// space mixing STREAM and HPCC kernels (where the surrogate's new
/// family/channel feature dimensions are what separates the regimes),
/// genetic and model search still land within 2% of the exhaustive
/// best. The mixed landscape is genuinely harder — HPCC ops are
/// scalar-only, so mutation paths between families squeeze through
/// width-1 configs — which is why this bound is proven at a third of
/// the space rather than the tenth the pure-STREAM quick space needs.
#[test]
fn searches_stay_within_two_percent_on_a_mixed_stream_hpcc_space() {
    let space = mixed_family_space();
    let configs = space.configs();
    let n = configs.len();
    assert!(
        configs.iter().any(|c| !c.op.is_stream()),
        "HPCC ops survive the validity filter"
    );
    assert!(
        configs.iter().any(|c| c.channel.is_some()),
        "channeled variants survive the validity filter"
    );

    let engine = Engine::with_jobs(4);
    let target = TargetId::FpgaAocl;
    let exhaustive: Vec<Outcome> = engine.run_configs(target, configs, protocol);
    let optimum = best_gbps(&exhaustive);
    assert!(optimum.is_finite());

    let budget = (n / 3).max(32);
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "genetic",
            Box::new(GeneticSearch::new(&space, budget, SEED)),
        ),
        ("model", Box::new(ModelSearch::new(&space, budget, SEED))),
    ];
    for (name, mut strategy) in strategies {
        let r = search_target(&engine, target, strategy.as_mut(), budget, protocol, None);
        let found = r.best.as_ref().and_then(Outcome::gbps).unwrap_or(0.0);
        assert!(
            found >= optimum * 0.98,
            "{name}: {found:.3} GB/s vs exhaustive {optimum:.3} ({} points of {n})",
            r.evaluations()
        );
    }
}

/// Feature-dimension versioning: a surrogate checkpoint fitted before
/// the workload-family growth (19 features) must fail loudly at load
/// time, not silently steer a 25-dim search with mis-indexed weights —
/// while a checkpoint written by this build round-trips and warm
/// starts.
#[test]
fn stale_surrogate_checkpoints_fail_loudly_current_ones_round_trip() {
    let path = temp_path("surrogate");

    // A pre-family 19-dim checkpoint, as an old build would have saved.
    let zeros = |n: usize| vec!["0"; n].join(",");
    let old = format!(
        "{{\"feature_dim\":19,\"mean\":\"{0}\",\"scale\":\"{0}\",\"weights\":\"{0}\",\"intercept\":2.5}}",
        zeros(19)
    );
    std::fs::write(&path, old).unwrap();
    let err = SurrogateCheckpoint::load(&path).unwrap_err();
    assert!(err.contains("19-dim"), "{err}");
    assert!(
        err.contains(&kernelgen::FEATURE_DIM.to_string()),
        "names the current dim: {err}"
    );

    // A checkpoint from a real search on the mixed space round-trips.
    let space = mixed_family_space();
    let engine = Engine::with_jobs(2);
    let mut s = ModelSearch::new(&space, 12, SEED);
    search_target(&engine, TargetId::FpgaAocl, &mut s, 12, protocol, None);
    let ckpt = s.surrogate();
    assert_eq!(ckpt.feature_dim, kernelgen::FEATURE_DIM);
    ckpt.save(&path).unwrap();
    let back = SurrogateCheckpoint::load(&path).expect("current build loads its own checkpoint");
    assert_eq!(back, ckpt);

    // And the loaded surrogate warm starts a fresh search.
    let asked = ModelSearch::new(&space, 12, SEED).warm_start(&back).ask();
    assert!(!asked.is_empty());
    std::fs::remove_file(&path).ok();
}

/// Golden determinism: same seed, same visit order and scores at
/// `--jobs` 1 and 8 — the batch formulation makes worker count a pure
/// optimization for iterative searches too.
#[test]
fn genetic_and_model_are_jobs_invariant() {
    let space = quick_space();
    let budget = 9;
    let run = |jobs: usize, genetic: bool| {
        let engine = Engine::with_jobs(jobs);
        let mut strategy: Box<dyn Strategy> = if genetic {
            Box::new(GeneticSearch::new(&space, budget, SEED))
        } else {
            Box::new(ModelSearch::new(&space, budget, SEED))
        };
        search_target(
            &engine,
            TargetId::FpgaAocl,
            strategy.as_mut(),
            budget,
            protocol,
            None,
        )
    };
    for genetic in [true, false] {
        let serial = run(1, genetic);
        let parallel = run(8, genetic);
        assert_eq!(serial.trace.len(), parallel.trace.len());
        for (i, (a, b)) in serial.trace.iter().zip(&parallel.trace).enumerate() {
            assert_eq!(a.config, b.config, "visit order diverged at point {i}");
            assert_eq!(a.gbps(), b.gbps(), "score diverged at point {i}");
        }
    }
}

/// The same invariance must hold under an injected fault plan: the
/// engine's retry loop heals transient faults identically at any worker
/// count, so the strategy sees the same outcomes in the same order.
#[test]
fn searches_are_jobs_invariant_under_faults() {
    let space = quick_space();
    let budget = 12;
    let plan = || {
        Arc::new(FaultPlan::new(
            FaultSpec::parse("build=0.1,timeout=0.05,lost=0.03,bitflip=0.05").unwrap(),
            20260807,
        ))
    };
    let run = |jobs: usize| {
        let engine = Engine::with_jobs(jobs)
            .with_policy(ResiliencePolicy::retrying(10))
            .with_faults(Some(plan()));
        let mut strategy = ModelSearch::new(&space, budget, SEED);
        search_target(
            &engine,
            TargetId::FpgaAocl,
            &mut strategy,
            budget,
            protocol,
            None,
        )
    };
    let serial = run(1);
    let parallel = run(8);
    assert!(serial.faults.total() > 0, "the plan did inject faults");
    assert_eq!(serial.trace.len(), parallel.trace.len());
    for (i, (a, b)) in serial.trace.iter().zip(&parallel.trace).enumerate() {
        assert_eq!(a.config, b.config, "visit order diverged at point {i}");
        assert_eq!(a.gbps(), b.gbps(), "score diverged at point {i}");
        assert_eq!(a.retries, b.retries, "retry count diverged at point {i}");
    }
}

/// Checkpoint/resume equivalence: a search killed mid-way and resumed
/// with the same seed retraces the original visit order — checkpointed
/// points are answered from disk (and count against the budget), the
/// rest run fresh, and the final trace is identical to an uninterrupted
/// run.
#[test]
fn interrupted_search_resumes_along_the_same_visit_order() {
    let space = quick_space();
    let path = temp_path("resume");

    // Uninterrupted reference at full budget.
    let engine = Engine::with_jobs(4);
    let mut reference = ModelSearch::new(&space, 12, SEED);
    let full = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut reference,
        12,
        protocol,
        None,
    );
    assert_eq!(full.trace.len(), 12);

    // First run: same seed, budget 6, checkpointed.
    {
        let ckpt = Checkpoint::create(&path).unwrap();
        let mut partial = ModelSearch::new(&space, 12, SEED);
        let r = search_target(
            &engine,
            TargetId::FpgaAocl,
            &mut partial,
            6,
            protocol,
            Some(&ckpt),
        );
        assert_eq!(r.trace.len(), 6);
        assert_eq!(r.resumed, 0);
    }

    // Second run: full budget against the half-filled checkpoint.
    let ckpt = Checkpoint::resume(&path).unwrap();
    assert_eq!(ckpt.len(), 6, "six points on disk");
    let mut resumed = ModelSearch::new(&space, 12, SEED);
    let r = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut resumed,
        12,
        protocol,
        Some(&ckpt),
    );
    assert_eq!(r.resumed, 6, "first six answered from the checkpoint");
    assert_eq!(r.trace.len(), full.trace.len());
    for (i, (a, b)) in r.trace.iter().zip(&full.trace).enumerate() {
        assert_eq!(a.config, b.config, "resume diverged at point {i}");
        assert_eq!(a.gbps(), b.gbps(), "score diverged at point {i}");
    }
    std::fs::remove_file(&path).ok();
}

/// The climber-cancellation bugfix, end to end: a token fired while a
/// hill climb is in flight stops the search promptly — the old serial
/// implementation ran to its full budget regardless.
#[test]
fn cancel_token_stops_an_iterative_search_mid_run() {
    let space = quick_space();
    let token = CancelToken::new();
    let engine = Engine::with_jobs(2).with_cancel(Some(token.clone()));

    // Fire the token mid-search, deterministically: the protocol
    // closure runs once per evaluated point, so cancelling from inside
    // it after a handful of points always lands while the walk is in
    // flight — a timer would race the simulator's speed.
    let fired = AtomicU64::new(0);
    let cancelling_protocol = |k: KernelConfig| {
        if fired.fetch_add(1, Ordering::Relaxed) + 1 == 5 {
            token.cancel();
        }
        protocol(k)
    };
    let mut strategy = HillClimbSearch::new(&space, SEED);
    let r = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut strategy,
        0,
        cancelling_protocol,
        None,
    );
    assert!(r.cancelled, "the fired token was observed");
    assert!(
        r.trace.len() < space.configs().len(),
        "the walk stopped early ({} of {} points)",
        r.trace.len(),
        space.configs().len()
    );

    // And a pre-fired token stops the search before any evaluation.
    let token = CancelToken::new();
    token.cancel();
    let engine = Engine::with_jobs(2).with_cancel(Some(token));
    let mut strategy = GeneticSearch::new(&space, 9, SEED);
    let r = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut strategy,
        9,
        protocol,
        None,
    );
    assert!(r.cancelled);
    assert!(r.trace.is_empty());
}
