//! The fast simulation path must be indistinguishable from the
//! reference slow path (`MPSTREAM_SIM_SLOW=1`): seeded property tests
//! drive randomized configurations through both and require
//! bit-identical measurements, plus byte-identical sweep reports across
//! worker counts and under deterministic fault injection.
//!
//! The slow path is toggled in-process via `memsim::slowpath::force`,
//! which is process-global — every test here serializes on [`LOCK`] so
//! a forced-slow section never leaks into a concurrently running test.

use kernelgen::{AccessPattern, ChannelSpec, KernelConfig, LoopMode, StreamOp, VectorWidth};
use mpcl::FaultSpec;
use mpstream_core::cli::{
    bench_protocol, build_engine, render_sweep_report, run_sweep, CliMode, CliRequest,
};
use mpstream_core::{Runner, SplitMix64};
use std::sync::Mutex;
use targets::TargetId;

static LOCK: Mutex<()> = Mutex::new(());

/// Run one configuration on both paths and require bit-identical
/// results. Returns the measurement for extra assertions.
fn assert_paths_match(target: TargetId, req: &CliRequest, cfg: KernelConfig, ctx: &str) {
    let bc = bench_protocol(req, cfg);
    memsim::slowpath::force(false);
    let fast = Runner::for_target(target).run(&bc).expect(ctx);
    memsim::slowpath::force(true);
    let slow = Runner::for_target(target).run(&bc).expect(ctx);
    memsim::slowpath::force(false);

    assert_eq!(fast, slow, "{ctx}: measurement mismatch");
    // PartialEq on Measurement compares the meaningful fields; pin the
    // timing fields bit-for-bit as well — "close" is not equivalent.
    assert_eq!(
        fast.best_wall_ns.to_bits(),
        slow.best_wall_ns.to_bits(),
        "{ctx}: best wall ns"
    );
    assert_eq!(
        fast.avg_wall_ns.to_bits(),
        slow.avg_wall_ns.to_bits(),
        "{ctx}: avg wall ns"
    );
    assert_eq!(
        fast.best_kernel_ns.to_bits(),
        slow.best_kernel_ns.to_bits(),
        "{ctx}: best kernel ns"
    );
    assert_eq!(
        fast.dram_bytes_per_launch, slow.dram_bytes_per_launch,
        "{ctx}: dram bytes"
    );
    assert_eq!(
        (fast.row_hits, fast.row_misses, fast.row_empty),
        (slow.row_hits, slow.row_misses, slow.row_empty),
        "{ctx}: dram row counters"
    );
    assert_eq!(fast.validated, slow.validated, "{ctx}: validation verdict");
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.gen_index(items.len())]
}

#[test]
fn randomized_points_are_bit_identical_on_both_paths() {
    let _guard = LOCK.lock().unwrap();
    let mut rng = SplitMix64::new(0x00C0_FFEE_2026);
    for i in 0..24 {
        let target = pick(
            &mut rng,
            &[
                TargetId::Cpu,
                TargetId::Gpu,
                TargetId::FpgaAocl,
                TargetId::FpgaSdaccel,
            ],
        );
        let op = pick(&mut rng, &StreamOp::ALL);
        let size: u64 = pick(&mut rng, &[16 << 10, 64 << 10, 256 << 10]);
        let mut cfg = KernelConfig::baseline(op, size / 4);
        cfg.vector_width = VectorWidth::new(pick(&mut rng, &[1, 2, 4, 8, 16])).unwrap();
        cfg.unroll = pick(&mut rng, &[1, 2, 4]);
        cfg.loop_mode = pick(&mut rng, &LoopMode::ALL);
        cfg.pattern = pick(
            &mut rng,
            &[
                AccessPattern::Contiguous,
                AccessPattern::Contiguous, // weight towards the fused path
                AccessPattern::ColMajor { cols: None },
                AccessPattern::Strided { stride: 4 },
            ],
        );
        let req = CliRequest {
            target,
            ntimes: pick(&mut rng, &[1, 3]),
            no_validate: rng.gen_index(2) == 0,
            ..CliRequest::default()
        };
        let ctx = format!("sample {i}: {target:?} {op:?} {:?}", cfg.pattern);
        assert_paths_match(target, &req, cfg, &ctx);
    }
}

#[test]
fn hpcc_and_channeled_points_are_bit_identical_on_both_paths() {
    let _guard = LOCK.lock().unwrap();
    // The HPCC family runs through the explicit oracle path on the fast
    // engine rather than any fused fast path, and the channeled
    // two-stage variants add stall accounting on top — both must still
    // be bit-identical to the forced slow path on every target. Depth 4
    // is legal everywhere (SDAccel requires a power of two); depth 0 is
    // the AOCL-only fusion case.
    let targets = [
        TargetId::Cpu,
        TargetId::Gpu,
        TargetId::FpgaAocl,
        TargetId::FpgaSdaccel,
    ];
    for target in targets {
        for op in StreamOp::HPCC {
            for depth in [None, Some(4u32)] {
                let mut cfg = KernelConfig::baseline(op, (64u64 << 10) / 4);
                cfg.channel = depth.map(|depth| ChannelSpec { depth });
                let req = CliRequest {
                    target,
                    ntimes: 2,
                    ..CliRequest::default()
                };
                let ctx = format!("{target:?} {op:?} channel {depth:?}");
                assert_paths_match(target, &req, cfg, &ctx);
            }
        }
    }
    // AOCL depth-0 fusion: the synthesized pipeline collapses the
    // channel, but the measurement must still match the slow path.
    let mut cfg = KernelConfig::baseline(StreamOp::RandomAccess, (64u64 << 10) / 4);
    cfg.channel = Some(ChannelSpec { depth: 0 });
    let req = CliRequest {
        target: TargetId::FpgaAocl,
        ntimes: 2,
        ..CliRequest::default()
    };
    assert_paths_match(TargetId::FpgaAocl, &req, cfg, "aocl depth-0 fusion");
}

/// A small but representative sweep request: two targets' worth of
/// engine work would double runtime, so use the FPGA whose fused
/// burst path is the newest code, with several widths and both
/// two- and three-array kernels.
fn sweep_request(jobs: usize) -> CliRequest {
    CliRequest {
        mode: CliMode::Sweep,
        target: TargetId::FpgaAocl,
        ops: vec![StreamOp::Copy, StreamOp::Triad],
        widths: vec![1, 4, 16],
        unrolls: vec![1, 2],
        size_bytes: 64 << 10,
        ntimes: 2,
        jobs: Some(jobs),
        ..CliRequest::default()
    }
}

fn rendered_sweep(req: &CliRequest) -> String {
    let engine = build_engine(req, None);
    let result = run_sweep(&engine, req, None);
    render_sweep_report(req, &result)
}

#[test]
fn sweep_reports_are_byte_identical_across_jobs_and_paths() {
    let _guard = LOCK.lock().unwrap();
    memsim::slowpath::force(false);
    let fast_j1 = rendered_sweep(&sweep_request(1));
    let fast_j8 = rendered_sweep(&sweep_request(8));
    memsim::slowpath::force(true);
    let slow_j1 = rendered_sweep(&sweep_request(1));
    memsim::slowpath::force(false);

    assert_eq!(fast_j1, fast_j8, "worker count changed the report");
    assert_eq!(fast_j1, slow_j1, "fast path changed the report");
}

/// A mixed STREAM+HPCC sweep with a channel depth: the HPCC ops are
/// scalar-only so the space self-filters, and every point carries a
/// two-stage channel with stall accounting in its metrics.
fn hpcc_sweep_request(jobs: usize) -> CliRequest {
    CliRequest {
        mode: CliMode::Sweep,
        target: TargetId::FpgaSdaccel,
        ops: vec![
            StreamOp::Triad,
            StreamOp::RandomAccess,
            StreamOp::Ptrans,
            StreamOp::DgemmLite,
        ],
        widths: vec![1, 4],
        unrolls: vec![1, 2],
        size_bytes: 64 << 10,
        ntimes: 2,
        jobs: Some(jobs),
        channel_depth: Some(4),
        ..CliRequest::default()
    }
}

#[test]
fn hpcc_channel_sweep_reports_are_byte_identical_across_jobs_and_paths() {
    let _guard = LOCK.lock().unwrap();
    memsim::slowpath::force(false);
    let fast_j1 = rendered_sweep(&hpcc_sweep_request(1));
    let fast_j8 = rendered_sweep(&hpcc_sweep_request(8));
    memsim::slowpath::force(true);
    let slow_j1 = rendered_sweep(&hpcc_sweep_request(1));
    memsim::slowpath::force(false);

    for op in ["gups", "ptrans", "dgemm"] {
        assert!(fast_j1.contains(op), "missing {op} in: {fast_j1}");
    }
    assert!(
        fast_j1.contains("ch4"),
        "channel depth in labels: {fast_j1}"
    );
    assert_eq!(fast_j1, fast_j8, "worker count changed the HPCC report");
    assert_eq!(fast_j1, slow_j1, "fast path changed the HPCC report");
}

#[test]
fn sweep_reports_survive_fault_injection_identically() {
    let _guard = LOCK.lock().unwrap();
    let faulty = |jobs: usize| CliRequest {
        faults: Some(FaultSpec::parse("build=0.1,timeout=0.05,lost=0.03,bitflip=0.05").unwrap()),
        fault_seed: Some(20260807),
        retries: Some(10),
        ..sweep_request(jobs)
    };
    memsim::slowpath::force(false);
    let clean = rendered_sweep(&sweep_request(1));
    let fast_j1 = rendered_sweep(&faulty(1));
    let fast_j8 = rendered_sweep(&faulty(8));
    memsim::slowpath::force(true);
    let slow_j1 = rendered_sweep(&faulty(1));
    memsim::slowpath::force(false);

    // The report legitimately records retries and cache churn, so the
    // faulty report differs from the clean one — but the *measured*
    // results must not: with the default retry budget every point
    // recovers, so the winning configuration line is unchanged.
    let best = |report: &str| {
        report
            .lines()
            .find(|l| l.starts_with("best:"))
            .expect("report has a best: line")
            .to_string()
    };
    assert_eq!(
        best(&fast_j1),
        best(&clean),
        "injected faults changed the measured winner"
    );
    assert_eq!(fast_j1, fast_j8, "worker count changed the faulty report");
    assert_eq!(fast_j1, slow_j1, "fast path changed the faulty report");
}
