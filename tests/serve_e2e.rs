//! End-to-end tests for `mpstream serve`: a submitted job's fetched
//! report must be byte-identical to the offline CLI, a daemon killed
//! mid-sweep must resume from its store to the same result set, the
//! bounded accept pool must shed (not drop) load under a soak, /metrics
//! must reflect the work, and the spawned binary must drain and exit 0
//! on SIGTERM.

use mpstream_core::checkpoint::Checkpoint;
use mpstream_core::cli as core_cli;
use mpstream_core::json::parse_flat_object;
use mpstream_serve::client::http_request;
use mpstream_serve::spec::request_to_spec;
use mpstream_serve::{ServeOpts, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mpstream-e2e-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bind a server on a free port over `dir` and run it on a thread.
/// Returns `(addr, shutdown handle, join handle)`.
fn start_server(
    dir: &Path,
    http_workers: usize,
    queue_capacity: usize,
) -> (
    String,
    mpstream_serve::server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.to_path_buf(),
        http_workers,
        queue_capacity,
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn sweep_request(args: &[&str]) -> core_cli::CliRequest {
    let mut argv = vec!["sweep".to_string()];
    argv.extend(args.iter().map(|s| s.to_string()));
    core_cli::parse_args(&argv).unwrap().unwrap()
}

fn dse_request(args: &[&str]) -> core_cli::CliRequest {
    let mut argv = vec!["dse".to_string()];
    argv.extend(args.iter().map(|s| s.to_string()));
    core_cli::parse_args(&argv).unwrap().unwrap()
}

/// POST the job and return its id.
fn submit(addr: &str, spec: &str) -> u64 {
    let reply = http_request(addr, "POST", "/jobs", spec.as_bytes()).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("id")?.as_u64())
        .expect("submit reply has an id")
}

/// Poll `GET /jobs/<id>` until `pred(state, done)` holds; panics after
/// the deadline. Returns the `(state, done)` that satisfied it.
fn poll_until(addr: &str, id: u64, what: &str, pred: impl Fn(&str, u64) -> bool) -> (String, u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = http_request(addr, "GET", &format!("/jobs/{id}"), b"").unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let obj = parse_flat_object(reply.text().trim()).unwrap();
        let state = obj
            .get("state")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        let done = obj.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
        assert_ne!(state, "failed", "job failed: {}", reply.text());
        if pred(&state, done) {
            return (state, done);
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A served job's report must be the exact bytes the offline CLI
/// prints for the same flags, and /metrics must reflect the work.
#[test]
fn served_report_is_byte_identical_to_offline_cli() {
    // --jobs 1 so the build-cache column (a scheduling fact at jobs>1)
    // is deterministic across the two runs.
    let args = [
        "--kernel",
        "copy",
        "--kernel",
        "triad",
        "--size",
        "131072",
        "--vectors",
        "1,2,4,8",
        "--ntimes",
        "1",
        "--jobs",
        "1",
    ];
    let req = sweep_request(&args);
    let offline = core_cli::execute(&req).unwrap();

    let dir = temp_dir("identical");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let (_, done) = poll_until(&addr, id, "job done", |s, _| s == "done");
    assert_eq!(
        done as usize,
        core_cli::sweep_param_space(&req).configs().len()
    );

    let report = http_request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        offline,
        "served report differs from offline CLI"
    );

    // The raw result feed pages through every checkpointed point.
    let results = http_request(&addr, "GET", &format!("/jobs/{id}/results?limit=3"), b"").unwrap();
    assert_eq!(results.status, 200);
    assert_eq!(results.header("x-count"), Some("3"));
    assert_eq!(results.header("x-total"), Some(done.to_string().as_str()));

    // Metrics reflect the job and the scrapes themselves.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("mpstream_jobs_completed_total 1"), "{text}");
    assert!(text.contains("mpstream_points_executed_total"), "{text}");
    assert!(
        text.contains("# TYPE mpstream_http_requests_total counter"),
        "{text}"
    );

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A submitted DSE job runs the same iterative search the offline CLI
/// would: the fetched report is byte-identical, and the job's progress
/// counts the evaluated points (the budget), not the whole space.
#[test]
fn served_dse_report_is_byte_identical_to_offline_cli() {
    let args = [
        "--target",
        "aocl",
        "--kernel",
        "copy",
        "--kernel",
        "triad",
        "--size",
        "65536",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2,4",
        "--ntimes",
        "1",
        "--strategy",
        "model",
        "--budget",
        "9",
        "--dse-seed",
        "42",
        "--jobs",
        "1",
    ];
    let req = dse_request(&args);
    let offline = core_cli::execute(&req).unwrap();

    let dir = temp_dir("dse-identical");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let (_, done) = poll_until(&addr, id, "dse job done", |s, _| s == "done");
    assert_eq!(done, 9, "only the budgeted points were evaluated");

    let report = http_request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        offline,
        "served dse report differs from offline CLI"
    );
    assert!(report.text().contains("pareto front"), "{}", report.text());

    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let text = metrics.text();
    assert!(text.contains("mpstream_jobs_completed_total 1"), "{text}");
    assert!(text.contains("mpstream_points_executed_total 9"), "{text}");

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill the daemon mid-sweep; a fresh daemon over the same store must
/// resume the job and finish with the same result set as an
/// uninterrupted offline run.
#[test]
fn restart_mid_sweep_resumes_to_identical_results() {
    // ~40 points x ~0.2s each (debug build): slow enough to interrupt.
    let args = [
        "--size",
        "262144",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2",
        "--ntimes",
        "2",
        "--jobs",
        "1",
    ];
    let req = sweep_request(&args);
    let dir = temp_dir("resume");

    let (addr, handle, join) = start_server(&dir, 2, 4);
    let id = submit(&addr, &request_to_spec(&req).unwrap());
    // Let it make real progress, then pull the plug mid-run.
    let (_, done_at_kill) = poll_until(&addr, id, "mid-run progress", |s, done| {
        s == "running" && done >= 2
    });
    handle.trigger();
    join.join().unwrap().unwrap();

    // The interrupted job is re-queued (not cancelled, not done) so a
    // restart picks it up; its finished points are already on disk.
    let (addr, handle, join) = start_server(&dir, 2, 4);
    let (_, done) = poll_until(&addr, id, "resumed job done", |s, _| s == "done");
    let total = core_cli::sweep_param_space(&req).configs().len();
    assert_eq!(done as usize, total);

    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let resumed = metrics
        .text()
        .lines()
        .find_map(|l| {
            l.strip_prefix("mpstream_points_resumed_total ")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        resumed >= done_at_kill,
        "expected >= {done_at_kill} resumed points, metrics said {resumed}"
    );
    handle.trigger();
    join.join().unwrap().unwrap();

    // Every point in the store must match an uninterrupted offline run.
    let engine = core_cli::build_engine(&req, None);
    let offline = core_cli::run_sweep(&engine, &req, None);
    let ckpt = Checkpoint::resume(dir.join(format!("job-{id}.jsonl"))).unwrap();
    assert_eq!(offline.points.len(), total);
    for point in &offline.points {
        let stored = ckpt
            .lookup(&point.config)
            .unwrap_or_else(|| panic!("store missing {:?}", point.config));
        assert_eq!(
            stored.gbps(),
            point.gbps(),
            "bandwidth mismatch for {:?}",
            point.config
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// 1000 sequential requests all succeed; 64 concurrent clients against
/// a 2-worker pool each get either a real answer or an explicit 503
/// with Retry-After — nothing hangs, nothing is silently dropped.
#[test]
fn soak_bounded_pool_sheds_loudly_never_silently() {
    let dir = temp_dir("soak");
    let (addr, handle, join) = start_server(&dir, 2, 2);

    for i in 0..1000 {
        let reply = http_request(&addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(reply.status, 200, "sequential request {i}");
    }

    let workers: Vec<_> = (0..64)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || http_request(&addr, "GET", "/healthz", b""))
        })
        .collect();
    let mut ok = 0u32;
    let mut shed = 0u32;
    for w in workers {
        let reply = w
            .join()
            .unwrap()
            .expect("no connection may be dropped without a reply");
        match reply.status {
            200 => ok += 1,
            503 => {
                assert_eq!(reply.header("retry-after"), Some("1"));
                shed += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok + shed, 64, "every concurrent request got an answer");
    assert!(ok > 0, "the pool served nobody");

    // Shed connections are counted, not silent.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let rejected = metrics
        .text()
        .lines()
        .find_map(|l| {
            l.strip_prefix("mpstream_connections_rejected_total ")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert_eq!(rejected, shed as u64, "503 count must match the metric");

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A tenant at its queue quota gets 429 + Retry-After; cancelling a
/// *queued* (never started) job releases its quota slot immediately,
/// so the very next submit is admitted. Regression test: the slot used
/// to stay held until the runner eventually skipped the cancelled job.
#[test]
fn cancelling_a_queued_job_frees_its_tenant_quota_slot() {
    use mpstream_serve::client::http_request_keyed;
    use mpstream_serve::client::ClientOpts;

    let dir = temp_dir("quota");
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.jsonl");
    std::fs::write(
        &tenants,
        "{\"name\":\"acme\",\"key\":\"acme-secret\",\"queue_quota\":2}\n",
    )
    .unwrap();
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.join("store"),
        http_workers: 2,
        queue_capacity: 8,
        tenants_file: Some(tenants),
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    let keyed = |method: &str, path: &str, body: &[u8]| {
        http_request_keyed(
            &addr,
            method,
            path,
            body,
            Some("acme-secret"),
            &ClientOpts::default(),
        )
        .unwrap()
    };

    // A slow sweep (job A runs on the single runner thread) plus a
    // queued job B fill the quota of 2.
    let slow = request_to_spec(&sweep_request(&[
        "--size",
        "262144",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2",
        "--ntimes",
        "2",
        "--jobs",
        "1",
    ]))
    .unwrap();
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 202, "{}", reply.text());
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 202, "{}", reply.text());
    let job_b = parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("id")?.as_u64())
        .unwrap();

    // Quota full: the third submit is refused loudly, with a hint.
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 429, "{}", reply.text());
    assert!(
        reply.header("retry-after").is_some(),
        "429 must carry Retry-After"
    );

    // An unknown key is 401, never silently demoted to anonymous.
    let reply = http_request_keyed(
        &addr,
        "POST",
        "/jobs",
        slow.as_bytes(),
        Some("wrong-key"),
        &ClientOpts::default(),
    )
    .unwrap();
    assert_eq!(reply.status, 401, "{}", reply.text());

    // Cancel the queued job: its slot must free without waiting for
    // the runner to reach it (job A is still hogging the runner).
    let reply = keyed("POST", &format!("/jobs/{job_b}/cancel"), b"");
    assert_eq!(reply.status, 200, "{}", reply.text());
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(
        reply.status,
        202,
        "cancelled queued job must release its quota slot immediately: {}",
        reply.text()
    );

    // Per-tenant counters surface in /metrics.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap().text();
    assert!(
        metrics.contains("mpstream_tenant_quota_rejected_total{tenant=\"acme\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mpstream_tenant_jobs_submitted_total{tenant=\"acme\"} 3"),
        "{metrics}"
    );

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Open `GET /jobs/<id>/stream` and drain it to the final status line.
/// Returns `(record lines in arrival order, status line)`; heartbeat
/// comments are skipped.
fn drain_stream(addr: &str, id: u64, api_key: Option<&str>) -> (Vec<String>, String) {
    use mpstream_serve::client::{http_stream_keyed, ClientOpts, StreamReply};

    let reply = http_stream_keyed(
        addr,
        &format!("/jobs/{id}/stream"),
        api_key,
        &ClientOpts::default(),
    )
    .unwrap();
    let mut reader = match reply {
        StreamReply::Open(r) => r,
        StreamReply::Refused(r) => panic!("stream refused: {} {}", r.status, r.text()),
    };
    let mut records = Vec::new();
    let mut status = None;
    while let Some(line) = reader.next_line().unwrap() {
        if line.starts_with(':') {
            continue; // heartbeat / diagnostic comment
        }
        let obj = parse_flat_object(&line).unwrap_or_else(|| panic!("unparseable line {line:?}"));
        if obj.contains_key("key") {
            records.push(line);
        } else if obj.contains_key("state") {
            status = Some(line);
        } else {
            panic!("stream line is neither record nor status: {line:?}");
        }
    }
    assert!(reader.finished(), "stream must end at a clean terminator");
    (records, status.expect("stream ended without a status line"))
}

/// Fetch every checkpoint record of a finished job via the paged
/// results endpoint.
fn fetch_all_results(addr: &str, id: u64) -> Vec<String> {
    let reply = http_request(
        addr,
        "GET",
        &format!("/jobs/{id}/results?limit=100000"),
        b"",
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.text());
    let total: usize = reply.header("x-total").unwrap().parse().unwrap();
    let lines: Vec<String> = reply.text().lines().map(str::to_string).collect();
    assert_eq!(lines.len(), total, "results page did not cover the job");
    lines
}

/// The live stream must deliver exactly the records the checkpoint
/// holds — byte-identical, in append order — whether the job runs on
/// one worker or several, and whether the stream was opened before the
/// job finished (live tail) or after (pure replay).
#[test]
fn streamed_records_are_byte_identical_to_fetched_checkpoint() {
    let dir = temp_dir("stream-identity");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    for jobs in ["1", "4"] {
        let req = sweep_request(&[
            "--kernel",
            "copy",
            "--kernel",
            "triad",
            "--size",
            "131072",
            "--vectors",
            "1,2,4,8",
            "--ntimes",
            "1",
            "--jobs",
            jobs,
        ]);
        let id = submit(&addr, &request_to_spec(&req).unwrap());

        // Live tail: opened while the job is queued/running.
        let (streamed, status) = drain_stream(&addr, id, None);
        let obj = parse_flat_object(&status).unwrap();
        assert_eq!(obj.get("state").and_then(|v| v.as_str()), Some("done"));
        let total = core_cli::sweep_param_space(&req).configs().len();
        assert_eq!(obj.get("done").and_then(|v| v.as_u64()), Some(total as u64));

        let fetched = fetch_all_results(&addr, id);
        assert_eq!(
            streamed, fetched,
            "--jobs {jobs}: streamed records differ from the checkpoint"
        );

        // Pure replay: opened after completion, must serve the same
        // bytes straight from disk.
        let (replayed, _) = drain_stream(&addr, id, None);
        assert_eq!(replayed, fetched, "--jobs {jobs}: replay differs");
    }

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that disconnects mid-stream must not cancel or wedge the
/// job: the sweep completes, the report is served, and a later stream
/// replays the full record set.
#[test]
fn stream_disconnect_mid_job_does_not_cancel_it() {
    use mpstream_serve::client::{http_stream_keyed, ClientOpts, StreamReply};

    let dir = temp_dir("stream-disconnect");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    // Slow enough (debug build) that the disconnect lands mid-run.
    let req = sweep_request(&[
        "--size",
        "262144",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2",
        "--ntimes",
        "2",
        "--jobs",
        "1",
    ]);
    let id = submit(&addr, &request_to_spec(&req).unwrap());

    let reply = http_stream_keyed(
        &addr,
        &format!("/jobs/{id}/stream"),
        None,
        &ClientOpts::default(),
    )
    .unwrap();
    let mut reader = match reply {
        StreamReply::Open(r) => r,
        StreamReply::Refused(r) => panic!("stream refused: {}", r.status),
    };
    // Read until the first record arrives, then hang up mid-stream.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "no record before disconnect");
        match reader.next_line().unwrap() {
            Some(l) if l.starts_with(':') => continue,
            Some(_) => break,
            None => panic!("stream ended before the job finished"),
        }
    }
    drop(reader);

    let (_, done) = poll_until(&addr, id, "job survives disconnect", |s, _| s == "done");
    assert_eq!(
        done as usize,
        core_cli::sweep_param_space(&req).configs().len()
    );
    let report = http_request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(report.status, 200);

    // A later stream replays everything the checkpoint holds.
    let (replayed, _) = drain_stream(&addr, id, None);
    assert_eq!(replayed, fetch_all_results(&addr, id));

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Streams sit behind the same tenant gate as every other endpoint: an
/// unknown key is refused with 401 before any chunk is written, a known
/// key streams, an unknown job is 404, and the stream counters surface
/// in /metrics.
#[test]
fn stream_honors_tenant_auth_and_counts_itself() {
    use mpstream_serve::client::{http_stream_keyed, ClientOpts, StreamReply};

    let dir = temp_dir("stream-auth");
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.jsonl");
    std::fs::write(
        &tenants,
        "{\"name\":\"acme\",\"key\":\"acme-secret\",\"queue_quota\":4}\n",
    )
    .unwrap();
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.join("store"),
        http_workers: 2,
        queue_capacity: 4,
        tenants_file: Some(tenants),
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());

    let req = sweep_request(&[
        "--kernel", "copy", "--size", "65536", "--ntimes", "1", "--jobs", "1",
    ]);
    let spec = request_to_spec(&req).unwrap();
    let reply = mpstream_serve::client::http_request_keyed(
        &addr,
        "POST",
        "/jobs",
        spec.as_bytes(),
        Some("acme-secret"),
        &ClientOpts::default(),
    )
    .unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());

    // Unknown key: refused as a plain 401 response, never a chunk.
    let refused = http_stream_keyed(
        &addr,
        "/jobs/1/stream",
        Some("wrong-key"),
        &ClientOpts::default(),
    )
    .unwrap();
    match refused {
        StreamReply::Refused(r) => assert_eq!(r.status, 401, "{}", r.text()),
        StreamReply::Open(_) => panic!("unknown key opened a stream"),
    }

    // Unknown job: 404 before any chunk.
    let missing = http_stream_keyed(
        &addr,
        "/jobs/999/stream",
        Some("acme-secret"),
        &ClientOpts::default(),
    )
    .unwrap();
    match missing {
        StreamReply::Refused(r) => assert_eq!(r.status, 404, "{}", r.text()),
        StreamReply::Open(_) => panic!("unknown job opened a stream"),
    }

    // Known key: streams to completion.
    let (records, status) = drain_stream(&addr, 1, Some("acme-secret"));
    assert!(!records.is_empty());
    assert!(status.contains("\"state\":\"done\""), "{status}");

    let metric = |name: &str| -> u64 {
        let metrics = http_request(&addr, "GET", "/metrics", b"")
            .unwrap()
            .text()
            .to_string();
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} "))?.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
    };
    assert_eq!(metric("mpstream_stream_opened_total"), 1);
    assert_eq!(
        metric("mpstream_stream_records_total"),
        records.len() as u64
    );
    assert!(metric("mpstream_http_unauthorized_total") >= 1);
    // The streamer decrements the gauge just after the terminator the
    // client saw, so allow it a moment to drain.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metric("mpstream_stream_active_total") != 0 {
        assert!(Instant::now() < deadline, "active-stream gauge leaked");
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The spawned `mpstream serve` binary announces its address, serves,
/// and on SIGTERM drains and exits 0.
#[test]
fn spawned_daemon_sigterm_drains_and_exits_zero() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::{Command, Stdio};

    let dir = temp_dir("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpstream"))
        .args(["serve", "--addr", "127.0.0.1:0", "--store"])
        .arg(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("mpstream serve: listening on ")
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let reply = http_request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(reply.status, 200);

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exited {status:?} on SIGTERM");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("drained, exiting"),
        "missing drain message: {rest:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
