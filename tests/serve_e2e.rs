//! End-to-end tests for `mpstream serve`: a submitted job's fetched
//! report must be byte-identical to the offline CLI, a daemon killed
//! mid-sweep must resume from its store to the same result set, the
//! bounded accept pool must shed (not drop) load under a soak, /metrics
//! must reflect the work, and the spawned binary must drain and exit 0
//! on SIGTERM.

use mpstream_core::checkpoint::Checkpoint;
use mpstream_core::cli as core_cli;
use mpstream_core::json::parse_flat_object;
use mpstream_serve::client::http_request;
use mpstream_serve::spec::request_to_spec;
use mpstream_serve::{ServeOpts, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mpstream-e2e-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bind a server on a free port over `dir` and run it on a thread.
/// Returns `(addr, shutdown handle, join handle)`.
fn start_server(
    dir: &Path,
    http_workers: usize,
    queue_capacity: usize,
) -> (
    String,
    mpstream_serve::server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.to_path_buf(),
        http_workers,
        queue_capacity,
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn sweep_request(args: &[&str]) -> core_cli::CliRequest {
    let mut argv = vec!["sweep".to_string()];
    argv.extend(args.iter().map(|s| s.to_string()));
    core_cli::parse_args(&argv).unwrap().unwrap()
}

fn dse_request(args: &[&str]) -> core_cli::CliRequest {
    let mut argv = vec!["dse".to_string()];
    argv.extend(args.iter().map(|s| s.to_string()));
    core_cli::parse_args(&argv).unwrap().unwrap()
}

/// POST the job and return its id.
fn submit(addr: &str, spec: &str) -> u64 {
    let reply = http_request(addr, "POST", "/jobs", spec.as_bytes()).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());
    parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("id")?.as_u64())
        .expect("submit reply has an id")
}

/// Poll `GET /jobs/<id>` until `pred(state, done)` holds; panics after
/// the deadline. Returns the `(state, done)` that satisfied it.
fn poll_until(addr: &str, id: u64, what: &str, pred: impl Fn(&str, u64) -> bool) -> (String, u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = http_request(addr, "GET", &format!("/jobs/{id}"), b"").unwrap();
        assert_eq!(reply.status, 200, "{}", reply.text());
        let obj = parse_flat_object(reply.text().trim()).unwrap();
        let state = obj
            .get("state")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        let done = obj.get("done").and_then(|v| v.as_u64()).unwrap_or(0);
        assert_ne!(state, "failed", "job failed: {}", reply.text());
        if pred(&state, done) {
            return (state, done);
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A served job's report must be the exact bytes the offline CLI
/// prints for the same flags, and /metrics must reflect the work.
#[test]
fn served_report_is_byte_identical_to_offline_cli() {
    // --jobs 1 so the build-cache column (a scheduling fact at jobs>1)
    // is deterministic across the two runs.
    let args = [
        "--kernel",
        "copy",
        "--kernel",
        "triad",
        "--size",
        "131072",
        "--vectors",
        "1,2,4,8",
        "--ntimes",
        "1",
        "--jobs",
        "1",
    ];
    let req = sweep_request(&args);
    let offline = core_cli::execute(&req).unwrap();

    let dir = temp_dir("identical");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let (_, done) = poll_until(&addr, id, "job done", |s, _| s == "done");
    assert_eq!(
        done as usize,
        core_cli::sweep_param_space(&req).configs().len()
    );

    let report = http_request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        offline,
        "served report differs from offline CLI"
    );

    // The raw result feed pages through every checkpointed point.
    let results = http_request(&addr, "GET", &format!("/jobs/{id}/results?limit=3"), b"").unwrap();
    assert_eq!(results.status, 200);
    assert_eq!(results.header("x-count"), Some("3"));
    assert_eq!(results.header("x-total"), Some(done.to_string().as_str()));

    // Metrics reflect the job and the scrapes themselves.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("mpstream_jobs_completed_total 1"), "{text}");
    assert!(text.contains("mpstream_points_executed_total"), "{text}");
    assert!(
        text.contains("# TYPE mpstream_http_requests_total counter"),
        "{text}"
    );

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A submitted DSE job runs the same iterative search the offline CLI
/// would: the fetched report is byte-identical, and the job's progress
/// counts the evaluated points (the budget), not the whole space.
#[test]
fn served_dse_report_is_byte_identical_to_offline_cli() {
    let args = [
        "--target",
        "aocl",
        "--kernel",
        "copy",
        "--kernel",
        "triad",
        "--size",
        "65536",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2,4",
        "--ntimes",
        "1",
        "--strategy",
        "model",
        "--budget",
        "9",
        "--dse-seed",
        "42",
        "--jobs",
        "1",
    ];
    let req = dse_request(&args);
    let offline = core_cli::execute(&req).unwrap();

    let dir = temp_dir("dse-identical");
    let (addr, handle, join) = start_server(&dir, 2, 4);

    let id = submit(&addr, &request_to_spec(&req).unwrap());
    let (_, done) = poll_until(&addr, id, "dse job done", |s, _| s == "done");
    assert_eq!(done, 9, "only the budgeted points were evaluated");

    let report = http_request(&addr, "GET", &format!("/jobs/{id}/report"), b"").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(
        report.text(),
        offline,
        "served dse report differs from offline CLI"
    );
    assert!(report.text().contains("pareto front"), "{}", report.text());

    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let text = metrics.text();
    assert!(text.contains("mpstream_jobs_completed_total 1"), "{text}");
    assert!(text.contains("mpstream_points_executed_total 9"), "{text}");

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill the daemon mid-sweep; a fresh daemon over the same store must
/// resume the job and finish with the same result set as an
/// uninterrupted offline run.
#[test]
fn restart_mid_sweep_resumes_to_identical_results() {
    // ~40 points x ~0.2s each (debug build): slow enough to interrupt.
    let args = [
        "--size",
        "262144",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2",
        "--ntimes",
        "2",
        "--jobs",
        "1",
    ];
    let req = sweep_request(&args);
    let dir = temp_dir("resume");

    let (addr, handle, join) = start_server(&dir, 2, 4);
    let id = submit(&addr, &request_to_spec(&req).unwrap());
    // Let it make real progress, then pull the plug mid-run.
    let (_, done_at_kill) = poll_until(&addr, id, "mid-run progress", |s, done| {
        s == "running" && done >= 2
    });
    handle.trigger();
    join.join().unwrap().unwrap();

    // The interrupted job is re-queued (not cancelled, not done) so a
    // restart picks it up; its finished points are already on disk.
    let (addr, handle, join) = start_server(&dir, 2, 4);
    let (_, done) = poll_until(&addr, id, "resumed job done", |s, _| s == "done");
    let total = core_cli::sweep_param_space(&req).configs().len();
    assert_eq!(done as usize, total);

    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let resumed = metrics
        .text()
        .lines()
        .find_map(|l| {
            l.strip_prefix("mpstream_points_resumed_total ")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(
        resumed >= done_at_kill,
        "expected >= {done_at_kill} resumed points, metrics said {resumed}"
    );
    handle.trigger();
    join.join().unwrap().unwrap();

    // Every point in the store must match an uninterrupted offline run.
    let engine = core_cli::build_engine(&req, None);
    let offline = core_cli::run_sweep(&engine, &req, None);
    let ckpt = Checkpoint::resume(dir.join(format!("job-{id}.jsonl"))).unwrap();
    assert_eq!(offline.points.len(), total);
    for point in &offline.points {
        let stored = ckpt
            .lookup(&point.config)
            .unwrap_or_else(|| panic!("store missing {:?}", point.config));
        assert_eq!(
            stored.gbps(),
            point.gbps(),
            "bandwidth mismatch for {:?}",
            point.config
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// 1000 sequential requests all succeed; 64 concurrent clients against
/// a 2-worker pool each get either a real answer or an explicit 503
/// with Retry-After — nothing hangs, nothing is silently dropped.
#[test]
fn soak_bounded_pool_sheds_loudly_never_silently() {
    let dir = temp_dir("soak");
    let (addr, handle, join) = start_server(&dir, 2, 2);

    for i in 0..1000 {
        let reply = http_request(&addr, "GET", "/healthz", b"").unwrap();
        assert_eq!(reply.status, 200, "sequential request {i}");
    }

    let workers: Vec<_> = (0..64)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || http_request(&addr, "GET", "/healthz", b""))
        })
        .collect();
    let mut ok = 0u32;
    let mut shed = 0u32;
    for w in workers {
        let reply = w
            .join()
            .unwrap()
            .expect("no connection may be dropped without a reply");
        match reply.status {
            200 => ok += 1,
            503 => {
                assert_eq!(reply.header("retry-after"), Some("1"));
                shed += 1;
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok + shed, 64, "every concurrent request got an answer");
    assert!(ok > 0, "the pool served nobody");

    // Shed connections are counted, not silent.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap();
    let rejected = metrics
        .text()
        .lines()
        .find_map(|l| {
            l.strip_prefix("mpstream_connections_rejected_total ")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert_eq!(rejected, shed as u64, "503 count must match the metric");

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A tenant at its queue quota gets 429 + Retry-After; cancelling a
/// *queued* (never started) job releases its quota slot immediately,
/// so the very next submit is admitted. Regression test: the slot used
/// to stay held until the runner eventually skipped the cancelled job.
#[test]
fn cancelling_a_queued_job_frees_its_tenant_quota_slot() {
    use mpstream_serve::client::http_request_keyed;
    use mpstream_serve::client::ClientOpts;

    let dir = temp_dir("quota");
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.jsonl");
    std::fs::write(
        &tenants,
        "{\"name\":\"acme\",\"key\":\"acme-secret\",\"queue_quota\":2}\n",
    )
    .unwrap();
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.join("store"),
        http_workers: 2,
        queue_capacity: 8,
        tenants_file: Some(tenants),
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    let keyed = |method: &str, path: &str, body: &[u8]| {
        http_request_keyed(
            &addr,
            method,
            path,
            body,
            Some("acme-secret"),
            &ClientOpts::default(),
        )
        .unwrap()
    };

    // A slow sweep (job A runs on the single runner thread) plus a
    // queued job B fill the quota of 2.
    let slow = request_to_spec(&sweep_request(&[
        "--size",
        "262144",
        "--vectors",
        "1,2,4,8,16",
        "--unrolls",
        "1,2",
        "--ntimes",
        "2",
        "--jobs",
        "1",
    ]))
    .unwrap();
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 202, "{}", reply.text());
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 202, "{}", reply.text());
    let job_b = parse_flat_object(reply.text().trim())
        .and_then(|o| o.get("id")?.as_u64())
        .unwrap();

    // Quota full: the third submit is refused loudly, with a hint.
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(reply.status, 429, "{}", reply.text());
    assert!(
        reply.header("retry-after").is_some(),
        "429 must carry Retry-After"
    );

    // An unknown key is 401, never silently demoted to anonymous.
    let reply = http_request_keyed(
        &addr,
        "POST",
        "/jobs",
        slow.as_bytes(),
        Some("wrong-key"),
        &ClientOpts::default(),
    )
    .unwrap();
    assert_eq!(reply.status, 401, "{}", reply.text());

    // Cancel the queued job: its slot must free without waiting for
    // the runner to reach it (job A is still hogging the runner).
    let reply = keyed("POST", &format!("/jobs/{job_b}/cancel"), b"");
    assert_eq!(reply.status, 200, "{}", reply.text());
    let reply = keyed("POST", "/jobs", slow.as_bytes());
    assert_eq!(
        reply.status,
        202,
        "cancelled queued job must release its quota slot immediately: {}",
        reply.text()
    );

    // Per-tenant counters surface in /metrics.
    let metrics = http_request(&addr, "GET", "/metrics", b"").unwrap().text();
    assert!(
        metrics.contains("mpstream_tenant_quota_rejected_total{tenant=\"acme\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("mpstream_tenant_jobs_submitted_total{tenant=\"acme\"} 3"),
        "{metrics}"
    );

    handle.trigger();
    join.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The spawned `mpstream serve` binary announces its address, serves,
/// and on SIGTERM drains and exits 0.
#[test]
fn spawned_daemon_sigterm_drains_and_exits_zero() {
    use std::io::{BufRead, BufReader, Read};
    use std::process::{Command, Stdio};

    let dir = temp_dir("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpstream"))
        .args(["serve", "--addr", "127.0.0.1:0", "--store"])
        .arg(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("mpstream serve: listening on ")
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let reply = http_request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(reply.status, 200);

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exited {status:?} on SIGTERM");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("drained, exiting"),
        "missing drain message: {rest:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
