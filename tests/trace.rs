//! Golden-trace tests for the structured tracing layer.
//!
//! The contract under test: every *virtual* event in a trace sits on the
//! deterministic simulated timeline, so the canonical export
//! ([`Trace::canonical_chrome_json`]) of the same seed + work-list is
//! byte-identical at any worker count — clean or fault-injected. Wall
//! events (scheduling, cache status, checkpoint writes) are allowed to
//! differ and are excluded from the canonical form.
//!
//! The second half property-tests the Chrome `trace_event` writer with
//! the in-tree SplitMix64: arbitrary span trees must serialize to JSON
//! that a minimal in-test parser can round-trip back to the recorded
//! events, field for field.

use kernelgen::KernelConfig;
use mpcl::{FaultPlan, FaultSpec};
use mpstream_core::sweep::sweep_space;
use mpstream_core::trace::{
    self, ArgValue, EventKind, Scope, Trace, TraceEvent, TID_BUILD, TID_ENGINE, TID_QUEUE,
};
use mpstream_core::{BenchConfig, Engine, ParamSpace, ResiliencePolicy, SplitMix64};
use std::sync::Arc;
use targets::TargetId;

const FAULTY: &str = "build=0.1,timeout=0.05,lost=0.03,bitflip=0.05";
const SEED: u64 = 0x2026_0807;

fn cpu_space() -> ParamSpace {
    ParamSpace::new().sizes_bytes([64 << 10]).widths([1, 2, 4])
}

fn protocol(k: KernelConfig) -> BenchConfig {
    BenchConfig::new(k).with_ntimes(1).with_validation(true)
}

/// Run the standard sweep at `jobs` workers and return the canonical
/// trace, optionally under the reference fault plan.
fn traced_sweep(jobs: usize, faults: Option<&str>) -> (String, Engine, Arc<Trace>) {
    let trace = Trace::new();
    let plan = faults.map(|spec| Arc::new(FaultPlan::new(FaultSpec::parse(spec).unwrap(), SEED)));
    let retries = if plan.is_some() { 5 } else { 0 };
    let engine = Engine::with_jobs(jobs)
        .with_policy(ResiliencePolicy::retrying(retries))
        .with_faults(plan)
        .with_trace(Some(trace.clone()));
    let result = sweep_space(&engine, TargetId::Cpu, &cpu_space(), protocol);
    assert_eq!(result.failures(), 0, "{}", result.table().to_text());
    (trace.canonical_chrome_json(), engine, trace)
}

#[test]
fn canonical_trace_is_byte_identical_across_job_counts() {
    let (serial, _, _) = traced_sweep(1, None);
    let (parallel, _, _) = traced_sweep(8, None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "clean trace diverged across --jobs");
    // The instrumented sites all show up.
    for name in ["attempt", "build", "write", "kernel", "dram_rows"] {
        assert!(serial.contains(&format!("\"name\":\"{name}\"")), "{serial}");
    }
    // A fault-free run traces no fault instants and no backoff sleeps.
    assert!(!serial.contains("\"name\":\"fault\""), "{serial}");
    assert!(!serial.contains("\"name\":\"backoff\""), "{serial}");
}

#[test]
fn canonical_trace_is_byte_identical_across_job_counts_under_faults() {
    let (serial, engine, _) = traced_sweep(1, Some(FAULTY));
    let (parallel, _, _) = traced_sweep(8, Some(FAULTY));
    assert_eq!(serial, parallel, "faulted trace diverged across --jobs");
    assert!(
        engine.fault_counters().total() > 0,
        "nothing injected at seed {SEED:#x}"
    );
    // Recovery is visible on the deterministic timeline.
    assert!(serial.contains("\"name\":\"fault\""), "{serial}");
    assert!(serial.contains("\"name\":\"backoff\""), "{serial}");
}

#[test]
fn fault_instants_match_injected_faults_exactly() {
    // Build faults abort an attempt before any other site can fire, so
    // injected count and traced instants must agree one-for-one.
    let (_, engine, trace) = traced_sweep(2, Some("build=0.3"));
    let fault_events: Vec<TraceEvent> = trace
        .events()
        .into_iter()
        .filter(|e| e.name == "fault")
        .collect();
    let injected = engine.fault_counters();
    assert!(injected.build > 0, "no build faults at seed {SEED:#x}");
    assert_eq!(fault_events.len() as u64, injected.total());
    for ev in &fault_events {
        assert_eq!(ev.scope, Scope::Virtual, "fault sites are deterministic");
        assert_eq!(ev.tid, TID_ENGINE);
        assert_eq!(
            ev.args,
            vec![(
                "code".to_string(),
                ArgValue::Str("TransientBuildFailure".into())
            )],
            "only the injected site may appear"
        );
    }
    // Every fault forced a retry: attempt spans outnumber configs by
    // exactly the injected count.
    let attempts = trace
        .events()
        .iter()
        .filter(|e| e.name == "attempt")
        .count() as u64;
    assert_eq!(
        attempts,
        cpu_space().configs().len() as u64 + injected.total()
    );
}

#[test]
fn wall_events_record_scheduling_without_entering_canonical_form() {
    let (canon, _, trace) = traced_sweep(4, None);
    let events = trace.events();
    let schedules = events
        .iter()
        .filter(|e| e.name == "schedule" && e.scope == Scope::Wall)
        .count();
    assert_eq!(
        schedules,
        cpu_space().configs().len(),
        "one schedule instant per configuration"
    );
    let cache_status = events
        .iter()
        .filter(|e| e.name == "cache" && e.scope == Scope::Wall)
        .count();
    assert_eq!(cache_status, cpu_space().configs().len());
    assert!(!canon.contains("\"cat\":\"wall\""), "{canon}");
    // The full export keeps them for human inspection.
    assert!(trace.to_chrome_json().contains("\"name\":\"schedule\""));
}

// ---------------------------------------------------------------------
// Property tests: the Chrome trace_event writer vs a minimal parser.
// ---------------------------------------------------------------------

/// A minimal JSON value — just enough to parse what the writer emits.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

/// Recursive-descent parser for the JSON subset the writer produces
/// (strings, numbers, bools, arrays, objects — no null, no unicode
/// escapes beyond `\u00XX`).
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("eof")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' | b'f' => self.boolean(),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            let k = self.string()?;
            self.expect(b':')?;
            kv.push((k, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(format!("bad object at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or("eof in escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                            self.i += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self.s.get(start..start + len).ok_or("eof in utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.i = start + len;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn boolean(&mut self) -> Result<Json, String> {
        if self.s[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(Json::Bool(true))
        } else if self.s[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(Json::Bool(false))
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

fn parse_trace(json: &str) -> Vec<Json> {
    let doc = Parser::parse(json).expect("writer output must parse");
    match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events.clone(),
        other => panic!("no traceEvents array: {other:?}"),
    }
}

/// Record a random tree of spans (plus counters and instants) under an
/// armed task, returning what was emitted. Timestamps are integer
/// nanoseconds, the domain the µs formatter is exact over.
fn random_events(rng: &mut SplitMix64, depth: u32, t0: f64, budget: f64, out: &mut u32) {
    if depth == 0 || budget < 4.0 || *out > 40 {
        return;
    }
    let names = [
        "build",
        "kernel",
        "write",
        "attempt",
        "odd\"name\\",
        "t\tab",
    ];
    let n_children = rng.gen_index(3) + 1;
    let slot = (budget / n_children as f64).floor();
    for c in 0..n_children {
        let ts = t0 + (c as f64) * slot;
        let dur = (slot * 0.5).floor().max(1.0);
        let tid = [TID_ENGINE, TID_BUILD, TID_QUEUE][rng.gen_index(3)];
        let name = names[rng.gen_index(names.len())];
        match rng.gen_index(4) {
            0 => {
                let hits = rng.next_u64();
                trace::counter(tid, name, ts, || {
                    trace::args([("hits", hits.into()), ("ok", true.into())])
                })
            }
            1 => trace::instant(tid, name, ts, || trace::args([("code", "Timeout".into())])),
            _ => {
                let n = rng.gen_index(9) as u64;
                trace::span(tid, name, ts, dur, || trace::args([("n", n.into())]))
            }
        }
        *out += 1;
        random_events(rng, depth - 1, ts, dur - 2.0, out);
    }
}

#[test]
fn arbitrary_span_trees_round_trip_through_chrome_json() {
    let mut rng = SplitMix64::new(0xDECA_FBAD);
    for round in 0..25u64 {
        let sink = Trace::new();
        let pids = rng.gen_index(4) + 1;
        for pid in 0..pids {
            let _task = trace::begin_task(sink.clone(), pid as u64);
            let mut emitted = 0;
            random_events(&mut rng, 3, 0.0, 1_000_000.0, &mut emitted);
        }
        if rng.gen_index(3) == 0 {
            sink.wall_instant(0, "schedule", trace::args([("worker", 3u64.into())]));
        }

        let recorded = sink.events();
        let parsed = parse_trace(&sink.to_chrome_json());
        assert_eq!(parsed.len(), recorded.len(), "round {round}");

        // to_chrome_json preserves recording order: compare field by
        // field through the parser.
        for (ev, js) in recorded.iter().zip(&parsed) {
            assert_eq!(js.get("name").unwrap().as_str(), ev.name);
            assert_eq!(js.get("pid").unwrap().as_f64(), ev.pid as f64);
            assert_eq!(js.get("tid").unwrap().as_f64(), ev.tid as f64);
            assert_eq!(js.get("ts").unwrap().as_f64(), ev.ts_ns / 1000.0);
            let (ph, cat) = (
                js.get("ph").unwrap().as_str(),
                js.get("cat").unwrap().as_str(),
            );
            match (&ev.kind, &ev.scope) {
                (EventKind::Span { dur_ns }, _) => {
                    assert_eq!(ph, "X");
                    assert_eq!(js.get("dur").unwrap().as_f64(), dur_ns / 1000.0);
                }
                (EventKind::Counter, _) => assert_eq!(ph, "C"),
                (EventKind::Instant, Scope::Virtual) => assert_eq!(ph, "i"),
                (EventKind::Instant, Scope::Wall) => {
                    assert_eq!(ph, "i");
                    assert_eq!(cat, "wall");
                }
            }
            for (k, v) in &ev.args {
                let got = js
                    .get("args")
                    .and_then(|a| a.get(k))
                    .unwrap_or_else(|| panic!("arg {k} lost"));
                match v {
                    ArgValue::Str(s) => assert_eq!(got.as_str(), s),
                    ArgValue::Num(n) => assert_eq!(got.as_f64(), *n),
                    ArgValue::Bool(b) => assert_eq!(got, &Json::Bool(*b)),
                }
            }
        }
    }
}

#[test]
fn canonical_form_is_invariant_under_recording_order() {
    // Property version of the unit test: random event sets recorded in
    // two shuffled task orders canonicalize identically.
    let mut rng = SplitMix64::new(0x5EED_CAFE);
    for _ in 0..10 {
        let pids: Vec<u64> = (0..(rng.gen_index(5) as u64 + 2)).collect();
        let seeds: Vec<u64> = pids.iter().map(|_| rng.next_u64()).collect();
        let record_all = |order: &[usize]| {
            let sink = Trace::new();
            for &idx in order {
                let _task = trace::begin_task(sink.clone(), pids[idx]);
                let mut task_rng = SplitMix64::new(seeds[idx]);
                let mut emitted = 0;
                random_events(&mut task_rng, 2, 0.0, 100_000.0, &mut emitted);
            }
            sink.canonical_chrome_json()
        };
        let forward: Vec<usize> = (0..pids.len()).collect();
        let mut shuffled = forward.clone();
        rng.shuffle(&mut shuffled);
        assert_eq!(record_all(&forward), record_all(&shuffled));
    }
}
