//! Integration tests for the `mpstream` command-line tool's library
//! surface (`mpstream_core::cli`): the full grammar, execution across
//! targets, and error reporting.

use mpstream_core::cli::{execute, kernel_config, list_devices, parse_args, CliRequest};
use targets::TargetId;

fn parse(args: &[&str]) -> CliRequest {
    parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .expect("parse ok")
        .expect("not help")
}

#[test]
fn end_to_end_on_every_target() {
    for target in ["cpu", "gpu", "aocl", "sdaccel"] {
        let mut req = parse(&["--target", target, "--size", "256K", "--ntimes", "1"]);
        req.ops.truncate(2); // copy + scale: keep it quick
        let out = execute(&req).unwrap_or_else(|e| panic!("{target}: {e}"));
        assert!(out.contains("MP-STREAM on"), "{out}");
        assert!(out.contains("copy"));
        assert!(out.contains("true"), "validation ran and passed: {out}");
    }
}

#[test]
fn csv_mode_emits_csv() {
    let mut req = parse(&["--size", "64K", "--ntimes", "1", "--csv"]);
    req.ops.truncate(1);
    let out = execute(&req).expect("runs");
    assert!(out.contains("kernel,bytes/iter,best GB/s"), "{out}");
}

#[test]
fn strided_pattern_flows_through() {
    let req = parse(&["--pattern", "colmajor", "--size", "256K", "--ntimes", "1"]);
    let cfg = kernel_config(&req, kernelgen::StreamOp::Copy).expect("config");
    assert!(matches!(
        cfg.pattern,
        kernelgen::AccessPattern::ColMajor { .. }
    ));
    let out = execute(&req).expect("runs");
    assert!(out.contains("copy"));
}

#[test]
fn vendor_flags_build_aocl_attributes() {
    let req = parse(&[
        "--target",
        "aocl",
        "--loop",
        "ndrange",
        "--simd",
        "4",
        "--compute-units",
        "2",
    ]);
    let cfg = kernel_config(&req, kernelgen::StreamOp::Copy).expect("config");
    match cfg.vendor {
        kernelgen::VendorOpts::Aocl(a) => {
            assert_eq!(a.num_simd_work_items, 4);
            assert_eq!(a.num_compute_units, 2);
        }
        other => panic!("expected AOCL opts, got {other:?}"),
    }
    assert!(
        cfg.reqd_work_group_size,
        "SIMD requires reqd_work_group_size"
    );
}

#[test]
fn big_arrays_skip_validation_automatically() {
    let mut req = parse(&["--size", "64M", "--ntimes", "1", "--target", "gpu"]);
    req.ops.truncate(1);
    let out = execute(&req).expect("runs");
    assert!(out.contains("skipped"), "{out}");
}

#[test]
fn listing_matches_registry() {
    let listing = list_devices();
    for target in TargetId::ALL {
        let device = targets::standard_device(target);
        assert!(
            listing.contains(&device.info().name),
            "{listing} missing {}",
            device.info().name
        );
    }
}

#[test]
fn invalid_vector_width_surfaces_cleanly() {
    let req = parse(&["--vector", "3"]);
    let err = kernel_config(&req, kernelgen::StreamOp::Copy).unwrap_err();
    assert!(err.contains("vector width"), "{err}");
}

#[test]
fn unknown_ops_error_lists_every_valid_name() {
    let all = ["copy", "scale", "add", "triad", "gups", "ptrans", "dgemm"];
    let err = parse_args(&["--ops".to_string(), "copy,warp".to_string()]).unwrap_err();
    assert!(err.contains("'warp'"), "{err}");
    for name in all {
        assert!(err.contains(name), "missing {name}: {err}");
    }
    // --kernel speaks the same vocabulary and fails the same way.
    let err = parse_args(&["--kernel".to_string(), "fma".to_string()]).unwrap_err();
    for name in all {
        assert!(err.contains(name), "missing {name}: {err}");
    }
}

#[test]
fn hpcc_ops_with_channels_run_on_every_target() {
    for target in ["cpu", "gpu", "aocl", "sdaccel"] {
        let req = parse(&[
            "--target",
            target,
            "--ops",
            "gups,ptrans,dgemm",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--channel-depth",
            "4",
        ]);
        let out = execute(&req).unwrap_or_else(|e| panic!("{target}: {e}"));
        for op in ["gups", "ptrans", "dgemm"] {
            assert!(out.contains(op), "{target}: {out}");
        }
        assert!(out.contains("true"), "{target} validated: {out}");
        assert!(!out.contains("false"), "{target} all valid: {out}");
        assert!(!out.contains("FAILED"), "{target}: {out}");
    }
}

fn temp_checkpoint(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mpstream-cli-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn sweep_end_to_end_with_faults() {
    let req = parse(&[
        "sweep",
        "--kernel",
        "copy",
        "--kernel",
        "triad",
        "--size",
        "64K",
        "--ntimes",
        "1",
        "--vectors",
        "1,2,4",
        "--faults",
        "build=0.1,timeout=0.05,lost=0.03,bitflip=0.05",
        "--fault-seed",
        "99",
        "--retries",
        "5",
        "--jobs",
        "2",
    ]);
    let out = execute(&req).expect("faulty sweep completes");
    assert!(out.contains("6 points"), "{out}");
    // Degradation summary rendered, with zero terminal failures.
    assert!(out.contains("gave up"), "{out}");
    assert!(out.contains("best:"), "{out}");
    assert!(!out.contains("FAILED"), "{out}");
}

#[test]
fn sweep_checkpoint_then_resume_through_the_cli() {
    let path = temp_checkpoint("resume");
    let path_str = path.to_str().unwrap().to_string();
    let first = parse(&[
        "sweep",
        "--kernel",
        "copy",
        "--size",
        "64K",
        "--ntimes",
        "1",
        "--vectors",
        "1,2",
        "--checkpoint",
        &path_str,
    ]);
    execute(&first).expect("first sweep");

    // Resume over a superset: the two checkpointed widths are answered
    // from the file; only widths 4 and 8 run.
    let resumed = parse(&[
        "sweep",
        "--kernel",
        "copy",
        "--size",
        "64K",
        "--ntimes",
        "1",
        "--vectors",
        "1,2,4,8",
        "--checkpoint",
        &path_str,
        "--resume",
    ]);
    let out = execute(&resumed).expect("resumed sweep");
    assert!(out.contains("4 points"), "{out}");
    // Summary's resumed column: points(4) ok(4) failed(0) retried(0)
    // gave-up(0) resumed(2)...
    let summary_row = out
        .lines()
        .skip_while(|l| !l.contains("resumed"))
        .nth(2)
        .expect("summary data row");
    let cells: Vec<&str> = summary_row.split_whitespace().collect();
    assert_eq!(cells[5], "2", "resumed count: {out}");

    // Without --resume the checkpoint is truncated and everything runs.
    let fresh = parse(&[
        "sweep",
        "--kernel",
        "copy",
        "--size",
        "64K",
        "--ntimes",
        "1",
        "--vectors",
        "1,2",
        "--checkpoint",
        &path_str,
    ]);
    let out = execute(&fresh).expect("fresh sweep");
    let summary_row = out
        .lines()
        .skip_while(|l| !l.contains("resumed"))
        .nth(2)
        .expect("summary data row");
    let cells: Vec<&str> = summary_row.split_whitespace().collect();
    assert_eq!(cells[5], "0", "nothing resumed after truncation: {out}");

    std::fs::remove_file(&path).ok();
}
