//! Resilience contract tests: under deterministic injected faults the
//! sweep engine must (a) recover every transient failure given retry
//! budget, (b) degrade to per-point failures — never aborts — without
//! one, (c) stay byte-identical across thread counts, (d) isolate
//! worker panics, and (e) resume from a checkpoint re-executing only
//! unfinished configurations — including from a checkpoint whose tail
//! was torn mid-record, and while the shared trace sink is being
//! appended to by an unrelated thread.

use kernelgen::{KernelConfig, StreamOp};
use mpcl::{ClError, FaultPlan, FaultSpec};
use mpstream_core::sweep::{sweep_space, sweep_space_checkpointed};
use mpstream_core::trace::{self, Trace};
use mpstream_core::{BenchConfig, Checkpoint, Engine, ParamSpace, ResiliencePolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use targets::TargetId;

/// ~20% of attempts fault transiently somewhere (the ISSUE acceptance
/// scenario): builds crash, enqueues time out or lose the device, and
/// kernels flip bits that only STREAM validation catches.
const FAULTY: &str = "build=0.1,timeout=0.05,lost=0.03,bitflip=0.05";
const SEED: u64 = 0x2026_0807;

fn cpu_space() -> ParamSpace {
    ParamSpace::new()
        .ops([
            StreamOp::Copy,
            StreamOp::Scale,
            StreamOp::Add,
            StreamOp::Triad,
        ])
        .sizes_bytes([64 << 10])
        .widths([1, 2, 4, 8])
}

/// Validation on: bit flips must be observable.
fn protocol(k: KernelConfig) -> BenchConfig {
    BenchConfig::new(k).with_ntimes(1).with_validation(true)
}

fn faulty_engine(jobs: usize, retries: u32) -> Engine {
    let plan = Arc::new(FaultPlan::new(FaultSpec::parse(FAULTY).unwrap(), SEED));
    Engine::with_jobs(jobs)
        .with_policy(ResiliencePolicy::retrying(retries))
        .with_faults(Some(plan))
}

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mpstream-resilience-{tag}-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn faulty_sweep_with_retries_matches_fault_free_run() {
    let space = cpu_space();
    let clean = sweep_space(&Engine::with_jobs(2), TargetId::Cpu, &space, protocol);
    assert_eq!(clean.failures(), 0, "fault-free baseline must be clean");

    let engine = faulty_engine(2, 5);
    let faulty = sweep_space(&engine, TargetId::Cpu, &space, protocol);

    // Every transient fault recovered within budget: zero terminal
    // failures, and the measurements are indistinguishable from the
    // fault-free sweep.
    assert_eq!(faulty.failures(), 0, "{}", faulty.table().to_text());
    assert_eq!(clean.points.len(), faulty.points.len());
    for (a, b) in clean.points.iter().zip(&faulty.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.gbps(), b.gbps(), "bandwidth diverged on {:?}", a.config);
        assert_eq!(
            a.result.as_ref().map(|m| m.validated),
            b.result.as_ref().map(|m| m.validated),
        );
    }

    // ...but the resilience layer visibly worked for it.
    assert!(
        faulty.faults.total() > 0,
        "no faults injected at seed {SEED:#x}"
    );
    assert!(
        faulty.retry.retries > 0,
        "faults recovered without retries?"
    );
    assert!(faulty.retried_points() > 0);
    assert_eq!(faulty.retry.gave_up, 0);
}

#[test]
fn zero_retry_budget_degrades_to_failed_points_without_aborting() {
    let space = cpu_space();
    let engine = faulty_engine(2, 0);
    let result = sweep_space(&engine, TargetId::Cpu, &space, protocol);

    // The sweep still returns one outcome per point...
    assert_eq!(result.points.len(), space.configs().len());
    // ...some of which are terminal failures or unvalidated corruption,
    // each counted as given-up.
    assert!(result.retry.gave_up > 0, "seed {SEED:#x} injected nothing");
    assert_eq!(result.retry.retries, 0);
    let degraded = result
        .points
        .iter()
        .filter(|p| match &p.result {
            Err(e) => e.is_transient(),
            Ok(m) => m.validated == Some(false),
        })
        .count() as u64;
    assert_eq!(degraded, result.retry.gave_up);
    // The summary table surfaces the degradation.
    let summary = result.summary().to_text();
    assert!(summary.contains("gave up"), "{summary}");
}

#[test]
fn fault_injection_is_deterministic_across_job_counts() {
    let space = cpu_space();
    let runs: Vec<_> = [1usize, 8]
        .into_iter()
        .map(|jobs| {
            let engine = faulty_engine(jobs, 3);
            let result = sweep_space(&engine, TargetId::Cpu, &space, protocol);
            (result, engine.fault_counters(), engine.retry_stats())
        })
        .collect();
    let (serial, serial_faults, serial_stats) = &runs[0];
    let (parallel, parallel_faults, parallel_stats) = &runs[1];

    // Same seed => the same faults hit the same configs on the same
    // attempts, regardless of thread interleaving: identical ordering,
    // per-point retry counts, and aggregate counters.
    assert_eq!(serial.points.len(), parallel.points.len());
    for (i, (a, b)) in serial.points.iter().zip(&parallel.points).enumerate() {
        assert_eq!(a.config, b.config, "config order diverged at {i}");
        assert_eq!(a.retries, b.retries, "retry count diverged at {i}");
        assert_eq!(a.gbps(), b.gbps(), "bandwidth diverged at {i}");
    }
    assert_eq!(serial_faults, parallel_faults);
    assert_eq!(serial_stats.retries, parallel_stats.retries);
    assert_eq!(
        serial_stats.transient_errors,
        parallel_stats.transient_errors
    );
    assert_eq!(serial_stats.gave_up, parallel_stats.gave_up);
    assert!(
        serial_faults.total() > 0,
        "nothing injected at seed {SEED:#x}"
    );
}

#[test]
fn worker_panics_become_host_panic_outcomes() {
    let configs: Vec<KernelConfig> = cpu_space().configs();
    let engine = Engine::with_jobs(4);
    let outcomes = engine.run_objective_list(&configs, |cfg| {
        if cfg.vector_width.get() == 4 {
            panic!("synthetic worker crash on width 4");
        }
        Err(ClError::DeviceNotFound)
    });

    assert_eq!(outcomes.len(), configs.len());
    for o in &outcomes {
        match (&o.result, o.config.vector_width.get()) {
            (Err(ClError::HostPanic(msg)), 4) => {
                assert!(msg.contains("synthetic worker crash"), "{msg}")
            }
            (Err(ClError::DeviceNotFound), w) => assert_ne!(w, 4),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let panics = configs.iter().filter(|c| c.vector_width.get() == 4).count() as u64;
    assert_eq!(engine.retry_stats().panics_isolated, panics);
}

#[test]
fn checkpoint_resume_reexecutes_only_unfinished_configs() {
    let full = cpu_space();
    let partial = cpu_space().widths([1, 2]);
    let path = temp_path("resume");

    // A sweep that dies after covering widths {1, 2} — simulated by
    // sweeping the sub-space into the checkpoint and dropping it.
    {
        let ckpt = Checkpoint::create(&path).unwrap();
        let engine = faulty_engine(2, 5);
        let first = sweep_space_checkpointed(&engine, TargetId::Cpu, &partial, protocol, &ckpt);
        assert_eq!(first.resumed, 0);
        assert_eq!(first.failures(), 0);
    }

    // Resume over the full space: the checkpointed points are answered
    // from the file; only widths {4, 8} execute (the fresh engine's
    // cache sees exactly that many distinct builds).
    let ckpt = Checkpoint::resume(&path).unwrap();
    assert_eq!(ckpt.len(), partial.configs().len());
    let engine = faulty_engine(2, 5);
    let resumed = sweep_space_checkpointed(&engine, TargetId::Cpu, &full, protocol, &ckpt);
    let pending = full.configs().len() - partial.configs().len();
    assert_eq!(resumed.resumed, partial.configs().len());
    assert_eq!(resumed.cache.misses as usize, pending);

    // The stitched result equals a fault-free sweep of the whole space.
    let clean = sweep_space(&Engine::with_jobs(2), TargetId::Cpu, &full, protocol);
    assert_eq!(resumed.points.len(), clean.points.len());
    for (a, b) in clean.points.iter().zip(&resumed.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.gbps(), b.gbps(), "diverged on {:?}", a.config);
    }
    // And the summary records the resumption.
    assert!(resumed.summary().to_text().contains("resumed"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_survives_a_checkpoint_tail_truncated_mid_record() {
    let space = cpu_space();
    let path = temp_path("torn");

    // A complete checkpointed sweep, then a simulated mid-write kill:
    // keep every record but the last, and half of that one.
    {
        let ckpt = Checkpoint::create(&path).unwrap();
        let engine = faulty_engine(2, 5);
        let first = sweep_space_checkpointed(&engine, TargetId::Cpu, &space, protocol, &ckpt);
        assert_eq!(first.failures(), 0);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), space.configs().len());
    let last = lines.last().unwrap();
    let torn = format!(
        "{}\n{}",
        lines[..lines.len() - 1].join("\n"),
        &last[..last.len() / 2]
    );
    std::fs::write(&path, torn).unwrap();

    // The loader drops exactly the torn record...
    let ckpt = Checkpoint::resume(&path).unwrap();
    assert_eq!(ckpt.len(), space.configs().len() - 1);

    // ...and the resumed sweep re-executes only that point.
    let engine = faulty_engine(2, 5);
    let resumed = sweep_space_checkpointed(&engine, TargetId::Cpu, &space, protocol, &ckpt);
    assert_eq!(resumed.resumed, space.configs().len() - 1);
    assert_eq!(resumed.cache.misses, 1);

    // Final metrics — bandwidth, time breakdown, DRAM rows, validation —
    // are indistinguishable from a fault-free uninterrupted sweep.
    let clean = sweep_space(&Engine::with_jobs(2), TargetId::Cpu, &space, protocol);
    for (a, b) in clean.points.iter().zip(&resumed.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(
            a.result.as_ref().ok(),
            b.result.as_ref().ok(),
            "metrics diverged on {:?}",
            a.config
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn resumed_sweep_with_concurrent_trace_appends_matches_clean_metrics() {
    let full = cpu_space();
    let partial = cpu_space().widths([1, 2]);
    let path = temp_path("trace-append");

    {
        let ckpt = Checkpoint::create(&path).unwrap();
        let engine = faulty_engine(2, 5);
        let first = sweep_space_checkpointed(&engine, TargetId::Cpu, &partial, protocol, &ckpt);
        assert_eq!(first.failures(), 0);
    }

    let ckpt = Checkpoint::resume(&path).unwrap();
    let sink = Trace::new();
    let engine = faulty_engine(2, 5).with_trace(Some(sink.clone()));

    // Hammer the shared trace from an unrelated thread for the whole
    // duration of the resumed sweep.
    let stop = Arc::new(AtomicBool::new(false));
    let appender = {
        let sink = sink.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                sink.wall_instant(999, "external-append", trace::args([("n", n.into())]));
                n += 1;
                std::thread::yield_now();
            }
            n
        })
    };
    let resumed = sweep_space_checkpointed(&engine, TargetId::Cpu, &full, protocol, &ckpt);
    stop.store(true, Ordering::Relaxed);
    let appended = appender.join().unwrap();

    assert_eq!(resumed.resumed, partial.configs().len());
    assert_eq!(resumed.failures(), 0);

    // The concurrent appends change neither the sweep's metrics...
    let clean = sweep_space(&Engine::with_jobs(2), TargetId::Cpu, &full, protocol);
    for (a, b) in clean.points.iter().zip(&resumed.points) {
        assert_eq!(a.config, b.config);
        assert_eq!(
            a.result.as_ref().ok(),
            b.result.as_ref().ok(),
            "metrics diverged on {:?}",
            a.config
        );
    }
    // ...nor the canonical (virtual-lane) trace; they surface only in
    // the full wall-event export.
    assert!(!sink.canonical_chrome_json().contains("external-append"));
    assert!(appended > 0, "appender never ran");
    assert!(sink.to_chrome_json().contains("external-append"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn transient_build_failures_do_not_poison_the_cache() {
    // Build faults only, at a rate where several configs fail their
    // first synthesis. With retries the sweep must still complete, and
    // a second identical sweep on the same engine must be answered
    // entirely from cache — the injected failures were never memoized.
    let space = cpu_space();
    let plan = Arc::new(FaultPlan::new(FaultSpec::parse("build=0.4").unwrap(), SEED));
    let engine = Engine::with_jobs(2)
        .with_policy(ResiliencePolicy::retrying(10))
        .with_faults(Some(plan));

    let first = sweep_space(&engine, TargetId::Cpu, &space, protocol);
    assert_eq!(first.failures(), 0, "{}", first.table().to_text());
    assert!(first.faults.build > 0, "no build faults at seed {SEED:#x}");
    // Injected build failures abort *before* the cache, so each config
    // still synthesizes exactly once — on its first non-faulted attempt.
    assert_eq!(first.cache.misses as usize, space.configs().len());

    let second = sweep_space(&engine, TargetId::Cpu, &space, protocol);
    assert_eq!(
        second.cache.misses, 0,
        "a transient build failure was cached: {:?}",
        second.cache
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.gbps(), b.gbps());
    }
}

#[test]
fn compact_keeps_the_complete_record_under_a_torn_newer_tail() {
    // A re-run that started overwriting an already-checkpointed config
    // and died mid-line (the cluster's re-leased-shard shape: the same
    // key appended again, torn at the tail). Compaction must keep the
    // complete pre-compaction record and count the torn line corrupt —
    // never let a half-written duplicate supersede good data.
    let space = cpu_space();
    let path = temp_path("compact-torn");
    {
        let ckpt = Checkpoint::create(&path).unwrap();
        let first = sweep_space_checkpointed(
            &Engine::with_jobs(2),
            TargetId::Cpu,
            &space,
            protocol,
            &ckpt,
        );
        assert_eq!(first.failures(), 0);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let first_line = text.lines().next().unwrap().to_string();
    assert!(mpstream_core::checkpoint::parse_record(&first_line).is_some());
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        // No trailing newline: the write was cut off mid-record.
        write!(f, "{}", &first_line[..first_line.len() - 7]).unwrap();
    }

    let stats = Checkpoint::compact(&path).unwrap();
    assert_eq!(stats.kept, space.configs().len());
    assert_eq!(
        stats.superseded, 0,
        "a torn line must not supersede the complete record"
    );
    assert_eq!(stats.corrupt, 1);

    // The survivor for that key is the complete original, and the
    // compacted file loads in full.
    let compacted = std::fs::read_to_string(&path).unwrap();
    assert!(compacted.lines().any(|l| l == first_line));
    let ckpt = Checkpoint::resume(&path).unwrap();
    assert_eq!(ckpt.len(), space.configs().len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn compaction_racing_a_concurrent_appender_loses_no_prior_records() {
    // Compact the checkpoint repeatedly while another thread appends
    // fresh records through its own handle. Compaction swaps the file
    // via temp-file + atomic rename, so an append can land on the
    // superseded inode and vanish — that is acceptable for in-flight
    // writes. What must hold: every record present before the race
    // survives byte-for-byte, and the file never parses dirty.
    let partial = cpu_space().widths([1, 2]);
    let rest = cpu_space().widths([4, 8]);
    let path = temp_path("compact-race");
    let first = {
        let ckpt = Checkpoint::create(&path).unwrap();
        sweep_space_checkpointed(
            &Engine::with_jobs(2),
            TargetId::Cpu,
            &partial,
            protocol,
            &ckpt,
        )
    };
    assert_eq!(first.failures(), 0);
    let fresh = sweep_space(&Engine::with_jobs(2), TargetId::Cpu, &rest, protocol);

    let appender = {
        let path = path.clone();
        let outcomes = fresh.points.clone();
        std::thread::spawn(move || {
            let ckpt = Checkpoint::resume(&path).unwrap();
            for outcome in &outcomes {
                ckpt.record(outcome).unwrap();
            }
        })
    };
    for _ in 0..50 {
        Checkpoint::compact(&path).unwrap();
    }
    appender.join().unwrap();

    // Every pre-race record survived, with its measurement intact.
    let ckpt = Checkpoint::resume(&path).unwrap();
    assert!(ckpt.len() >= partial.configs().len());
    for point in &first.points {
        let stored = ckpt
            .lookup(&point.config)
            .unwrap_or_else(|| panic!("pre-compaction record lost: {:?}", point.config));
        assert_eq!(stored.gbps(), point.gbps(), "record mutated by the race");
    }
    // And whatever the rename race left behind parses cleanly.
    for line in std::fs::read_to_string(&path).unwrap().lines() {
        assert!(
            mpstream_core::checkpoint::parse_record(line).is_some(),
            "corrupt line after racing compaction: {line:?}"
        );
    }
    let stats = Checkpoint::compact(&path).unwrap();
    assert_eq!(stats.superseded, 0);
    assert_eq!(stats.corrupt, 0);
    std::fs::remove_file(&path).ok();
}
