//! Failure-injection integration tests: every way a benchmark request
//! can go wrong must surface as a typed OpenCL-style error, never a
//! panic or a silent wrong number.

use kernelgen::{AoclOpts, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts};
use mpcl::{Buffer, ClError, CommandQueue, Context, Kernel, MemFlags, Program};
use mpstream_core::{BenchConfig, Runner};
use targets::{standard_device, TargetId};

fn ctx(target: TargetId) -> Context {
    Context::new(standard_device(target))
}

#[test]
fn zero_length_array_rejected() {
    let mut kernel = KernelConfig::baseline(StreamOp::Copy, 0);
    kernel.n_words = 0;
    // The zero-byte buffer allocation fails before the program builds,
    // mirroring OpenCL's CL_INVALID_BUFFER_SIZE.
    let err = Runner::for_target(TargetId::Cpu).run(&BenchConfig::new(kernel));
    assert!(
        matches!(err, Err(ClError::InvalidBufferSize { .. })),
        "{err:?}"
    );
}

#[test]
fn unroll_that_does_not_divide_rejected() {
    let mut kernel = KernelConfig::baseline(StreamOp::Copy, 1000);
    kernel.loop_mode = LoopMode::SingleWorkItemFlat;
    kernel.unroll = 3;
    let err = Runner::for_target(TargetId::FpgaAocl).run(&BenchConfig::new(kernel));
    match err {
        Err(ClError::BuildProgramFailure(log)) => assert!(log.contains("unroll"), "{log}"),
        other => panic!("expected build failure, got {other:?}"),
    }
}

#[test]
fn oversized_fpga_design_fails_with_utilisation_report() {
    let mut kernel = KernelConfig::baseline(StreamOp::Triad, 1 << 16);
    kernel.loop_mode = LoopMode::NdRange;
    kernel.reqd_work_group_size = true;
    kernel.vector_width = VectorWidth::new(16).expect("allowed");
    kernel.unroll = 4;
    kernel.vendor = VendorOpts::Aocl(AoclOpts {
        num_simd_work_items: 16,
        num_compute_units: 16,
    });
    let err = Runner::for_target(TargetId::FpgaAocl).run(&BenchConfig::new(kernel));
    match err {
        Err(ClError::BuildProgramFailure(log)) => {
            assert!(log.contains("does not fit"), "{log}");
            assert!(log.contains("utilisation"), "{log}");
        }
        other => panic!("expected synthesis failure, got {other:?}"),
    }
}

#[test]
fn device_memory_exhaustion_is_reported() {
    // The GPU has 6 GiB; three 4 GiB buffers cannot fit.
    let c = ctx(TargetId::Gpu);
    let b1 = Buffer::new(&c, MemFlags::ReadWrite, 4 << 30);
    assert!(b1.is_ok());
    let b2 = Buffer::new(&c, MemFlags::ReadWrite, 4 << 30);
    assert!(matches!(b2, Err(ClError::InvalidBufferSize { .. })));
}

#[test]
fn overlapping_kernel_buffers_rejected() {
    let c = ctx(TargetId::Cpu);
    let kernel_cfg = KernelConfig::baseline(StreamOp::Copy, 2048); // needs 8 KiB
    let p = Program::build(&c, kernel_cfg).expect("build");
    let big = Buffer::new(&c, MemFlags::ReadWrite, 16 << 10).expect("buffer");
    // Bind the same buffer as both source and destination.
    let err = Kernel::new(&p, &big, &big, None);
    assert_eq!(err.unwrap_err(), ClError::MemCopyOverlap);
}

#[test]
fn work_group_larger_than_device_max_rejected() {
    let c = ctx(TargetId::Gpu); // max wg 1024
    let mut kernel_cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 16);
    kernel_cfg.work_group_size = 4096;
    let err = Program::build(&c, kernel_cfg);
    assert!(matches!(err, Err(ClError::InvalidWorkGroupSize(_))));
}

#[test]
fn transfer_size_mismatch_rejected() {
    let c = ctx(TargetId::FpgaSdaccel);
    let q = CommandQueue::new(&c);
    let buf = Buffer::new(&c, MemFlags::ReadWrite, 1024).expect("buffer");
    let err = q.enqueue_write(&buf, &[0u8; 512]);
    assert!(matches!(err, Err(ClError::InvalidValue(_))));
}

#[test]
fn mixing_contexts_rejected() {
    let c1 = ctx(TargetId::Cpu);
    let c2 = ctx(TargetId::Cpu);
    let q1 = CommandQueue::new(&c1);
    let buf2 = Buffer::new(&c2, MemFlags::ReadWrite, 64).expect("buffer");
    assert_eq!(
        q1.enqueue_write(&buf2, &[0u8; 64]).unwrap_err(),
        ClError::InvalidContext
    );
}

#[test]
fn missing_second_source_for_add_rejected() {
    let c = ctx(TargetId::Cpu);
    let p = Program::build(&c, KernelConfig::baseline(StreamOp::Add, 1024)).expect("build");
    let a = Buffer::new(&c, MemFlags::WriteOnly, 4096).expect("a");
    let b = Buffer::new(&c, MemFlags::ReadOnly, 4096).expect("b");
    assert!(matches!(
        Kernel::new(&p, &a, &b, None),
        Err(ClError::InvalidKernelArgs(_))
    ));
}

#[test]
fn errors_display_their_opencl_codes() {
    let errs: Vec<(ClError, &str)> = vec![
        (ClError::DeviceNotFound, "CL_DEVICE_NOT_FOUND"),
        (ClError::MemCopyOverlap, "CL_MEM_COPY_OVERLAP"),
        (ClError::InvalidContext, "CL_INVALID_CONTEXT"),
        (ClError::InvalidValue("x".into()), "CL_INVALID_VALUE"),
    ];
    for (e, code) in errs {
        assert!(e.to_string().contains(code), "{e}");
    }
}
