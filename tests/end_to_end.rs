//! Cross-crate integration tests: the full benchmark pipeline from
//! platform enumeration through kernel execution, timing and validation,
//! on all four simulated targets.

use kernelgen::{AccessPattern, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth};
use mpstream_core::{BenchConfig, Runner, StreamLocation};
use targets::{standard_platforms, TargetId};

#[test]
fn platform_enumeration_matches_the_paper_setup() {
    let platforms = standard_platforms();
    assert_eq!(platforms.len(), 4);
    let names: Vec<&str> = platforms.iter().map(|p| p.name()).collect();
    assert!(names.iter().any(|n| n.contains("Intel")));
    assert!(names.iter().any(|n| n.contains("NVIDIA")));
    assert!(names.iter().any(|n| n.contains("Altera")));
    assert!(names.iter().any(|n| n.contains("Xilinx")));
}

#[test]
fn every_kernel_validates_on_every_target() {
    for target in TargetId::ALL {
        for op in StreamOp::ALL {
            let mut kernel = KernelConfig::baseline(op, 1 << 14);
            if target.is_fpga() {
                kernel.loop_mode = LoopMode::SingleWorkItemFlat;
            }
            let m = Runner::for_target(target)
                .run(&BenchConfig::new(kernel))
                .unwrap_or_else(|e| panic!("{target:?}/{op:?}: {e}"));
            assert_eq!(m.validated, Some(true), "{target:?}/{op:?}");
            assert!(m.gbps() > 0.0);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    for target in TargetId::ALL {
        let bc = BenchConfig::copy_of_bytes(1 << 20);
        let m1 = Runner::for_target(target).run(&bc).expect("run 1");
        let m2 = Runner::for_target(target).run(&bc).expect("run 2");
        assert_eq!(
            m1.best_wall_ns, m2.best_wall_ns,
            "{target:?} must be deterministic"
        );
        assert_eq!(m1.best_kernel_ns, m2.best_kernel_ns);
    }
}

#[test]
fn every_loop_mode_runs_everywhere() {
    for target in TargetId::ALL {
        for mode in LoopMode::ALL {
            let mut kernel = KernelConfig::baseline(StreamOp::Copy, 1 << 14);
            kernel.loop_mode = mode;
            let m = Runner::for_target(target)
                .run(&BenchConfig::new(kernel))
                .unwrap_or_else(|e| panic!("{target:?}/{mode:?}: {e}"));
            assert_eq!(m.validated, Some(true), "{target:?}/{mode:?}");
        }
    }
}

#[test]
fn every_pattern_runs_and_validates() {
    let patterns = [
        AccessPattern::Contiguous,
        AccessPattern::ColMajor { cols: None },
        AccessPattern::ColMajor { cols: Some(64) },
        AccessPattern::Strided { stride: 4 },
    ];
    for target in [TargetId::Cpu, TargetId::Gpu, TargetId::FpgaAocl] {
        for pattern in patterns {
            let mut kernel = KernelConfig::baseline(StreamOp::Triad, 1 << 14);
            kernel.pattern = pattern;
            if target.is_fpga() {
                kernel.loop_mode = LoopMode::SingleWorkItemFlat;
            }
            let m = Runner::for_target(target)
                .run(&BenchConfig::new(kernel))
                .unwrap_or_else(|e| panic!("{target:?}/{pattern:?}: {e}"));
            assert_eq!(m.validated, Some(true), "{target:?}/{pattern:?}");
        }
    }
}

#[test]
fn doubles_move_more_bytes_than_ints() {
    let mut i32_k = KernelConfig::baseline(StreamOp::Copy, 1 << 16);
    i32_k.dtype = DataType::I32;
    let mut f64_k = KernelConfig::baseline(StreamOp::Copy, 1 << 16);
    f64_k.dtype = DataType::F64;
    let r = Runner::for_target(TargetId::Cpu);
    let mi = r.run(&BenchConfig::new(i32_k)).expect("i32");
    let mf = r.run(&BenchConfig::new(f64_k)).expect("f64");
    assert_eq!(mf.bytes_moved, 2 * mi.bytes_moved);
}

#[test]
fn wider_vectors_help_fpgas_not_required_on_gpu() {
    let run = |target: TargetId, width: u32| {
        let mut kernel = KernelConfig::baseline(StreamOp::Copy, 1 << 20);
        kernel.vector_width = VectorWidth::new(width).expect("allowed");
        if target.is_fpga() {
            kernel.loop_mode = LoopMode::SingleWorkItemFlat;
        }
        Runner::for_target(target)
            .run(&BenchConfig::new(kernel).with_validation(false))
            .expect("run")
            .gbps()
    };
    // FPGA: vectorization is the headline lever.
    assert!(run(TargetId::FpgaAocl, 16) > 3.0 * run(TargetId::FpgaAocl, 1));
    // GPU: scalar NDRange already coalesces; w16 must not be required.
    assert!(run(TargetId::Gpu, 1) > 0.5 * run(TargetId::Gpu, 16));
}

#[test]
fn host_link_measurement_bounded_by_pcie() {
    let bc = BenchConfig::copy_of_bytes(16 << 20)
        .with_validation(false)
        .over_link();
    assert_eq!(bc.location, StreamLocation::HostOverLink);
    let m = Runner::for_target(TargetId::Gpu).run(&bc).expect("run");
    // PCIe x16 is ~12 GB/s; the round-trip measurement must sit below it.
    assert!(m.gbps() < 13.0, "link-bound rate {}", m.gbps());
}

#[test]
fn fpga_builds_report_synthesis_artifacts() {
    let mut kernel = KernelConfig::baseline(StreamOp::Scale, 1 << 14);
    kernel.loop_mode = LoopMode::SingleWorkItemFlat;
    kernel.vector_width = VectorWidth::new(8).expect("allowed");
    for target in [TargetId::FpgaAocl, TargetId::FpgaSdaccel] {
        let m = Runner::for_target(target)
            .run(&BenchConfig::new(kernel.clone()))
            .expect("run");
        let fmax = m.fmax_mhz.expect("fpga fmax");
        assert!(fmax > 50.0 && fmax < 400.0, "{target:?} fmax {fmax}");
        let res = m.resources.expect("fpga resources");
        assert!(res.logic > 0);
        assert!(
            m.build_log.contains("%"),
            "synthesis report: {}",
            m.build_log
        );
    }
}

#[test]
fn generated_source_matches_executed_config() {
    let mut kernel = KernelConfig::baseline(StreamOp::Triad, 1 << 12);
    kernel.vector_width = VectorWidth::new(4).expect("allowed");
    kernel.unroll = 2;
    kernel.loop_mode = LoopMode::SingleWorkItemFlat;
    let src = kernelgen::generate_source(&kernel);
    assert!(src.contains("mp_triad"));
    assert!(src.contains("int4"));
    assert!(src.contains("opencl_unroll_hint(2)"));
    // And the same config actually runs.
    let m = Runner::for_target(TargetId::FpgaSdaccel)
        .run(&BenchConfig::new(kernel))
        .expect("run");
    assert_eq!(m.validated, Some(true));
}
