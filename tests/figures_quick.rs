//! Integration tests for the figure-regeneration pipeline: every panel
//! regenerates in quick mode and preserves the paper's headline shapes.

use mpstream_core::experiments::{run_figure, RunOpts};
use mpstream_core::FigureId;

#[test]
fn all_six_figures_regenerate_without_notes() {
    for id in FigureId::ALL {
        let fig = run_figure(id, RunOpts::quick());
        assert!(!fig.series.is_empty(), "{id:?} has series");
        for s in &fig.series {
            assert!(!s.points.is_empty(), "{id:?}/{} has points", s.label);
            assert!(
                s.points.iter().all(|&(_, y)| y.is_finite() && y > 0.0),
                "{id:?}/{}: positive finite bandwidths: {:?}",
                s.label,
                s.points
            );
        }
        assert!(
            fig.notes.is_empty(),
            "{id:?} unexpected notes: {:?}",
            fig.notes
        );
    }
}

#[test]
fn fig2_strided_never_beats_contiguous_at_the_largest_size() {
    let fig = run_figure(FigureId::Fig2, RunOpts::quick());
    for target in ["aocl", "sdaccel", "cpu", "gpu"] {
        let last = |label: String| {
            fig.series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.points.last())
                .map(|&(_, y)| y)
                .unwrap_or_else(|| panic!("missing series {label}"))
        };
        let c = last(format!("{target}-contig"));
        let s = last(format!("{target}-strided"));
        assert!(s < c, "{target}: strided {s} vs contig {c}");
    }
}

#[test]
fn fig4a_add_and_triad_move_more_bytes_but_similar_rates() {
    let fig = run_figure(FigureId::Fig4a, RunOpts::quick());
    // Sanity: four kernels, four targets each.
    assert_eq!(fig.series.len(), 4);
    for s in &fig.series {
        assert_eq!(s.points.len(), 4, "{}", s.label);
    }
}

#[test]
fn quick_and_full_options_differ_in_point_count() {
    let quick = run_figure(FigureId::Fig1b, RunOpts::quick());
    assert!(
        quick.series[0].points.len() < 5,
        "quick mode thins the sweep"
    );
}
