//! Randomized-but-deterministic tests over the core invariants:
//! configuration → codegen/stream/interpreter coherence, coalescer
//! conservation, simulator determinism, and end-to-end validation on
//! randomly drawn tuning points.
//!
//! Each test draws its cases from a fixed-seed [`SplitMix64`], so every
//! run (and every machine) checks exactly the same points — failures
//! reproduce by construction, with no dependency on a property-testing
//! framework.

use kernelgen::{
    access_stream, generate_source, total_accesses, validate, AccessPattern, DataType, ExecPlan,
    KernelConfig, LoopMode, StreamOp, VectorWidth,
};
use memsim::{Access, AccessKind, Coalescer, Dram, DramConfig};
use mpstream_core::{BenchConfig, Runner, SplitMix64};
use std::collections::HashSet;
use targets::TargetId;

/// Draw a random valid configuration: power-of-two sizes with
/// power-of-two widths/strides/unrolls, so divisibility holds by
/// construction — `validate` is still asserted via the retry loop.
fn sample_config(rng: &mut SplitMix64) -> KernelConfig {
    loop {
        let op = StreamOp::ALL[rng.gen_index(StreamOp::ALL.len())];
        let dtype = [DataType::I32, DataType::F64][rng.gen_index(2)];
        let n_words = 1u64 << (10 + rng.gen_index(5)); // 2^10 .. 2^14
        let width = VectorWidth::ALLOWED[rng.gen_index(VectorWidth::ALLOWED.len())];
        let pattern = match rng.gen_index(4) {
            0 => AccessPattern::Contiguous,
            1 => AccessPattern::ColMajor { cols: None },
            2 => AccessPattern::ColMajor {
                cols: Some(1 << (1 + rng.gen_index(5))),
            },
            _ => AccessPattern::Strided {
                stride: 1 << (1 + rng.gen_index(5)),
            },
        };
        let loop_mode = LoopMode::ALL[rng.gen_index(LoopMode::ALL.len())];
        let unroll = [1u32, 2, 4, 8][rng.gen_index(4)];
        let cfg = KernelConfig {
            op,
            dtype,
            n_words,
            vector_width: VectorWidth::new(width).expect("allowed"),
            pattern,
            loop_mode,
            unroll,
            work_group_size: 64,
            reqd_work_group_size: false,
            vendor: Default::default(),
            channel: None,
            q: 3.0,
        };
        if validate(&cfg).is_ok() {
            return cfg;
        }
    }
}

/// Draw a random valid configuration across the whole workload family
/// (STREAM + HPCC), optionally channeled — the shapes `sample_config`
/// predates. HPCC ops are scalar-only; GUPS and DGEMM-lite are i32.
fn sample_family_config(rng: &mut SplitMix64) -> KernelConfig {
    use kernelgen::{ChannelSpec, Op};
    loop {
        let op = Op::FAMILIES[rng.gen_index(Op::FAMILIES.len())];
        let mut cfg = KernelConfig::baseline(op, 1u64 << (10 + rng.gen_index(4)));
        cfg.dtype = if op == Op::Ptrans || op.is_stream() {
            [DataType::I32, DataType::F64][rng.gen_index(2)]
        } else {
            DataType::I32
        };
        cfg.pattern = match rng.gen_index(3) {
            0 => AccessPattern::Contiguous,
            1 => AccessPattern::ColMajor { cols: None },
            _ => AccessPattern::Strided { stride: 4 },
        };
        cfg.loop_mode = LoopMode::ALL[rng.gen_index(LoopMode::ALL.len())];
        cfg.unroll = [1u32, 2, 4][rng.gen_index(3)];
        cfg.channel = match rng.gen_index(4) {
            0 => None,
            _ => Some(ChannelSpec {
                depth: [0u32, 4, 64, 1024][rng.gen_index(4)],
            }),
        };
        if validate(&cfg).is_ok() {
            return cfg;
        }
    }
}

#[test]
fn generated_source_is_well_formed() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for _ in 0..64 {
        let cfg = sample_config(&mut rng);
        let src = generate_source(&cfg);
        let mut depth = 0i64;
        for ch in src.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces:\n{src}");
        }
        assert_eq!(depth, 0);
        let entry = format!("mp_{}", cfg.op.name());
        assert!(src.contains(&entry));
        if cfg.dtype == DataType::F64 {
            assert!(src.contains("cl_khr_fp64"));
        }
    }
}

#[test]
fn access_stream_is_complete_and_in_bounds() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for _ in 0..64 {
        let cfg = sample_config(&mut rng);
        let lane_group = 1u32 << rng.gen_index(6);
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 0, bytes, 2 * bytes);
        let accs: Vec<_> = access_stream(&plan, lane_group).collect();
        assert_eq!(accs.len() as u64, total_accesses(&cfg));

        // Every access lies inside exactly one array span, and per-array
        // the touched offsets cover the array exactly once.
        let mut reads_b = HashSet::new();
        let mut reads_c = HashSet::new();
        let mut writes_a = HashSet::new();
        for a in &accs {
            let (set, base) = match a.kind {
                kernelgen::access::AccessKind::Write => (&mut writes_a, 0),
                kernelgen::access::AccessKind::Read if a.addr < 2 * bytes => (&mut reads_b, bytes),
                kernelgen::access::AccessKind::Read => (&mut reads_c, 2 * bytes),
            };
            let off = a.addr - base;
            assert!(off + a.bytes as u64 <= bytes, "access beyond array: {a:?}");
            assert!(set.insert(off), "duplicate access at offset {off}");
        }
        let vecs = cfg.n_vectors() as usize;
        assert_eq!(reads_b.len(), vecs);
        assert_eq!(writes_a.len(), vecs);
        assert_eq!(reads_c.len(), if cfg.op.uses_c() { vecs } else { 0 });
    }
}

#[test]
fn interpreter_matches_elementwise_reference() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for _ in 0..64 {
        let cfg = sample_config(&mut rng);
        let n = cfg.n_words as usize;
        let w = cfg.dtype.word_bytes() as usize;
        // Deterministic pseudo-random sources.
        let word = |seed: usize, i: usize| -> i64 { ((i * 2654435761 + seed) % 1000) as i64 };
        let mut b = vec![0u8; n * w];
        let mut c = vec![0u8; n * w];
        for i in 0..n {
            match cfg.dtype {
                DataType::I32 => {
                    b[i * 4..i * 4 + 4].copy_from_slice(&(word(1, i) as i32).to_ne_bytes());
                    c[i * 4..i * 4 + 4].copy_from_slice(&(word(2, i) as i32).to_ne_bytes());
                }
                DataType::F64 => {
                    b[i * 8..i * 8 + 8].copy_from_slice(&(word(1, i) as f64).to_ne_bytes());
                    c[i * 8..i * 8 + 8].copy_from_slice(&(word(2, i) as f64).to_ne_bytes());
                }
            }
        }
        let mut a = vec![0u8; n * w];
        kernelgen::execute(&cfg, &mut a, &b, &c);

        for i in 0..n {
            let (bv, cv) = (word(1, i) as f64, word(2, i) as f64);
            let expect = match cfg.op {
                StreamOp::Copy => bv,
                StreamOp::Scale => 3.0 * bv,
                StreamOp::Add => bv + cv,
                StreamOp::Triad => bv + 3.0 * cv,
                _ => unreachable!("sample_config draws STREAM ops only"),
            };
            let got = match cfg.dtype {
                DataType::I32 => {
                    i32::from_ne_bytes(a[i * 4..i * 4 + 4].try_into().expect("4")) as f64
                }
                DataType::F64 => f64::from_ne_bytes(a[i * 8..i * 8 + 8].try_into().expect("8")),
            };
            assert_eq!(got, expect, "element {} of {:?}", i, cfg.op);
        }
    }
}

#[test]
fn extent_coalescer_conserves_bytes_and_order() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for _ in 0..64 {
        let len = 1 + rng.gen_index(199);
        let accesses: Vec<Access> = (0..len)
            .map(|_| Access::read(rng.gen_index(10_000) as u64 * 4, 4))
            .collect();
        let window = 1 + rng.gen_index(63);
        let cap_exp = 5 + rng.gen_index(6) as u32;
        let co = Coalescer::extent(1 << cap_exp, window);
        let out: Vec<Access> = co.coalesce(accesses.clone()).collect();
        // Exact byte conservation (extent mode never pads).
        let in_bytes: u64 = accesses.iter().map(|a| a.bytes as u64).sum();
        let out_bytes: u64 = out.iter().map(|a| a.bytes as u64).sum();
        assert_eq!(in_bytes, out_bytes);
        // No transaction exceeds the burst cap.
        assert!(out.iter().all(|a| a.bytes <= 1 << cap_exp));
    }
}

#[test]
fn aligned_coalescer_covers_every_request() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for _ in 0..64 {
        let len = 1 + rng.gen_index(99);
        let accesses: Vec<Access> = (0..len)
            .map(|_| Access::read(rng.gen_index(10_000) as u64 * 4, 4))
            .collect();
        let co = Coalescer::new(128, 32);
        let out: Vec<Access> = co.coalesce(accesses.clone()).collect();
        for a in &accesses {
            assert!(
                out.iter().any(|s| s.addr <= a.addr
                    && a.addr + a.bytes as u64 <= s.addr + s.bytes as u64
                    && s.kind == a.kind),
                "request {a:?} not covered"
            );
        }
        // Aligned mode emits whole segments only.
        assert!(out.iter().all(|s| s.bytes == 128 && s.addr % 128 == 0));
    }
}

#[test]
fn dram_completion_never_precedes_issue() {
    let mut rng = SplitMix64::new(0x5EED_0006);
    for _ in 0..64 {
        let addr = rng.gen_index(1 << 24) as u64;
        let bytes = [4u32, 16, 64, 256, 1024][rng.gen_index(5)];
        let at = rng.gen_index(100_000) as u64;
        let write = rng.next_u64() & 1 == 1;
        let mut d = Dram::new(DramConfig::ddr3_quad_channel());
        let acc = Access {
            addr,
            bytes,
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        };
        let (start, done) = d.service(at, acc);
        assert!(done > at, "done {done} must be after issue {at}");
        assert!(done > start || bytes == 0);
    }
}

#[test]
fn random_configs_validate_end_to_end_on_cpu_and_aocl() {
    // End-to-end runs are heavier: fewer cases.
    let mut rng = SplitMix64::new(0x5EED_0007);
    for _ in 0..12 {
        let cfg = sample_config(&mut rng);
        for target in [TargetId::Cpu, TargetId::FpgaAocl] {
            match Runner::for_target(target).run(&BenchConfig::new(cfg.clone()).with_ntimes(1)) {
                Ok(m) => {
                    assert_eq!(m.validated, Some(true), "{target:?}");
                    assert!(m.gbps().is_finite() && m.gbps() > 0.0);
                }
                // Wide-vector x deep-unroll points legitimately exceed
                // the Stratix V's logic; synthesis failure is a valid
                // sweep outcome, any other error is a bug.
                Err(mpcl::ClError::BuildProgramFailure(log)) => {
                    assert!(
                        log.contains("does not fit"),
                        "unexpected build failure: {log}"
                    );
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
}

#[test]
fn random_family_configs_validate_end_to_end() {
    // STREAM + HPCC ops, with and without channels, on a CPU and an
    // FPGA target: every successful run must validate, and channeled
    // runs must report their stall accounting consistently.
    let mut rng = SplitMix64::new(0x5EED_0008);
    for _ in 0..12 {
        let cfg = sample_family_config(&mut rng);
        for target in [TargetId::Cpu, TargetId::FpgaAocl] {
            match Runner::for_target(target).run(&BenchConfig::new(cfg.clone()).with_ntimes(1)) {
                Ok(m) => {
                    assert_eq!(m.validated, Some(true), "{target:?} {cfg:?}");
                    assert!(m.gbps().is_finite() && m.gbps() > 0.0);
                    assert!(m.stall_ns >= 0.0);
                    if cfg.channel.is_none() {
                        assert_eq!(m.stall_ns, 0.0, "single-stage kernels never stall");
                    }
                }
                Err(mpcl::ClError::BuildProgramFailure(log)) => {
                    assert!(
                        log.contains("does not fit"),
                        "unexpected build failure: {log}"
                    );
                }
                Err(other) => panic!("unexpected error: {other} for {cfg:?}"),
            }
        }
    }
}
