//! Property-based tests (proptest) over the core invariants:
//! configuration → codegen/stream/interpreter coherence, coalescer
//! conservation, simulator determinism, and end-to-end validation on
//! randomly drawn tuning points.

use kernelgen::{
    access_stream, generate_source, total_accesses, validate, AccessPattern, DataType, ExecPlan,
    KernelConfig, LoopMode, StreamOp, VectorWidth,
};
use memsim::{Access, AccessKind, Coalescer, Dram, DramConfig};
use mpstream_core::{BenchConfig, Runner};
use proptest::prelude::*;
use std::collections::HashSet;
use targets::TargetId;

fn arb_op() -> impl Strategy<Value = StreamOp> {
    prop_oneof![
        Just(StreamOp::Copy),
        Just(StreamOp::Scale),
        Just(StreamOp::Add),
        Just(StreamOp::Triad)
    ]
}

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop_oneof![Just(DataType::I32), Just(DataType::F64)]
}

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Contiguous),
        Just(AccessPattern::ColMajor { cols: None }),
        (1u32..=5).prop_map(|e| AccessPattern::ColMajor { cols: Some(1 << e) }),
        (1u32..=5).prop_map(|e| AccessPattern::Strided { stride: 1 << e }),
    ]
}

fn arb_loop_mode() -> impl Strategy<Value = LoopMode> {
    prop_oneof![
        Just(LoopMode::NdRange),
        Just(LoopMode::SingleWorkItemFlat),
        Just(LoopMode::SingleWorkItemNested)
    ]
}

/// Random valid configurations: power-of-two sizes with power-of-two
/// widths/strides/unrolls, so divisibility holds by construction —
/// `validate` is still asserted.
fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        arb_op(),
        arb_dtype(),
        10u32..=14, // n_words = 2^10 .. 2^14
        prop::sample::select(&VectorWidth::ALLOWED[..]),
        arb_pattern(),
        arb_loop_mode(),
        prop::sample::select(vec![1u32, 2, 4, 8]),
    )
        .prop_map(|(op, dtype, n_exp, width, pattern, loop_mode, unroll)| KernelConfig {
            op,
            dtype,
            n_words: 1 << n_exp,
            vector_width: VectorWidth::new(width).expect("allowed"),
            pattern,
            loop_mode,
            unroll,
            work_group_size: 64,
            reqd_work_group_size: false,
            vendor: Default::default(),
            q: 3.0,
        })
        .prop_filter("valid configuration", |cfg| validate(cfg).is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_source_is_well_formed(cfg in arb_config()) {
        let src = generate_source(&cfg);
        let mut depth = 0i64;
        for ch in src.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0, "unbalanced braces:\n{}", src);
        }
        prop_assert_eq!(depth, 0);
        let entry = format!("mp_{}", cfg.op.name());
        prop_assert!(src.contains(&entry));
        if cfg.dtype == DataType::F64 {
            prop_assert!(src.contains("cl_khr_fp64"));
        }
    }

    #[test]
    fn access_stream_is_complete_and_in_bounds(cfg in arb_config(), lane_exp in 0u32..6) {
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 0, bytes, 2 * bytes);
        let lane_group = 1 << lane_exp;
        let accs: Vec<_> = access_stream(&plan, lane_group).collect();
        prop_assert_eq!(accs.len() as u64, total_accesses(&cfg));

        // Every access lies inside exactly one array span, and per-array
        // the touched offsets cover the array exactly once.
        let mut reads_b = HashSet::new();
        let mut reads_c = HashSet::new();
        let mut writes_a = HashSet::new();
        for a in &accs {
            let (set, base) = match a.kind {
                kernelgen::access::AccessKind::Write => (&mut writes_a, 0),
                kernelgen::access::AccessKind::Read if a.addr < 2 * bytes => (&mut reads_b, bytes),
                kernelgen::access::AccessKind::Read => (&mut reads_c, 2 * bytes),
            };
            let off = a.addr - base;
            prop_assert!(off + a.bytes as u64 <= bytes, "access beyond array: {:?}", a);
            prop_assert!(set.insert(off), "duplicate access at offset {}", off);
        }
        let vecs = cfg.n_vectors() as usize;
        prop_assert_eq!(reads_b.len(), vecs);
        prop_assert_eq!(writes_a.len(), vecs);
        prop_assert_eq!(reads_c.len(), if cfg.op.uses_c() { vecs } else { 0 });
    }

    #[test]
    fn interpreter_matches_elementwise_reference(cfg in arb_config()) {
        let n = cfg.n_words as usize;
        let w = cfg.dtype.word_bytes() as usize;
        // Deterministic pseudo-random sources.
        let word = |seed: usize, i: usize| -> i64 { ((i * 2654435761 + seed) % 1000) as i64 };
        let mut b = vec![0u8; n * w];
        let mut c = vec![0u8; n * w];
        for i in 0..n {
            match cfg.dtype {
                DataType::I32 => {
                    b[i * 4..i * 4 + 4].copy_from_slice(&(word(1, i) as i32).to_ne_bytes());
                    c[i * 4..i * 4 + 4].copy_from_slice(&(word(2, i) as i32).to_ne_bytes());
                }
                DataType::F64 => {
                    b[i * 8..i * 8 + 8].copy_from_slice(&(word(1, i) as f64).to_ne_bytes());
                    c[i * 8..i * 8 + 8].copy_from_slice(&(word(2, i) as f64).to_ne_bytes());
                }
            }
        }
        let mut a = vec![0u8; n * w];
        kernelgen::execute(&cfg, &mut a, &b, &c);

        for i in 0..n {
            let (bv, cv) = (word(1, i) as f64, word(2, i) as f64);
            let expect = match cfg.op {
                StreamOp::Copy => bv,
                StreamOp::Scale => 3.0 * bv,
                StreamOp::Add => bv + cv,
                StreamOp::Triad => bv + 3.0 * cv,
            };
            let got = match cfg.dtype {
                DataType::I32 => i32::from_ne_bytes(a[i * 4..i * 4 + 4].try_into().expect("4")) as f64,
                DataType::F64 => f64::from_ne_bytes(a[i * 8..i * 8 + 8].try_into().expect("8")),
            };
            prop_assert_eq!(got, expect, "element {} of {:?}", i, cfg.op);
        }
    }

    #[test]
    fn extent_coalescer_conserves_bytes_and_order(
        offsets in prop::collection::vec(0u64..10_000, 1..200),
        window in 1usize..64,
        cap_exp in 5u32..11,
    ) {
        let accesses: Vec<Access> = offsets.iter().map(|&o| Access::read(o * 4, 4)).collect();
        let co = Coalescer::extent(1 << cap_exp, window);
        let out: Vec<Access> = co.coalesce(accesses.clone()).collect();
        // Exact byte conservation (extent mode never pads).
        let in_bytes: u64 = accesses.iter().map(|a| a.bytes as u64).sum();
        let out_bytes: u64 = out.iter().map(|a| a.bytes as u64).sum();
        prop_assert_eq!(in_bytes, out_bytes);
        // No transaction exceeds the burst cap.
        prop_assert!(out.iter().all(|a| a.bytes <= 1 << cap_exp));
    }

    #[test]
    fn aligned_coalescer_covers_every_request(
        offsets in prop::collection::vec(0u64..10_000, 1..100),
    ) {
        let accesses: Vec<Access> = offsets.iter().map(|&o| Access::read(o * 4, 4)).collect();
        let co = Coalescer::new(128, 32);
        let out: Vec<Access> = co.coalesce(accesses.clone()).collect();
        for a in &accesses {
            prop_assert!(
                out.iter().any(|s| s.addr <= a.addr
                    && a.addr + a.bytes as u64 <= s.addr + s.bytes as u64
                    && s.kind == a.kind),
                "request {:?} not covered", a
            );
        }
        // Aligned mode emits whole segments only.
        prop_assert!(out.iter().all(|s| s.bytes == 128 && s.addr % 128 == 0));
    }

    #[test]
    fn dram_completion_never_precedes_issue(
        addr in 0u64..(1 << 24),
        bytes in prop::sample::select(vec![4u32, 16, 64, 256, 1024]),
        at in 0u64..100_000,
        write in any::<bool>(),
    ) {
        let mut d = Dram::new(DramConfig::ddr3_quad_channel());
        let acc = Access {
            addr,
            bytes,
            kind: if write { AccessKind::Write } else { AccessKind::Read },
        };
        let (start, done) = d.service(at, acc);
        prop_assert!(done > at, "done {} must be after issue {}", done, at);
        prop_assert!(done > start || bytes == 0);
    }
}

proptest! {
    // End-to-end runs are heavier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_configs_validate_end_to_end_on_cpu_and_aocl(cfg in arb_config()) {
        for target in [TargetId::Cpu, TargetId::FpgaAocl] {
            match Runner::for_target(target).run(&BenchConfig::new(cfg.clone()).with_ntimes(1)) {
                Ok(m) => {
                    prop_assert_eq!(m.validated, Some(true), "{:?}", target);
                    prop_assert!(m.gbps().is_finite() && m.gbps() > 0.0);
                }
                // Wide-vector x deep-unroll points legitimately exceed
                // the Stratix V's logic; synthesis failure is a valid
                // sweep outcome, any other error is a bug.
                Err(mpcl::ClError::BuildProgramFailure(log)) => {
                    prop_assert!(log.contains("does not fit"), "unexpected build failure: {}", log);
                }
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
            }
        }
    }
}
