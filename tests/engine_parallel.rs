//! Engine contract tests: the parallel work-list executor must be a
//! pure optimization — identical results in identical order at any
//! thread count — and the shared build cache must absorb all repeated
//! synthesis work.

use kernelgen::{LoopMode, StreamOp};
use mpstream_core::sweep::sweep_space;
use mpstream_core::{BenchConfig, Engine, ParamSpace};
use std::time::Instant;
use targets::TargetId;

fn aocl_space() -> ParamSpace {
    ParamSpace::new()
        .ops([StreamOp::Copy, StreamOp::Triad])
        .sizes_mb([1, 2])
        .widths([1, 2, 4, 8, 16])
        .loop_modes(LoopMode::ALL)
        .unrolls([1, 2, 4])
}

fn protocol(k: kernelgen::KernelConfig) -> BenchConfig {
    BenchConfig::new(k).with_ntimes(2).with_validation(false)
}

#[test]
fn parallel_sweep_is_deterministic_and_ordered() {
    let space = aocl_space();
    assert!(
        space.configs().len() >= 64,
        "need a >=64-point space to exercise the pool, got {}",
        space.configs().len()
    );

    let serial = Engine::with_jobs(1);
    let t0 = Instant::now();
    let s1 = sweep_space(&serial, TargetId::FpgaAocl, &space, protocol);
    let serial_wall = t0.elapsed();

    let parallel = Engine::with_jobs(8);
    let t0 = Instant::now();
    let s8 = sweep_space(&parallel, TargetId::FpgaAocl, &space, protocol);
    let parallel_wall = t0.elapsed();

    // Byte-identical ordering: outcome i corresponds to config i of the
    // space, regardless of which worker ran it.
    assert_eq!(s1.points.len(), s8.points.len());
    for (i, (a, b)) in s1.points.iter().zip(&s8.points).enumerate() {
        assert_eq!(a.config, b.config, "config order diverged at point {i}");
        assert_eq!(a.config, space.configs()[i], "point {i} not in space order");
        assert_eq!(a.gbps(), b.gbps(), "bandwidth diverged at point {i}");
        assert_eq!(
            a.result.is_ok(),
            b.result.is_ok(),
            "status diverged at point {i}"
        );
    }

    // The device models are deterministic simulators, so the parallel
    // speedup is real compute spread across cores. Only assert it where
    // there *are* cores; single-core CI boxes still get the full
    // determinism check above and print both timings for the record.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores > 1 {
        assert!(
            parallel_wall < serial_wall,
            "jobs=8 ({parallel_wall:?}) not faster than jobs=1 ({serial_wall:?}) on {cores} cores"
        );
    } else {
        eprintln!(
            "note: single-core host ({cores} cpu); speedup assertion skipped \
             (serial {serial_wall:?}, parallel {parallel_wall:?})"
        );
    }
}

#[test]
fn repeated_sweep_hits_cache_completely() {
    let space = aocl_space();
    let engine = Engine::with_jobs(4);

    let first = sweep_space(&engine, TargetId::FpgaAocl, &space, protocol);
    // Cold cache: every distinct point is a miss, nothing to hit.
    assert_eq!(first.cache.misses as usize, space.configs().len());
    assert_eq!(first.cache.hits, 0);

    let second = sweep_space(&engine, TargetId::FpgaAocl, &space, protocol);
    // Warm cache: the identical sweep synthesizes nothing.
    assert_eq!(
        second.cache.misses, 0,
        "second sweep rebuilt {} kernels",
        second.cache.misses
    );
    assert_eq!(second.cache.hits as usize, space.configs().len());
    assert_eq!(second.cache.hit_rate(), 1.0);

    // And the measurements themselves are unchanged by cache reuse.
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.gbps(), b.gbps());
    }
}

#[test]
fn failed_builds_are_cached_as_outcomes_too() {
    // Deep-unrolled wide vectors exceed the Stratix V fabric; those
    // "does not fit" results must be cached like successes so a retry
    // sweep does not re-synthesize doomed points.
    let space = ParamSpace::new()
        .ops([StreamOp::Triad])
        .sizes_mb([1])
        .widths([16])
        .loop_modes([LoopMode::SingleWorkItemFlat])
        .unrolls([8]);
    let engine = Engine::with_jobs(2);

    let first = sweep_space(&engine, TargetId::FpgaAocl, &space, protocol);
    assert!(
        first.failures() > 0,
        "expected at least one synthesis failure"
    );

    let second = sweep_space(&engine, TargetId::FpgaAocl, &space, protocol);
    assert_eq!(second.cache.misses, 0);
    assert_eq!(first.failures(), second.failures());
}
