//! The MP-STREAM command-line tool — the simulated-device equivalent of
//! the paper's benchmark binary.
//!
//! ```text
//! mpstream --target aocl --kernel copy --size 4M --vector 16 --loop flat
//! mpstream sweep --target aocl --vectors 1,2,4,8,16 --unrolls 1,2 \
//!          --faults build=0.2,timeout=0.1 --checkpoint sweep.jsonl --resume
//! mpstream --list-devices
//! mpstream --show-kernel --target sdaccel --loop nested
//! ```
//!
//! All parsing and execution lives in `mpstream_core::cli` (unit-tested);
//! this binary only wires stdin/stdout/exit codes.

use mpstream_core::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-devices") {
        print!("{}", cli::list_devices());
        return ExitCode::SUCCESS;
    }
    match cli::parse_args(&args) {
        Ok(None) => {
            println!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(Some(req)) => match cli::execute(&req) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::from(2)
        }
    }
}
