//! The MP-STREAM command-line tool — the simulated-device equivalent of
//! the paper's benchmark binary.
//!
//! ```text
//! mpstream --target aocl --kernel copy --size 4M --vector 16 --loop flat
//! mpstream sweep --target aocl --vectors 1,2,4,8,16 --unrolls 1,2 \
//!          --faults build=0.2,timeout=0.1 --checkpoint sweep.jsonl --resume
//! mpstream dse --target aocl --vectors 1,2,4,8,16 --unrolls 1,2,4 \
//!          --strategy model --budget 9 --dse-seed 42
//! mpstream serve --addr 127.0.0.1:8377 --store ./mpstream-store
//! mpstream submit --kernel triad --vectors 1,2,4,8,16
//! mpstream status 1 && mpstream fetch 1
//! mpstream watch 1
//! mpstream coordinator --addr 127.0.0.1:8377 --shard-points 4
//! mpstream worker --join 127.0.0.1:8377
//! mpstream --list-devices
//! mpstream --show-kernel --target sdaccel --loop nested
//! ```
//!
//! All parsing and execution lives in `mpstream_core::cli` (sweeps and
//! single runs), `mpstream_serve::cli` (the daemon and its clients) and
//! `mpstream_cluster::cli` (the coordinator/worker daemons), all
//! unit-tested; this binary only wires stdin/stdout/exit codes.

use mpstream_core::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-devices") {
        print!("{}", cli::list_devices());
        return ExitCode::SUCCESS;
    }
    if mpstream_serve::is_serve_command(&args) {
        return match mpstream_serve::parse_serve_args(&args) {
            Ok(None) => {
                println!("{}", mpstream_serve::USAGE);
                ExitCode::SUCCESS
            }
            Ok(Some(mpstream_serve::ServeCommand::Serve(opts))) => {
                match mpstream_serve::run_server(opts) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::from(1)
                    }
                }
            }
            Ok(Some(cmd)) => match mpstream_serve::run_client(&cmd) {
                Ok(out) => {
                    print!("{out}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(1)
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{}", mpstream_serve::USAGE);
                ExitCode::from(2)
            }
        };
    }
    if mpstream_cluster::is_cluster_command(&args) {
        return match mpstream_cluster::parse_cluster_args(&args) {
            Ok(None) => {
                println!("{}", mpstream_cluster::USAGE);
                ExitCode::SUCCESS
            }
            Ok(Some(cmd)) => {
                let run = match cmd {
                    mpstream_cluster::ClusterCommand::Coordinator(opts) => {
                        mpstream_cluster::run_coordinator(opts)
                    }
                    mpstream_cluster::ClusterCommand::Worker(opts) => {
                        mpstream_cluster::run_worker(opts)
                    }
                };
                match run {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::from(1)
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}\n\n{}", mpstream_cluster::USAGE);
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("bench-self") {
        use mpstream_core::bench_self;
        return match bench_self::parse_bench_self_args(&args[1..]) {
            Ok(None) => {
                println!("{}", bench_self::BENCH_SELF_USAGE);
                ExitCode::SUCCESS
            }
            Ok(Some(opts)) => match bench_self::run_bench_self(&opts) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(1)
                }
            },
            Err(e) => {
                eprintln!("error: {e}\n\n{}", bench_self::BENCH_SELF_USAGE);
                ExitCode::from(2)
            }
        };
    }
    match cli::parse_args(&args) {
        Ok(None) => {
            println!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(Some(req)) => match cli::execute(&req) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::from(2)
        }
    }
}
