//! # MP-STREAM (reproduction)
//!
//! Facade crate re-exporting the whole MP-STREAM workspace:
//!
//! * [`memsim`] — memory-system simulation building blocks;
//! * [`kernelgen`] — STREAM kernel IR, OpenCL-C codegen, interpretation;
//! * [`mpcl`] — the OpenCL-style host runtime with simulated devices;
//! * [`targets`] — the four paper evaluation targets (CPU, GPU, two FPGAs);
//! * [`core`](mpstream_core) — the benchmark itself: tuning configs,
//!   runner, design-space exploration and reporting;
//! * [`nativebw`] — a real multi-threaded STREAM for the host machine;
//! * [`serve`](mpstream_serve) — the benchmark-as-a-service daemon:
//!   HTTP job submission, persistent results, Prometheus metrics.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use kernelgen;
pub use memsim;
pub use mpcl;
pub use mpstream_core;
pub use mpstream_serve;
pub use nativebw;
pub use targets;

// The one-true result vocabulary, re-exported flat: every execution —
// single run, sweep, or automated search — produces [`Measurement`]s
// wrapped in [`Outcome`]s, collected into a [`SweepResult`] or
// [`DseResult`] by the parallel [`Engine`].
pub use mpstream_core::{DseResult, Engine, Measurement, Outcome, SweepResult};
