//! Contiguity study — quantifies the paper's "pre-shaping" takeaway:
//! "if data is accessed repeatedly across many iterations ... there is a
//! strong case to be made for pre-shaping that data to a format that
//! leads to most efficient access from the acceleration device."
//!
//! For each target this example measures contiguous vs column-major
//! COPY bandwidth at 16 MB, then computes the break-even reuse count:
//! after how many strided passes does paying one host-side re-layout
//! (two PCIe crossings + a host transpose) become a win?
//!
//! ```text
//! cargo run --release --example contiguity_study
//! ```

use kernelgen::AccessPattern;
use mpstream_core::{BenchConfig, Runner, Table};
use targets::TargetId;

fn main() {
    const BYTES: u64 = 16 << 20;
    println!("Contiguity study — COPY, {} MB arrays\n", BYTES >> 20);

    let mut t = Table::new(&[
        "target",
        "contig GB/s",
        "strided GB/s",
        "slowdown",
        "re-layout cost (ms)",
        "break-even passes",
    ]);

    for target in TargetId::ALL {
        let runner = Runner::for_target(target);
        let mut contig = BenchConfig::copy_of_bytes(BYTES).with_validation(false);
        let mut strided = BenchConfig::copy_of_bytes(BYTES).with_validation(false);
        strided.kernel.pattern = AccessPattern::ColMajor { cols: None };
        if target.is_fpga() {
            contig.kernel.loop_mode = kernelgen::LoopMode::SingleWorkItemFlat;
            strided.kernel.loop_mode = kernelgen::LoopMode::SingleWorkItemFlat;
        }

        let mc = runner.run(&contig).expect("contiguous run");
        let ms = runner.run(&strided).expect("strided run");

        // Re-layout: read the array back, transpose on the host (~5 GB/s
        // effective), write it again. Device-side time per pass saved:
        let relayout_ns = 2.0 * transfer_ns(&runner, BYTES) + BYTES as f64 / 5.0;
        let per_pass_saving_ns = ms.best_wall_ns - mc.best_wall_ns;
        let breakeven = if per_pass_saving_ns > 0.0 {
            (relayout_ns / per_pass_saving_ns).ceil()
        } else {
            f64::INFINITY
        };

        t.row(&[
            target.label().to_string(),
            format!("{:.2}", mc.gbps()),
            format!("{:.3}", ms.gbps()),
            format!("{:.0}x", mc.gbps() / ms.gbps()),
            format!("{:.2}", relayout_ns / 1e6),
            format!("{breakeven}"),
        ]);
    }

    println!("{}", t.to_text());
    println!("Reading: a weather-model-style time loop re-reads its grid every step;");
    println!("when the step count exceeds the break-even column, transpose first.");
}

fn transfer_ns(runner: &mpstream_core::Runner, bytes: u64) -> f64 {
    // Ask the device model directly for a one-way transfer estimate.
    let device = runner.device().clone();
    let ctx = mpcl::Context::new(device);
    let q = mpcl::CommandQueue::new_timing_only(&ctx);
    let buf = mpcl::Buffer::new(&ctx, mpcl::MemFlags::ReadWrite, bytes).expect("buffer");
    let ev = q
        .enqueue_write(&buf, &vec![0u8; bytes as usize])
        .expect("write");
    ev.wall_ns()
}
