//! Quickstart: enumerate the four simulated platforms, run the COPY
//! kernel with the paper's plateau size (4 MB) on each device, and
//! print sustained bandwidth next to the device's peak.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpstream_core::{BenchConfig, Runner, Table};
use targets::standard_platforms;

fn main() {
    println!("MP-STREAM quickstart — COPY kernel, 4 MB arrays, 32-bit words\n");

    let mut table = Table::new(&[
        "platform",
        "device",
        "peak GB/s",
        "sustained GB/s",
        "% of peak",
        "valid",
    ]);

    for platform in standard_platforms() {
        for device in platform.devices() {
            // The paper's baseline kernel with the loop management that
            // suits the device (NDRange for CPU/GPU, a single-work-item
            // loop for the FPGAs).
            let mut bc = BenchConfig::copy_of_bytes(4 << 20);
            if device.info().device_type == mpcl::DeviceType::Accelerator {
                bc.kernel.loop_mode = kernelgen::LoopMode::SingleWorkItemFlat;
            }

            let m = Runner::new(device.clone())
                .run(&bc)
                .expect("benchmark run failed");
            let peak = device.info().peak_gbps;
            table.row(&[
                platform.name().to_string(),
                device.info().name.clone(),
                format!("{peak:.1}"),
                format!("{:.2}", m.gbps()),
                format!("{:.0}%", 100.0 * m.gbps() / peak),
                format!("{:?}", m.validated == Some(true)),
            ]);
        }
    }

    println!("{}", table.to_text());
    println!("Tip: the sustained/peak gap on the FPGAs is the paper's point —");
    println!("rerun with vectorization (see the design_space_exploration example).");
}
