//! The bandwidth-vs-resources Pareto frontier on the AOCL FPGA.
//!
//! On an FPGA the benchmark kernel shares the fabric with the actual
//! application, so the design point a user wants is rarely "fastest at
//! any cost" — it is the frontier of configurations where no other
//! config is both faster *and* smaller. This example sweeps the AOCL
//! tuning space across the execution engine's thread pool and prints
//! that frontier.
//!
//! ```text
//! cargo run --release --example pareto_front
//! ```

use kernelgen::{LoopMode, StreamOp};
use mpstream_core::sweep::{pareto_front, sweep_space};
use mpstream_core::{BenchConfig, Engine, ParamSpace, Table};
use targets::TargetId;

fn main() {
    let space = ParamSpace::new()
        .ops([StreamOp::Copy])
        .sizes_mb([4])
        .widths([1, 2, 4, 8, 16])
        .loop_modes([LoopMode::SingleWorkItemFlat, LoopMode::SingleWorkItemNested])
        .unrolls([1, 2, 4]);

    let engine = Engine::new();
    println!(
        "Sweeping {} configurations on the AOCL FPGA across {} worker thread(s)...\n",
        space.configs().len(),
        engine.jobs()
    );
    let sweep = sweep_space(&engine, TargetId::FpgaAocl, &space, |k| {
        BenchConfig::new(k).with_ntimes(1).with_validation(false)
    });
    println!(
        "{} points measured, {} synthesis failures ({} builds, {} cache hits)\n",
        sweep.points.len() - sweep.failures(),
        sweep.failures(),
        sweep.cache.misses,
        sweep.cache.hits
    );

    let front = pareto_front(&sweep);
    let mut t = Table::new(&["logic (ALMs)", "GB/s", "config"]);
    for p in &front {
        t.row(&[
            p.logic.to_string(),
            format!("{:.2}", p.gbps),
            format!(
                "vec{} {} unroll {}",
                p.config.vector_width.get(),
                p.config.loop_mode.label(),
                p.config.unroll
            ),
        ]);
    }
    println!("Pareto frontier (maximize GB/s, minimize logic):\n");
    println!("{}", t.to_text());
    println!(
        "Every other configuration is dominated: something on this frontier is\n\
         at least as fast and uses no more logic. A designer picks by the\n\
         fabric budget left over after placing the application."
    );
}
