//! Run the *real* STREAM benchmark on this machine (the `nativebw`
//! crate), plus the column-major strided copy — the reality anchor for
//! the simulated CPU target.
//!
//! ```text
//! cargo run --release --example native_stream [elements-per-array]
//! ```

use mpstream_core::Table;
use nativebw::{stream_benchmark, strided_copy_gbps, NativeConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8 << 20); // 64 MB per array by default

    let cfg = NativeConfig {
        n,
        ..Default::default()
    };
    println!(
        "Native STREAM: {} elements/array ({} MB), {} threads, {} iterations\n",
        cfg.n,
        (cfg.n * 8) >> 20,
        cfg.threads,
        cfg.ntimes
    );

    let report = stream_benchmark(&cfg);
    let mut t = Table::new(&["kernel", "best GB/s", "avg ms", "min ms", "max ms"]);
    for k in &report.kernels {
        t.row(&[
            k.kernel.name().to_string(),
            format!("{:.2}", k.gbps()),
            format!("{:.3}", k.avg_ns / 1e6),
            format!("{:.3}", k.min_ns / 1e6),
            format!("{:.3}", k.max_ns / 1e6),
        ]);
    }
    println!("{}", t.to_text());
    println!("validated: {}", report.validated);

    // The strided (column-major) comparison, near-square like Fig. 2.
    let cols = (n as f64).sqrt() as usize;
    let rows = n / cols.max(1);
    let strided = strided_copy_gbps(rows, cols, cfg.threads, 3);
    let contig = report.kernels[0].gbps();
    println!(
        "\nstrided (column-major {rows}x{cols}) copy: {strided:.2} GB/s \
         — {:.1}x slower than contiguous ({contig:.2} GB/s)",
        contig / strided
    );
    println!("(compare with the simulated CPU target's Fig. 2 curves)");
}
