//! The paper's "source/destination of streams" knob: measure the
//! end-to-end rate when every repetition streams the arrays across the
//! host–device link (PCIe) instead of keeping them in device DRAM —
//! "in the typical case [this] would give us the bandwidth over a PCIe
//! host-device interface" (§III).
//!
//! ```text
//! cargo run --release --example host_device_transfer
//! ```

use mpstream_core::{BenchConfig, Runner, Table};
use targets::TargetId;

fn main() {
    println!("Stream source/destination: device-global vs host-over-link\n");

    let mut t = Table::new(&[
        "target",
        "size MB",
        "device-global GB/s",
        "host-over-link GB/s",
        "link-bound slowdown",
    ]);

    for target in TargetId::ALL {
        let runner = Runner::for_target(target);
        for bytes in [1u64 << 20, 16 << 20] {
            let mut device = BenchConfig::copy_of_bytes(bytes).with_validation(false);
            let mut link = BenchConfig::copy_of_bytes(bytes)
                .with_validation(false)
                .over_link();
            if target.is_fpga() {
                device.kernel.loop_mode = kernelgen::LoopMode::SingleWorkItemFlat;
                link.kernel.loop_mode = kernelgen::LoopMode::SingleWorkItemFlat;
            }
            let dg = runner.run(&device).expect("device-global run");
            let hl = runner.run(&link).expect("host-over-link run");
            t.row(&[
                target.label().to_string(),
                format!("{}", bytes >> 20),
                format!("{:.2}", dg.gbps()),
                format!("{:.2}", hl.gbps()),
                format!("{:.1}x", dg.gbps() / hl.gbps()),
            ]);
        }
    }

    println!("{}", t.to_text());
    println!("The GPU loses the most in absolute terms (336 GB/s DRAM vs ~12 GB/s PCIe);");
    println!("the CPU 'link' is loopback shared memory, so it barely changes.");
}
