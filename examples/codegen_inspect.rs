//! Inspect the OpenCL-C kernels the benchmark generates — the exact text
//! MP-STREAM's build scripts would hand to each vendor compiler for a
//! given tuning-space point, including the vendor-specific attributes.
//!
//! ```text
//! cargo run --example codegen_inspect
//! ```

use kernelgen::{
    generate_source, AccessPattern, AoclOpts, KernelConfig, LoopMode, StreamOp, VectorWidth,
    VendorOpts, XilinxOpts,
};

fn show(title: &str, cfg: &KernelConfig) {
    println!("--- {title} ---");
    println!("{}", generate_source(cfg));
}

fn main() {
    // 1. The paper's §III NDRange listing.
    let base = KernelConfig::baseline(StreamOp::Copy, 1 << 20);
    show("NDRange copy (paper listing 1)", &base);

    // 2. Single work-item flat loop (paper listing 2).
    let mut flat = base.clone();
    flat.loop_mode = LoopMode::SingleWorkItemFlat;
    show("Single work-item, flat loop (paper listing 2)", &flat);

    // 3. Single work-item nested loop (paper listing 3 — the SDAccel
    //    surprise).
    let mut nested = base.clone();
    nested.loop_mode = LoopMode::SingleWorkItemNested;
    show("Single work-item, nested loop (paper listing 3)", &nested);

    // 4. Vectorized + unrolled AOCL triad with SIMD replication.
    let mut aocl = KernelConfig::baseline(StreamOp::Triad, 1 << 20);
    aocl.vector_width = VectorWidth::new(8).expect("allowed");
    aocl.unroll = 4;
    aocl.reqd_work_group_size = true;
    aocl.vendor = VendorOpts::Aocl(AoclOpts {
        num_simd_work_items: 4,
        num_compute_units: 2,
    });
    show(
        "AOCL: int8 triad, unroll 4, 4 SIMD work-items, 2 CUs",
        &aocl,
    );

    // 5. Xilinx pipelined double-precision scale over a strided view.
    let mut xil = KernelConfig::baseline(StreamOp::Scale, 1 << 20);
    xil.dtype = kernelgen::DataType::F64;
    xil.loop_mode = LoopMode::SingleWorkItemFlat;
    xil.pattern = AccessPattern::ColMajor { cols: Some(1024) };
    xil.vendor = VendorOpts::Xilinx(XilinxOpts {
        pipeline_loop: true,
        max_memory_ports: true,
        memory_port_width_bits: Some(512),
        ..Default::default()
    });
    show(
        "SDAccel: double scale, column-major, pipelined, 512-bit ports",
        &xil,
    );
}
