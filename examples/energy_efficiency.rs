//! Energy efficiency across the targets — the dimension the paper left
//! for future work ("one area where FPGAs can still win in spite of the
//! higher achievable bandwidths on GPUs", §IV) — including the
//! HMC-outlook FPGA board where the conjecture comes true.
//!
//! ```text
//! cargo run --release --example energy_efficiency
//! ```

use mpstream_core::extensions::{ext_energy, ext_hmc};

fn main() {
    let energy = ext_energy();
    println!("{}\n", energy.title);
    println!("{}", energy.table.to_text());
    for n in &energy.notes {
        println!("  -> {n}");
    }

    println!("\n{}\n", ext_hmc().title);
    println!("{}", ext_hmc().table.to_text());
}
