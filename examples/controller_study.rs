//! Memory-controller scheduling study: FCFS vs FR-FCFS on the access
//! patterns MP-STREAM generates.
//!
//! The paper observes that sustained bandwidth depends on parameters
//! "not all relevant to CPUs or GPUs" — the memory controller's
//! scheduling policy is one layer below even those. This example replays
//! three canonical traces through both policies of
//! `memsim::MemoryController` and shows where reordering matters: not on
//! clean sequential streams, and not on hopeless row-thrash, but exactly
//! on *interleaved* sequential streams (two MP-STREAM arrays sharing a
//! channel).
//!
//! ```text
//! cargo run --release --example controller_study
//! ```

use memsim::{interleaved_trace, Access, DramConfig, MemoryController, SchedPolicy, TimedRequest};
use mpstream_core::Table;

fn replay(cfg: DramConfig, policy: SchedPolicy, trace: &[TimedRequest]) -> (f64, f64) {
    let mut mc = MemoryController::new(cfg.clone(), policy, 32);
    let out = mc.replay(trace);
    let ns = cfg.freq.cycles_to_ns(out.finish_cycle);
    let bytes: u64 = trace.iter().map(|r| r.access.bytes as u64).sum();
    (bytes as f64 / ns, out.stats.row_hit_rate())
}

fn main() {
    let cfg = DramConfig::ddr3_fpga_aocl();
    println!(
        "Controller study on the AOCL board's DDR3 ({:.1} GB/s peak), window 32\n",
        cfg.peak_gbps()
    );

    let sequential: Vec<TimedRequest> = (0..4096u64)
        .map(|i| TimedRequest {
            arrival: i,
            access: Access::read(i * 64, 64),
        })
        .collect();
    let interleaved = interleaved_trace(2048, 1 << 21);
    let random: Vec<TimedRequest> = (0..4096u64)
        .map(|i| TimedRequest {
            arrival: i,
            access: Access::read((i.wrapping_mul(2654435761) % (1 << 26)) & !63, 64),
        })
        .collect();

    let mut t = Table::new(&[
        "trace",
        "FCFS GB/s",
        "FCFS row-hit",
        "FR-FCFS GB/s",
        "FR-FCFS row-hit",
        "speedup",
    ]);
    for (name, trace) in [
        ("sequential", &sequential),
        ("interleaved streams", &interleaved),
        ("random", &random),
    ] {
        let (f_bw, f_rh) = replay(cfg.clone(), SchedPolicy::Fcfs, trace);
        let (r_bw, r_rh) = replay(cfg.clone(), SchedPolicy::FrFcfs { cap: 16 }, trace);
        t.row(&[
            name.to_string(),
            format!("{f_bw:.2}"),
            format!("{:.0}%", f_rh * 100.0),
            format!("{r_bw:.2}"),
            format!("{:.0}%", r_rh * 100.0),
            format!("{:.2}x", r_bw / f_bw),
        ]);
    }
    println!("{}", t.to_text());
    println!("FR-FCFS pays off exactly where MP-STREAM's multi-array kernels live:");
    println!("several sequential streams time-multiplexed onto one memory channel.");
}
