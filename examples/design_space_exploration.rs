//! Automated design-space exploration on the AOCL FPGA target — the
//! use-case the paper motivates ("both a manual and automated design-
//! space exploration route will benefit from a benchmark that fully
//! explores the memory-access design-space").
//!
//! Sweeps vector width x loop mode x unroll x vendor replication with
//! three budgeted searches — the classic hill climber, a seeded genetic
//! search, and a ridge-regression surrogate model — then compares all
//! of them against an exhaustive sweep fanned across the execution
//! engine's thread pool. Every search shares one build-artifact cache,
//! so the exhaustive pass re-synthesizes nothing the searches already
//! visited. Synthesis failures (resource exhaustion) are part of the
//! search space and are counted.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use kernelgen::{AoclOpts, LoopMode, StreamOp, VendorOpts};
use mpstream_core::{
    explore_target, search_target, BenchConfig, DseResult, Engine, Explorer, GeneticSearch,
    ModelSearch, ParamSpace, Table,
};
use targets::TargetId;

fn main() {
    let space = ParamSpace::new()
        .ops([StreamOp::Copy])
        .sizes_mb([4])
        .widths([1, 2, 4, 8, 16])
        .loop_modes(LoopMode::ALL)
        .unrolls([1, 2, 4, 8])
        .vendors([
            VendorOpts::None,
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 2,
            }),
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 4,
            }),
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 8,
            }),
        ]);
    println!(
        "Design space: {} raw combinations, {} valid configurations\n",
        space.raw_len(),
        space.configs().len()
    );

    let engine = Engine::new();
    println!(
        "Execution engine: {} worker thread(s), shared build cache\n",
        engine.jobs()
    );
    let protocol = |k| BenchConfig::new(k).with_ntimes(1).with_validation(false);

    const BUDGET: usize = 40;
    const SEED: u64 = 20180521;

    println!("Hill-climbing with a budget of {BUDGET} evaluations...");
    let hc = explore_target(
        &engine,
        TargetId::FpgaAocl,
        &space,
        Explorer::HillClimb {
            budget: BUDGET,
            seed: SEED,
        },
        protocol,
    );
    report("hill-climb", &hc);

    println!("\nGenetic search, same budget...");
    let mut genetic = GeneticSearch::new(&space, BUDGET, SEED);
    let ga = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut genetic,
        BUDGET,
        protocol,
        None,
    );
    report("genetic", &ga);

    println!("\nSurrogate-model search (ridge regression), same budget...");
    let mut model = ModelSearch::new(&space, BUDGET, SEED);
    let md = search_target(
        &engine,
        TargetId::FpgaAocl,
        &mut model,
        BUDGET,
        protocol,
        None,
    );
    report("model", &md);
    println!("Model search's Pareto front (bandwidth vs synthesized logic):");
    println!("{}", md.pareto_table().to_text());

    println!("\nExhaustive sweep for reference (every configuration, in parallel)...");
    let ex = explore_target(
        &engine,
        TargetId::FpgaAocl,
        &space,
        Explorer::Exhaustive,
        protocol,
    );
    report("exhaustive", &ex);

    let stats = engine.cache_stats();
    println!(
        "\nBuild cache: {} synthesis runs, {} reused ({:.0}% hit rate) — the \
         exhaustive pass skipped every point the searches had synthesized.",
        stats.misses,
        stats.hits,
        100.0 * stats.hit_rate()
    );

    let best_ex = ex.best.as_ref().and_then(|o| o.gbps()).unwrap_or(0.0);
    for (label, r) in [("Hill-climb", &hc), ("Genetic", &ga), ("Model", &md)] {
        let best = r.best.as_ref().and_then(|o| o.gbps()).unwrap_or(0.0);
        println!(
            "{label} reached {:.0}% of the exhaustive optimum using {} of {} evaluations.",
            100.0 * best / best_ex,
            r.trace.len(),
            ex.trace.len()
        );
    }

    if let Some(best) = &ex.best {
        println!("\nBest configuration's generated OpenCL kernel:\n");
        println!("{}", kernelgen::generate_source(&best.config));
    }
}

fn report(label: &str, r: &DseResult) {
    let Some(best) = &r.best else {
        println!("{label}: no configuration built successfully");
        return;
    };
    let mut t = Table::new(&[
        "search",
        "evaluations",
        "synthesis failures",
        "best GB/s",
        "config",
    ]);
    t.row(&[
        label.to_string(),
        r.trace.len().to_string(),
        r.failures.to_string(),
        format!("{:.2}", best.gbps().unwrap_or(0.0)),
        format!(
            "vec{} {} unroll{} {:?}",
            best.config.vector_width.get(),
            best.config.loop_mode.label(),
            best.config.unroll,
            best.config.vendor
        ),
    ]);
    println!("{}", t.to_text());
}
