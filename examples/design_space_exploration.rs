//! Automated design-space exploration on the AOCL FPGA target — the
//! use-case the paper motivates ("both a manual and automated design-
//! space exploration route will benefit from a benchmark that fully
//! explores the memory-access design-space").
//!
//! Sweeps vector width x loop mode x unroll x vendor replication with a
//! hill-climbing explorer under a fixed evaluation budget, then prints
//! the best configuration found, its synthesis report, and how it
//! compares with an exhaustive sweep. Synthesis failures (resource
//! exhaustion) are part of the search space and are counted.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use kernelgen::{AoclOpts, LoopMode, StreamOp, VendorOpts};
use mpstream_core::dse::explore;
use mpstream_core::{BenchConfig, Explorer, ParamSpace, Runner, Table};
use targets::TargetId;

fn main() {
    let space = ParamSpace {
        ops: vec![StreamOp::Copy],
        sizes_bytes: vec![4 << 20],
        widths: vec![1, 2, 4, 8, 16],
        loop_modes: LoopMode::ALL.to_vec(),
        unrolls: vec![1, 2, 4, 8],
        vendors: vec![
            VendorOpts::None,
            VendorOpts::Aocl(AoclOpts { num_simd_work_items: 1, num_compute_units: 2 }),
            VendorOpts::Aocl(AoclOpts { num_simd_work_items: 1, num_compute_units: 4 }),
            VendorOpts::Aocl(AoclOpts { num_simd_work_items: 1, num_compute_units: 8 }),
        ],
        ..Default::default()
    };
    println!(
        "Design space: {} raw combinations, {} valid configurations\n",
        space.raw_len(),
        space.configs().len()
    );

    let runner = Runner::for_target(TargetId::FpgaAocl);
    let mut evaluations = 0usize;
    let mut objective = |cfg: &kernelgen::KernelConfig| {
        evaluations += 1;
        runner
            .run(&BenchConfig::new(cfg.clone()).with_ntimes(1).with_validation(false))
            .ok()
            .map(|m| m.gbps())
    };

    println!("Hill-climbing with a budget of 40 evaluations...");
    let hc = explore(&space, Explorer::HillClimb { budget: 40, seed: 20180521 }, &mut objective);
    report("hill-climb", &hc);

    println!("\nExhaustive sweep for reference (every configuration)...");
    let ex = explore(&space, Explorer::Exhaustive, &mut objective);
    report("exhaustive", &ex);

    let best_hc = hc.best.as_ref().map(|e| e.score.unwrap_or(0.0)).unwrap_or(0.0);
    let best_ex = ex.best.as_ref().map(|e| e.score.unwrap_or(0.0)).unwrap_or(0.0);
    println!(
        "\nHill-climb reached {:.0}% of the exhaustive optimum using {} of {} evaluations.",
        100.0 * best_hc / best_ex,
        hc.trace.len(),
        ex.trace.len()
    );

    if let Some(best) = &ex.best {
        println!("\nBest configuration's generated OpenCL kernel:\n");
        println!("{}", kernelgen::generate_source(&best.config));
    }
}

fn report(label: &str, r: &mpstream_core::DseResult) {
    let Some(best) = &r.best else {
        println!("{label}: no configuration built successfully");
        return;
    };
    let mut t = Table::new(&["search", "evaluations", "synthesis failures", "best GB/s", "config"]);
    t.row(&[
        label.to_string(),
        r.trace.len().to_string(),
        r.failures.to_string(),
        format!("{:.2}", best.score.unwrap_or(0.0)),
        format!(
            "vec{} {} unroll{} {:?}",
            best.config.vector_width.get(),
            best.config.loop_mode.label(),
            best.config.unroll,
            best.config.vendor
        ),
    ]);
    println!("{}", t.to_text());
}
