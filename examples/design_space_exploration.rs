//! Automated design-space exploration on the AOCL FPGA target — the
//! use-case the paper motivates ("both a manual and automated design-
//! space exploration route will benefit from a benchmark that fully
//! explores the memory-access design-space").
//!
//! Sweeps vector width x loop mode x unroll x vendor replication with a
//! hill-climbing explorer under a fixed evaluation budget, then compares
//! against an exhaustive sweep fanned across the execution engine's
//! thread pool. Both searches share one build-artifact cache, so the
//! exhaustive pass re-synthesizes nothing the climber already visited.
//! Synthesis failures (resource exhaustion) are part of the search space
//! and are counted.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use kernelgen::{AoclOpts, LoopMode, StreamOp, VendorOpts};
use mpstream_core::{explore_target, BenchConfig, DseResult, Engine, Explorer, ParamSpace, Table};
use targets::TargetId;

fn main() {
    let space = ParamSpace::new()
        .ops([StreamOp::Copy])
        .sizes_mb([4])
        .widths([1, 2, 4, 8, 16])
        .loop_modes(LoopMode::ALL)
        .unrolls([1, 2, 4, 8])
        .vendors([
            VendorOpts::None,
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 2,
            }),
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 4,
            }),
            VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: 8,
            }),
        ]);
    println!(
        "Design space: {} raw combinations, {} valid configurations\n",
        space.raw_len(),
        space.configs().len()
    );

    let engine = Engine::new();
    println!(
        "Execution engine: {} worker thread(s), shared build cache\n",
        engine.jobs()
    );
    let protocol = |k| BenchConfig::new(k).with_ntimes(1).with_validation(false);

    println!("Hill-climbing with a budget of 40 evaluations...");
    let hc = explore_target(
        &engine,
        TargetId::FpgaAocl,
        &space,
        Explorer::HillClimb {
            budget: 40,
            seed: 20180521,
        },
        protocol,
    );
    report("hill-climb", &hc);

    println!("\nExhaustive sweep for reference (every configuration, in parallel)...");
    let ex = explore_target(
        &engine,
        TargetId::FpgaAocl,
        &space,
        Explorer::Exhaustive,
        protocol,
    );
    report("exhaustive", &ex);

    let stats = engine.cache_stats();
    println!(
        "\nBuild cache: {} synthesis runs, {} reused ({:.0}% hit rate) — the \
         exhaustive pass skipped every point the climber had synthesized.",
        stats.misses,
        stats.hits,
        100.0 * stats.hit_rate()
    );

    let best_hc = hc.best.as_ref().and_then(|o| o.gbps()).unwrap_or(0.0);
    let best_ex = ex.best.as_ref().and_then(|o| o.gbps()).unwrap_or(0.0);
    println!(
        "\nHill-climb reached {:.0}% of the exhaustive optimum using {} of {} evaluations.",
        100.0 * best_hc / best_ex,
        hc.trace.len(),
        ex.trace.len()
    );

    if let Some(best) = &ex.best {
        println!("\nBest configuration's generated OpenCL kernel:\n");
        println!("{}", kernelgen::generate_source(&best.config));
    }
}

fn report(label: &str, r: &DseResult) {
    let Some(best) = &r.best else {
        println!("{label}: no configuration built successfully");
        return;
    };
    let mut t = Table::new(&[
        "search",
        "evaluations",
        "synthesis failures",
        "best GB/s",
        "config",
    ]);
    t.row(&[
        label.to_string(),
        r.trace.len().to_string(),
        r.failures.to_string(),
        format!("{:.2}", best.gbps().unwrap_or(0.0)),
        format!(
            "vec{} {} unroll{} {:?}",
            best.config.vector_width.get(),
            best.config.loop_mode.label(),
            best.config.unroll,
            best.config.vendor
        ),
    ]);
    println!("{}", t.to_text());
}
