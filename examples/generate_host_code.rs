//! Generate the complete OpenCL C host program + kernel for a tuning
//! point — what you would actually compile and run on real hardware to
//! carry a simulated design-space result over to a physical board.
//!
//! ```text
//! cargo run --example generate_host_code > mp_stream_host.c
//! ```

use kernelgen::{
    generate_host_program, HostOptions, KernelConfig, LoopMode, StreamOp, VectorWidth,
};

fn main() {
    // The best AOCL configuration the DSE example finds: vectorized,
    // single-work-item, unrolled.
    let mut cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 20);
    cfg.loop_mode = LoopMode::SingleWorkItemFlat;
    cfg.vector_width = VectorWidth::new(16).expect("allowed");
    cfg.unroll = 4;

    let opts = HostOptions {
        platform_filter: "Altera".into(),
        ntimes: 10,
        binary_kernel: true, // FPGA flow: kernel precompiled to .aocx
    };

    println!("{}", generate_host_program(&cfg, &opts));
    eprintln!("— host program on stdout; compile the kernel separately with:");
    eprintln!("  aoc mp_stream.cl -o mp_stream.aocx   (kernel source below)");
    eprintln!();
    eprintln!("{}", kernelgen::generate_source(&cfg));
}
