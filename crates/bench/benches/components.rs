//! Criterion benches for the simulator building blocks: how fast the
//! simulation itself runs (simulated-bytes-per-host-second throughput of
//! the DRAM model, cache, coalescer, interpreter and access-stream
//! generator). These guard against accidental slowdowns in the models
//! that every figure regeneration depends on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernelgen::{access_stream, total_accesses, ExecPlan, KernelConfig, StreamOp};
use memsim::{Access, Cache, CacheConfig, Coalescer, Dram, DramConfig};
use std::hint::black_box;

fn plan(n_words: u64) -> ExecPlan {
    let cfg = KernelConfig::baseline(StreamOp::Copy, n_words);
    let bytes = cfg.array_bytes();
    ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    let n = 10_000u64;
    g.throughput(Throughput::Bytes(n * 64));
    g.bench_function("sequential_reads", |b| {
        let mut d = Dram::new(DramConfig::ddr3_quad_channel());
        b.iter(|| {
            d.reset();
            let mut done = 0;
            for i in 0..n {
                let (_, dn) = d.service(0, Access::read(i * 64, 64));
                done = dn;
            }
            black_box(done)
        })
    });
    g.bench_function("row_thrashing_reads", |b| {
        let mut d = Dram::new(DramConfig::ddr3_quad_channel());
        b.iter(|| {
            d.reset();
            let mut done = 0;
            for i in 0..n {
                let (_, dn) = d.service(done, Access::read(i * 65536, 64));
                done = dn;
            }
            black_box(done)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("hit_stream", |b| {
        let mut cache = Cache::new(CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64 });
        for i in 0..512u64 {
            cache.access(i * 64, false);
        }
        b.iter(|| {
            for i in 0..n {
                black_box(cache.access((i % 512) * 64, false));
            }
        })
    });
    g.bench_function("streaming_misses", |b| {
        let mut cache = Cache::new(CacheConfig { size_bytes: 32 << 10, ways: 8, line_bytes: 64 });
        b.iter(|| {
            for i in 0..n {
                black_box(cache.access(i * 64, false));
            }
        })
    });
    g.finish();
}

fn bench_coalescer(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalescer");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    let accesses: Vec<Access> = (0..n).map(|i| Access::read(i * 4, 4)).collect();
    g.bench_function("aligned_segments_warp32", |b| {
        let co = Coalescer::new(128, 32);
        b.iter(|| black_box(co.coalesce(accesses.iter().copied()).count()))
    });
    g.bench_function("extent_bursts_window64", |b| {
        let co = Coalescer::extent(1024, 64);
        b.iter(|| black_box(co.coalesce(accesses.iter().copied()).count()))
    });
    g.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let n = 1u64 << 18;
    for op in StreamOp::ALL {
        let cfg = KernelConfig::baseline(op, n);
        g.throughput(Throughput::Bytes(cfg.bytes_moved()));
        let mut a = vec![0u8; (n * 4) as usize];
        let b_buf = vec![1u8; (n * 4) as usize];
        let c_buf = vec![2u8; (n * 4) as usize];
        g.bench_function(op.name(), |b| {
            b.iter(|| kernelgen::execute(black_box(&cfg), &mut a, &b_buf, &c_buf))
        });
    }
    g.finish();
}

fn bench_access_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_stream");
    let p = plan(1 << 18);
    g.throughput(Throughput::Elements(total_accesses(&p.cfg)));
    g.bench_function("generate_copy_contiguous", |b| {
        b.iter(|| black_box(access_stream(&p, 32).count()))
    });
    g.finish();
}

criterion_group!(benches, bench_dram, bench_cache, bench_coalescer, bench_interp, bench_access_stream);
criterion_main!(benches);
