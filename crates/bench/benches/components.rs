//! Wall-clock benches for the simulator building blocks: how fast the
//! simulation itself runs (simulated-bytes-per-host-second throughput of
//! the DRAM model, cache, coalescer, interpreter and access-stream
//! generator). These guard against accidental slowdowns in the models
//! that every figure regeneration depends on.

use kernelgen::{access_stream, total_accesses, ExecPlan, KernelConfig, StreamOp};
use memsim::{Access, Cache, CacheConfig, Coalescer, Dram, DramConfig};
use mpstream_bench::harness::{Harness, Throughput};
use std::hint::black_box;

fn plan(n_words: u64) -> ExecPlan {
    let cfg = KernelConfig::baseline(StreamOp::Copy, n_words);
    let bytes = cfg.array_bytes();
    ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
}

fn bench_dram(h: &Harness) {
    let mut g = h.group("dram");
    let n = 10_000u64;
    g.throughput(Throughput::Bytes(n * 64));
    let mut d = Dram::new(DramConfig::ddr3_quad_channel());
    g.bench("sequential_reads", || {
        d.reset();
        let mut done = 0;
        for i in 0..n {
            let (_, dn) = d.service(0, Access::read(i * 64, 64));
            done = dn;
        }
        black_box(done)
    });
    let mut d = Dram::new(DramConfig::ddr3_quad_channel());
    g.bench("row_thrashing_reads", || {
        d.reset();
        let mut done = 0;
        for i in 0..n {
            let (_, dn) = d.service(done, Access::read(i * 65536, 64));
            done = dn;
        }
        black_box(done)
    });
}

fn bench_cache(h: &Harness) {
    let mut g = h.group("cache");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 32 << 10,
        ways: 8,
        line_bytes: 64,
    });
    for i in 0..512u64 {
        cache.access(i * 64, false);
    }
    g.bench("hit_stream", || {
        for i in 0..n {
            black_box(cache.access((i % 512) * 64, false));
        }
    });
    let mut cache = Cache::new(CacheConfig {
        size_bytes: 32 << 10,
        ways: 8,
        line_bytes: 64,
    });
    g.bench("streaming_misses", || {
        for i in 0..n {
            black_box(cache.access(i * 64, false));
        }
    });
}

fn bench_coalescer(h: &Harness) {
    let mut g = h.group("coalescer");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    let accesses: Vec<Access> = (0..n).map(|i| Access::read(i * 4, 4)).collect();
    let co = Coalescer::new(128, 32);
    g.bench("aligned_segments_warp32", || {
        black_box(co.coalesce(accesses.iter().copied()).count())
    });
    let co = Coalescer::extent(1024, 64);
    g.bench("extent_bursts_window64", || {
        black_box(co.coalesce(accesses.iter().copied()).count())
    });
}

fn bench_interp(h: &Harness) {
    let mut g = h.group("interpreter");
    let n = 1u64 << 18;
    for op in StreamOp::ALL {
        let cfg = KernelConfig::baseline(op, n);
        g.throughput(Throughput::Bytes(cfg.bytes_moved()));
        let mut a = vec![0u8; (n * 4) as usize];
        let b_buf = vec![1u8; (n * 4) as usize];
        let c_buf = vec![2u8; (n * 4) as usize];
        g.bench(op.name(), || {
            kernelgen::execute(black_box(&cfg), &mut a, &b_buf, &c_buf)
        });
    }
}

fn bench_access_stream(h: &Harness) {
    let mut g = h.group("access_stream");
    let p = plan(1 << 18);
    g.throughput(Throughput::Elements(total_accesses(&p.cfg)));
    g.bench("generate_copy_contiguous", || {
        black_box(access_stream(&p, 32).count())
    });
}

fn main() {
    let h = Harness::from_env();
    bench_dram(&h);
    bench_cache(&h);
    bench_coalescer(&h);
    bench_interp(&h);
    bench_access_stream(&h);
}
