//! Criterion benches — one per paper figure.
//!
//! Each bench regenerates its figure in quick mode (thinned sweep, one
//! repetition per point), so `cargo bench -p mpstream-bench --bench
//! figures` exercises the exact code path that reproduces the paper's
//! evaluation, with wall-clock tracking across workspace changes.

use criterion::{criterion_group, criterion_main, Criterion};
use mpstream_core::experiments::{run_figure, RunOpts};
use mpstream_core::FigureId;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    for id in FigureId::ALL {
        g.bench_function(id.name(), |b| {
            b.iter(|| {
                let fig = run_figure(black_box(id), RunOpts::quick());
                assert!(!fig.series.is_empty());
                black_box(fig)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
