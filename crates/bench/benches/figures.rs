//! Wall-clock benches — one per paper figure.
//!
//! Each bench regenerates its figure in quick mode (thinned sweep, one
//! repetition per point), so `cargo bench -p mpstream-bench --bench
//! figures` exercises the exact code path that reproduces the paper's
//! evaluation, with wall-clock tracking across workspace changes. The
//! quick runs go through the same parallel execution engine as the
//! `figures` binary (honouring `MPSTREAM_JOBS`).

use mpstream_bench::harness::Harness;
use mpstream_core::experiments::{run_figure, RunOpts};
use mpstream_core::FigureId;
use std::hint::black_box;

fn main() {
    let h = Harness::from_env();
    let mut g = h.group("figures");
    for id in FigureId::ALL {
        g.bench(id.name(), || {
            let fig = run_figure(black_box(id), RunOpts::quick());
            assert!(!fig.series.is_empty());
            black_box(fig)
        });
    }
}
