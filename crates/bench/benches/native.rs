//! Wall-clock benches for the native (real-hardware) STREAM kernels —
//! actual memory bandwidth of the machine running the workspace, the
//! reality anchor for the simulated CPU target.

use mpstream_bench::harness::{Harness, Throughput};
use nativebw::{stream_benchmark, strided_copy_gbps, NativeConfig, NativeKernel};
use std::hint::black_box;

fn bench_native_stream(h: &Harness) {
    let mut g = h.group("native_stream");
    // 32 MB per array: big enough to leave the LLC on most hosts while
    // keeping bench time reasonable.
    let n = 4 << 20;
    g.throughput(Throughput::Bytes(NativeKernel::Triad.bytes(n)));
    g.bench("full_protocol_1_iter", || {
        let cfg = NativeConfig {
            n,
            ntimes: 1,
            ..Default::default()
        };
        let r = stream_benchmark(black_box(&cfg));
        assert!(r.validated);
        black_box(r)
    });
}

fn bench_native_strided(h: &Harness) {
    let mut g = h.group("native_strided");
    let (rows, cols) = (2048, 2048); // 32 MB
    g.throughput(Throughput::Bytes(16 * (rows * cols) as u64));
    g.bench("colmajor_copy", || {
        black_box(strided_copy_gbps(rows, cols, 4, 1))
    });
}

fn main() {
    let h = Harness::from_env();
    bench_native_stream(&h);
    bench_native_strided(&h);
}
