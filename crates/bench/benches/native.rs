//! Criterion benches for the native (real-hardware) STREAM kernels —
//! actual memory bandwidth of the machine running the workspace, the
//! reality anchor for the simulated CPU target.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nativebw::{strided_copy_gbps, stream_benchmark, NativeConfig, NativeKernel};
use std::hint::black_box;

fn bench_native_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_stream");
    g.sample_size(10);
    // 32 MB per array: big enough to leave the LLC on most hosts while
    // keeping bench time reasonable.
    let n = 4 << 20;
    g.throughput(Throughput::Bytes(NativeKernel::Triad.bytes(n)));
    g.bench_function("full_protocol_1_iter", |b| {
        b.iter(|| {
            let cfg = NativeConfig { n, ntimes: 1, ..Default::default() };
            let r = stream_benchmark(black_box(&cfg));
            assert!(r.validated);
            black_box(r)
        })
    });
    g.finish();
}

fn bench_native_strided(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_strided");
    g.sample_size(10);
    let (rows, cols) = (2048, 2048); // 32 MB
    g.throughput(Throughput::Bytes(16 * (rows * cols) as u64));
    g.bench_function("colmajor_copy", |b| {
        b.iter(|| black_box(strided_copy_gbps(rows, cols, 4, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_native_stream, bench_native_strided);
criterion_main!(benches);
