//! Ablation benches for the design choices DESIGN.md calls out: the
//! stream prefetcher, the store policy, the LSU burst length and the
//! hashed cache indexing. Each variant is benchmarked (host cost of the
//! simulation) and its *simulated* bandwidth is printed once, so a run
//! shows both what the mechanism costs and what it buys.

use kernelgen::{ExecPlan, KernelConfig, LoopMode, StreamOp};
use mpcl::DeviceBackend;
use mpstream_bench::harness::Harness;
use std::hint::black_box;
use targets::aocl::{AoclBackend, AoclTuning};
use targets::cpu::{CpuBackend, CpuTuning};

fn plan(n_words: u64, loop_mode: LoopMode) -> ExecPlan {
    let mut cfg = KernelConfig::baseline(StreamOp::Copy, n_words);
    cfg.loop_mode = loop_mode;
    let bytes = cfg.array_bytes();
    ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
}

fn gbps(backend: &mut dyn DeviceBackend, p: &ExecPlan) -> f64 {
    let art = backend.build(&p.cfg).expect("build");
    let ns = backend.kernel_cost(&art, p).ns + backend.launch_overhead_ns();
    p.cfg.bytes_moved() as f64 / ns
}

fn bench_prefetcher_ablation(h: &Harness) {
    let p = plan(1 << 20, LoopMode::NdRange);
    let mut with = CpuBackend::new();
    let mut without = CpuBackend::with_tuning(CpuTuning {
        prefetch_degree: 1,
        ..Default::default()
    });
    eprintln!(
        "[ablation] cpu 4MB copy: prefetch degree 32 -> {:.1} GB/s, degree 1 -> {:.1} GB/s",
        gbps(&mut with, &p),
        gbps(&mut without, &p)
    );
    let mut g = h.group("ablation_prefetcher");
    g.bench("degree32", || black_box(gbps(&mut with, &p)));
    g.bench("degree1", || black_box(gbps(&mut without, &p)));
}

fn bench_lsu_burst_ablation(h: &Harness) {
    let p = plan(1 << 20, LoopMode::SingleWorkItemFlat);
    let mut long = AoclBackend::new();
    let mut short = AoclBackend::with_tuning(AoclTuning {
        lsu_burst_elems: 4,
        lsu_max_burst_bytes: 64,
        ..Default::default()
    });
    eprintln!(
        "[ablation] aocl 4MB copy: 1KB bursts -> {:.2} GB/s, 64B bursts -> {:.2} GB/s",
        gbps(&mut long, &p),
        gbps(&mut short, &p)
    );
    let mut g = h.group("ablation_lsu_burst");
    g.bench("burst_1k", || black_box(gbps(&mut long, &p)));
    g.bench("burst_64", || black_box(gbps(&mut short, &p)));
}

fn bench_launch_overhead_ablation(h: &Harness) {
    // Small arrays are overhead-dominated: halving the launch overhead
    // should show up directly (Fig 1a's left edge).
    let p = plan(1 << 12, LoopMode::NdRange);
    let mut slow = CpuBackend::new();
    let mut fast = CpuBackend::with_tuning(CpuTuning {
        launch_overhead_ns: 4_000.0,
        ..Default::default()
    });
    eprintln!(
        "[ablation] cpu 16KB copy: 40us launch -> {:.3} GB/s, 4us launch -> {:.3} GB/s",
        gbps(&mut slow, &p),
        gbps(&mut fast, &p)
    );
    let mut g = h.group("ablation_launch_overhead");
    g.bench("launch_40us", || black_box(gbps(&mut slow, &p)));
    g.bench("launch_4us", || black_box(gbps(&mut fast, &p)));
}

fn main() {
    let h = Harness::from_env();
    bench_prefetcher_ablation(&h);
    bench_lsu_burst_ablation(&h);
    bench_launch_overhead_ablation(&h);
}
