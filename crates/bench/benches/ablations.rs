//! Ablation benches for the design choices DESIGN.md calls out: the
//! stream prefetcher, the store policy, the LSU burst length and the
//! hashed cache indexing. Each variant is benchmarked (host cost of the
//! simulation) and its *simulated* bandwidth is printed once, so a run
//! shows both what the mechanism costs and what it buys.

use criterion::{criterion_group, criterion_main, Criterion};
use kernelgen::{ExecPlan, KernelConfig, LoopMode, StreamOp};
use mpcl::DeviceBackend;
use std::hint::black_box;
use targets::aocl::{AoclBackend, AoclTuning};
use targets::cpu::{CpuBackend, CpuTuning};

fn plan(n_words: u64, loop_mode: LoopMode) -> ExecPlan {
    let mut cfg = KernelConfig::baseline(StreamOp::Copy, n_words);
    cfg.loop_mode = loop_mode;
    let bytes = cfg.array_bytes();
    ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
}

fn gbps(backend: &mut dyn DeviceBackend, p: &ExecPlan) -> f64 {
    let art = backend.build(&p.cfg).expect("build");
    let ns = backend.kernel_cost(&art, p).ns + backend.launch_overhead_ns();
    p.cfg.bytes_moved() as f64 / ns
}

fn bench_prefetcher_ablation(c: &mut Criterion) {
    let p = plan(1 << 20, LoopMode::NdRange);
    let mut with = CpuBackend::new();
    let mut without = CpuBackend::with_tuning(CpuTuning { prefetch_degree: 1, ..Default::default() });
    eprintln!(
        "[ablation] cpu 4MB copy: prefetch degree 32 -> {:.1} GB/s, degree 1 -> {:.1} GB/s",
        gbps(&mut with, &p),
        gbps(&mut without, &p)
    );
    let mut g = c.benchmark_group("ablation_prefetcher");
    g.sample_size(10);
    g.bench_function("degree32", |b| b.iter(|| black_box(gbps(&mut with, &p))));
    g.bench_function("degree1", |b| b.iter(|| black_box(gbps(&mut without, &p))));
    g.finish();
}

fn bench_lsu_burst_ablation(c: &mut Criterion) {
    let p = plan(1 << 20, LoopMode::SingleWorkItemFlat);
    let mut long = AoclBackend::new();
    let mut short = AoclBackend::with_tuning(AoclTuning {
        lsu_burst_elems: 4,
        lsu_max_burst_bytes: 64,
        ..Default::default()
    });
    eprintln!(
        "[ablation] aocl 4MB copy: 1KB bursts -> {:.2} GB/s, 64B bursts -> {:.2} GB/s",
        gbps(&mut long, &p),
        gbps(&mut short, &p)
    );
    let mut g = c.benchmark_group("ablation_lsu_burst");
    g.sample_size(10);
    g.bench_function("burst_1k", |b| b.iter(|| black_box(gbps(&mut long, &p))));
    g.bench_function("burst_64", |b| b.iter(|| black_box(gbps(&mut short, &p))));
    g.finish();
}

fn bench_launch_overhead_ablation(c: &mut Criterion) {
    // Small arrays are overhead-dominated: halving the launch overhead
    // should show up directly (Fig 1a's left edge).
    let p = plan(1 << 12, LoopMode::NdRange);
    let mut slow = CpuBackend::new();
    let mut fast =
        CpuBackend::with_tuning(CpuTuning { launch_overhead_ns: 4_000.0, ..Default::default() });
    eprintln!(
        "[ablation] cpu 16KB copy: 40us launch -> {:.3} GB/s, 4us launch -> {:.3} GB/s",
        gbps(&mut slow, &p),
        gbps(&mut fast, &p)
    );
    let mut g = c.benchmark_group("ablation_launch_overhead");
    g.sample_size(10);
    g.bench_function("launch_40us", |b| b.iter(|| black_box(gbps(&mut slow, &p))));
    g.bench_function("launch_4us", |b| b.iter(|| black_box(gbps(&mut fast, &p))));
    g.finish();
}

criterion_group!(
    benches,
    bench_prefetcher_ablation,
    bench_lsu_burst_ablation,
    bench_launch_overhead_ablation
);
criterion_main!(benches);
