//! # mpstream-bench — the figure-regeneration harness
//!
//! Renders regenerated figures as tables + ASCII charts, compares each
//! against the paper's plotted data ([`mpstream_core::paperdata`]), and
//! assembles `EXPERIMENTS.md`. The `figures` binary drives everything:
//!
//! ```text
//! cargo run -p mpstream-bench --release --bin figures -- all --write-experiments
//! ```

pub mod harness;

use mpstream_core::paperdata::{
    self, check_ordering, check_ratio_band, check_rise_and_plateau, geomean_ratio, Shape,
};
use mpstream_core::{Chart, Figure, FigureId, Scale, Series, Table};
use std::fmt::Write as _;

/// One named shape check and its verdict.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked (e.g. "gpu > cpu > aocl > sdaccel at 4 MB").
    pub name: String,
    /// The verdict.
    pub shape: Shape,
}

/// A figure compared against the paper.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Which figure.
    pub id: FigureId,
    /// Paper-vs-measured per point (only when the sweep matches the
    /// paper's point count, i.e. not in quick mode).
    pub numbers: Option<Table>,
    /// Shape verdicts.
    pub checks: Vec<Check>,
    /// Geometric-mean measured/paper ratio over comparable points.
    pub geomean: Option<f64>,
}

impl Comparison {
    /// Did every shape check pass?
    pub fn all_ok(&self) -> bool {
        self.checks.iter().all(|c| c.shape.ok())
    }
}

fn series<'f>(fig: &'f Figure, label: &str) -> Option<&'f Series> {
    fig.series.iter().find(|s| s.label == label)
}

fn ys(fig: &Figure, label: &str) -> Vec<f64> {
    series(fig, label).map(|s| s.ys()).unwrap_or_default()
}

/// y value of `label` at x closest to `x`.
fn y_at(fig: &Figure, label: &str, x: f64) -> Option<f64> {
    let s = series(fig, label)?;
    s.points
        .iter()
        .min_by(|a, b| {
            (a.0 - x)
                .abs()
                .partial_cmp(&(b.0 - x).abs())
                .expect("finite x")
        })
        .map(|&(_, y)| y)
}

fn paper_table(x_label: &str, xs: &[f64], rows: &[(&str, &[f64], Vec<f64>)]) -> Option<Table> {
    if rows
        .iter()
        .any(|(_, paper, measured)| measured.len() != paper.len())
    {
        return None;
    }
    let mut t = Table::new(&[x_label, "series", "paper GB/s", "measured GB/s", "ratio"]);
    for (label, paper, measured) in rows {
        for (i, (&p, &m)) in paper.iter().zip(measured.iter()).enumerate() {
            t.row(&[
                format!("{}", xs.get(i).copied().unwrap_or(i as f64)),
                label.to_string(),
                format!("{p:.2}"),
                format!("{m:.2}"),
                format!("{:.2}", m / p),
            ]);
        }
    }
    Some(t)
}

/// Compare a regenerated figure against the paper's data and shapes.
pub fn compare_figure(fig: &Figure) -> Comparison {
    match fig.id {
        FigureId::Fig1a => compare_fig1a(fig),
        FigureId::Fig1b => compare_fig1b(fig),
        FigureId::Fig2 => compare_fig2(fig),
        FigureId::Fig3 => compare_fig3(fig),
        FigureId::Fig4a => compare_fig4a(fig),
        FigureId::Fig4b => compare_fig4b(fig),
    }
}

fn compare_fig1a(fig: &Figure) -> Comparison {
    let mut checks = Vec::new();
    for target in ["aocl", "sdaccel", "cpu", "gpu"] {
        checks.push(Check {
            name: format!("{target}: bandwidth rises with size and plateaus"),
            shape: check_rise_and_plateau(&ys(fig, target), 3, 2.0, 4.0),
        });
    }
    let at4 = |t: &str| y_at(fig, t, 4.0).unwrap_or(0.0);
    checks.push(Check {
        name: "gpu > cpu > aocl > sdaccel at ~4 MB".into(),
        shape: check_ordering(&[
            ("gpu", at4("gpu")),
            ("cpu", at4("cpu")),
            ("aocl", at4("aocl")),
            ("sdaccel", at4("sdaccel")),
        ]),
    });

    let rows = [
        ("aocl", &paperdata::FIG1A_AOCL[..], ys(fig, "aocl")),
        ("sdaccel", &paperdata::FIG1A_SDACCEL[..], ys(fig, "sdaccel")),
        ("cpu", &paperdata::FIG1A_CPU[..], ys(fig, "cpu")),
        ("gpu", &paperdata::FIG1A_GPU[..], ys(fig, "gpu")),
    ];
    let xs: Vec<f64> = series(fig, "cpu")
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    let numbers = paper_table("MB", &xs, &rows);
    let geomean = numbers.is_some().then(|| {
        let all_m: Vec<f64> = rows.iter().flat_map(|r| r.2.clone()).collect();
        let all_p: Vec<f64> = rows.iter().flat_map(|r| r.1.to_vec()).collect();
        geomean_ratio(&all_m, &all_p)
    });
    if numbers.is_some() {
        for (label, paper, measured) in &rows {
            checks.push(Check {
                name: format!("{label}: levels within 3x of the paper"),
                shape: check_ratio_band(measured, paper, 3.0),
            });
        }
    }
    Comparison {
        id: fig.id,
        numbers,
        checks,
        geomean,
    }
}

fn compare_fig1b(fig: &Figure) -> Comparison {
    let mut checks = Vec::new();
    for target in ["aocl", "sdaccel"] {
        let v = ys(fig, target);
        let monotone = v.windows(2).all(|w| w[1] >= w[0] * 0.95);
        checks.push(Check {
            name: format!("{target}: vectorization monotonically improves bandwidth"),
            shape: if monotone {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("series {v:?} not monotone")])
            },
        });
    }
    let gpu = ys(fig, "gpu");
    checks.push(Check {
        name: "gpu: width 16 is slower than the best width".into(),
        shape: if gpu.last().copied().unwrap_or(0.0)
            < gpu.iter().cloned().fold(0.0, f64::max) * 0.95
        {
            Shape::Matches
        } else {
            Shape::Deviates(vec![format!("gpu series {gpu:?} does not decline at 16")])
        },
    });
    let aocl = ys(fig, "aocl");
    checks.push(Check {
        name: "aocl: width 16 approaches the 25.6 GB/s peak (>= 40%)".into(),
        shape: if aocl.last().copied().unwrap_or(0.0) > 0.4 * 25.6 {
            Shape::Matches
        } else {
            Shape::Deviates(vec![format!("aocl w16 = {:?}", aocl.last())])
        },
    });

    let rows = [
        ("aocl", &paperdata::FIG1B_AOCL[..], ys(fig, "aocl")),
        ("sdaccel", &paperdata::FIG1B_SDACCEL[..], ys(fig, "sdaccel")),
        ("cpu", &paperdata::FIG1B_CPU[..], ys(fig, "cpu")),
        ("gpu", &paperdata::FIG1B_GPU[..], ys(fig, "gpu")),
    ];
    let xs: Vec<f64> = paperdata::FIG1B_WIDTHS.iter().map(|&w| w as f64).collect();
    let numbers = paper_table("width", &xs, &rows);
    let geomean = numbers.is_some().then(|| {
        let all_m: Vec<f64> = rows.iter().flat_map(|r| r.2.clone()).collect();
        let all_p: Vec<f64> = rows.iter().flat_map(|r| r.1.to_vec()).collect();
        geomean_ratio(&all_m, &all_p)
    });
    if numbers.is_some() {
        for (label, paper, measured) in &rows {
            checks.push(Check {
                name: format!("{label}: levels within 3x of the paper"),
                shape: check_ratio_band(measured, paper, 3.0),
            });
        }
    }
    Comparison {
        id: fig.id,
        numbers,
        checks,
        geomean,
    }
}

fn compare_fig2(fig: &Figure) -> Comparison {
    let mut checks = Vec::new();
    // Strided hurts every target at the 4 MB point.
    for target in ["aocl", "sdaccel", "cpu", "gpu"] {
        let c = y_at(fig, &format!("{target}-contig"), 4.0).unwrap_or(0.0);
        let s = y_at(fig, &format!("{target}-strided"), 4.0).unwrap_or(f64::MAX);
        checks.push(Check {
            name: format!("{target}: strided slower than contiguous at 4 MB"),
            shape: if s < c {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("strided {s:.2} vs contig {c:.2}")])
            },
        });
    }
    // CPU strided: LLC bump then collapse.
    let cpu_s = ys(fig, "cpu-strided");
    checks.push(Check {
        name: "cpu-strided: cache-resident bump then collapse".into(),
        shape: {
            let max = cpu_s.iter().cloned().fold(0.0, f64::max);
            let last = cpu_s.last().copied().unwrap_or(0.0);
            if max > 2.0 * last && last > 0.0 {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("series {cpu_s:?}")])
            }
        },
    });
    // GPU strided: plateau then collapse at huge sizes.
    let gpu_s = ys(fig, "gpu-strided");
    checks.push(Check {
        name: "gpu-strided: collapses at the largest sizes".into(),
        shape: {
            let max = gpu_s.iter().cloned().fold(0.0, f64::max);
            let last = gpu_s.last().copied().unwrap_or(0.0);
            if max > 1.8 * last && last > 0.0 {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("series {gpu_s:?}")])
            }
        },
    });

    let rows = [
        (
            "aocl-contig",
            &paperdata::FIG2_AOCL_CONTIG[..],
            ys(fig, "aocl-contig"),
        ),
        (
            "sdaccel-contig",
            &paperdata::FIG2_SDACCEL_CONTIG[..],
            ys(fig, "sdaccel-contig"),
        ),
        (
            "cpu-contig",
            &paperdata::FIG2_CPU_CONTIG[..],
            ys(fig, "cpu-contig"),
        ),
        (
            "gpu-contig",
            &paperdata::FIG2_GPU_CONTIG[..],
            ys(fig, "gpu-contig"),
        ),
        (
            "aocl-strided",
            &paperdata::FIG2_AOCL_STRIDED[..],
            ys(fig, "aocl-strided"),
        ),
        (
            "sdaccel-strided",
            &paperdata::FIG2_SDACCEL_STRIDED[..],
            ys(fig, "sdaccel-strided"),
        ),
        (
            "cpu-strided",
            &paperdata::FIG2_CPU_STRIDED[..],
            ys(fig, "cpu-strided"),
        ),
        (
            "gpu-strided",
            &paperdata::FIG2_GPU_STRIDED[..],
            ys(fig, "gpu-strided"),
        ),
    ];
    let xs: Vec<f64> = series(fig, "cpu-contig")
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    let numbers = paper_table("MB", &xs, &rows);
    let geomean = numbers.is_some().then(|| {
        let all_m: Vec<f64> = rows.iter().flat_map(|r| r.2.clone()).collect();
        let all_p: Vec<f64> = rows.iter().flat_map(|r| r.1.to_vec()).collect();
        geomean_ratio(&all_m, &all_p)
    });
    Comparison {
        id: fig.id,
        numbers,
        checks,
        geomean,
    }
}

fn target_point(fig: &Figure, series_label: &str, target_idx: usize) -> f64 {
    y_at(fig, series_label, target_idx as f64 + 1.0).unwrap_or(0.0)
}

fn compare_fig3(fig: &Figure) -> Comparison {
    // Targets on the x axis: 1=aocl, 2=sdaccel, 3=cpu, 4=gpu.
    let mut checks = Vec::new();
    let v = |mode: &str, idx: usize| target_point(fig, mode, idx);
    checks.push(Check {
        name: "cpu prefers ndrange".into(),
        shape: check_ordering(&[
            ("ndrange", v("ndrange-kernel", 2)),
            ("flat", v("kernel-loop-flat", 2)),
        ]),
    });
    checks.push(Check {
        name: "gpu prefers ndrange by orders of magnitude".into(),
        shape: if v("ndrange-kernel", 3) > 50.0 * v("kernel-loop-flat", 3) {
            Shape::Matches
        } else {
            Shape::Deviates(vec![format!(
                "ndrange {} vs flat {}",
                v("ndrange-kernel", 3),
                v("kernel-loop-flat", 3)
            )])
        },
    });
    checks.push(Check {
        name: "aocl prefers the single-work-item loop".into(),
        shape: check_ordering(&[
            ("flat", v("kernel-loop-flat", 0)),
            ("ndrange", v("ndrange-kernel", 0)),
        ]),
    });
    checks.push(Check {
        name: "sdaccel: nested loop beats flat loop (the paper's surprise)".into(),
        shape: check_ordering(&[
            ("nested", v("kernel-loop-nested", 1)),
            ("flat", v("kernel-loop-flat", 1)),
        ]),
    });
    Comparison {
        id: fig.id,
        numbers: None,
        checks,
        geomean: None,
    }
}

fn compare_fig4a(fig: &Figure) -> Comparison {
    // All four kernels stay within one memory-bound envelope per target.
    let mut checks = Vec::new();
    for (idx, target) in ["aocl", "sdaccel", "cpu", "gpu"].iter().enumerate() {
        let vals: Vec<f64> = ["copy", "scale", "add", "triad"]
            .iter()
            .map(|op| target_point(fig, op, idx))
            .collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(0.0, f64::max);
        checks.push(Check {
            name: format!("{target}: all four kernels within 2.5x (memory-bound)"),
            shape: if min > 0.0 && max / min < 2.5 {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("kernel spread {vals:?}")])
            },
        });
    }
    Comparison {
        id: fig.id,
        numbers: None,
        checks,
        geomean: None,
    }
}

fn compare_fig4b(fig: &Figure) -> Comparison {
    let mut checks = Vec::new();
    let last = |label: &str| ys(fig, label).last().copied().unwrap_or(0.0);
    checks.push(Check {
        name: "native vectorization beats both vendor replications at N=16".into(),
        shape: check_ordering(&[
            ("vector-size", last("vector-size")),
            ("num-simd-work-items", last("num-simd-work-items")),
        ]),
    });
    checks.push(Check {
        name: "vector beats compute-unit replication at N=16".into(),
        shape: check_ordering(&[
            ("vector-size", last("vector-size")),
            ("num-compute-units", last("num-compute-units")),
        ]),
    });
    let cu = ys(fig, "num-compute-units");
    checks.push(Check {
        name: "compute units rise then decline".into(),
        shape: {
            let max = cu.iter().cloned().fold(0.0, f64::max);
            let first = cu.first().copied().unwrap_or(0.0);
            let last = cu.last().copied().unwrap_or(0.0);
            if max > first && last < max {
                Shape::Matches
            } else {
                Shape::Deviates(vec![format!("cu series {cu:?}")])
            }
        },
    });
    let vec_s = ys(fig, "vector-size");
    let numbers = paper_table(
        "N",
        &paperdata::FIG1B_WIDTHS
            .iter()
            .map(|&w| w as f64)
            .collect::<Vec<_>>(),
        &[("vector-size", &paperdata::FIG1B_AOCL[..], vec_s.clone())],
    );
    let geomean = numbers
        .is_some()
        .then(|| geomean_ratio(&vec_s, &paperdata::FIG1B_AOCL));
    Comparison {
        id: fig.id,
        numbers,
        checks,
        geomean,
    }
}

/// Render a regenerated figure as a text block (series table + chart).
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", fig.id.name(), fig.title);
    let _ = writeln!(out, "   x: {} | y: {}", fig.x_label, fig.y_label);

    let mut t = Table::new(&["series", "x", "y"]);
    for s in &fig.series {
        for &(x, y) in &s.points {
            t.row(&[s.label.clone(), format!("{x}"), format!("{y:.4}")]);
        }
    }
    out.push_str(&t.to_text());
    out.push('\n');
    let mut chart = Chart::new(format!("{} (log-log)", fig.id.name()))
        .size(64, 16)
        .x_scale(Scale::Log10)
        .y_scale(Scale::Log10)
        .x_label(fig.x_label.clone())
        .y_label(fig.y_label.clone());
    for s in &fig.series {
        chart = chart.scatter(s.clone());
    }
    out.push_str(&chart.render());
    for n in &fig.notes {
        let _ = writeln!(out, "note: {n}");
    }
    out
}

/// Render one figure's comparison as Markdown for EXPERIMENTS.md.
pub fn comparison_markdown(fig: &Figure, cmp: &Comparison) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "## {} — {}\n", fig.id.name(), fig.title);
    if let Some(g) = cmp.geomean {
        let _ = writeln!(
            md,
            "Geometric-mean measured/paper ratio: **{g:.2}x** (absolute levels are \
             not a reproduction target; shapes below are).\n"
        );
    }
    let _ = writeln!(md, "Shape checks:\n");
    for c in &cmp.checks {
        match &c.shape {
            Shape::Matches => {
                let _ = writeln!(md, "- [x] {}", c.name);
            }
            Shape::Deviates(problems) => {
                let _ = writeln!(md, "- [ ] {} — {}", c.name, problems.join("; "));
            }
        }
    }
    md.push('\n');
    if let Some(t) = &cmp.numbers {
        let _ = writeln!(md, "Paper vs measured:\n\n```");
        md.push_str(&t.to_text());
        let _ = writeln!(md, "```\n");
    }
    if !fig.notes.is_empty() {
        let _ = writeln!(md, "Notes: {}\n", fig.notes.join("; "));
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpstream_core::Series;

    /// A synthetic fig1b-shaped figure that matches the paper exactly.
    fn synthetic_fig1b() -> Figure {
        let xs: Vec<f64> = paperdata::FIG1B_WIDTHS.iter().map(|&w| w as f64).collect();
        let mk = |label: &str, ys: &[f64]| {
            Series::new(label, xs.iter().cloned().zip(ys.iter().cloned()).collect())
        };
        Figure {
            id: FigureId::Fig1b,
            title: "synthetic".into(),
            x_label: "w".into(),
            y_label: "GB/s".into(),
            series: vec![
                mk("aocl", &paperdata::FIG1B_AOCL),
                mk("sdaccel", &paperdata::FIG1B_SDACCEL),
                mk("cpu", &paperdata::FIG1B_CPU),
                mk("gpu", &paperdata::FIG1B_GPU),
            ],
            notes: vec![],
        }
    }

    #[test]
    fn paper_data_passes_its_own_comparison() {
        let fig = synthetic_fig1b();
        let cmp = compare_figure(&fig);
        assert!(cmp.all_ok(), "{:#?}", cmp.checks);
        assert!((cmp.geomean.unwrap() - 1.0).abs() < 1e-9);
        assert!(cmp.numbers.is_some());
    }

    #[test]
    fn render_contains_chart_and_rows() {
        let fig = synthetic_fig1b();
        let txt = render_figure(&fig);
        assert!(txt.contains("fig1b"));
        assert!(txt.contains("a = aocl"));
    }

    #[test]
    fn markdown_marks_passes_and_failures() {
        let mut fig = synthetic_fig1b();
        // Sabotage the GPU series so the w16 decline check fails.
        fig.series[3] = Series::new(
            "gpu",
            vec![
                (1.0, 100.0),
                (2.0, 120.0),
                (4.0, 140.0),
                (8.0, 160.0),
                (16.0, 200.0),
            ],
        );
        let cmp = compare_figure(&fig);
        assert!(!cmp.all_ok());
        let md = comparison_markdown(&fig, &cmp);
        assert!(md.contains("- [ ]"), "{md}");
        assert!(md.contains("- [x]"), "{md}");
    }

    #[test]
    fn quick_mode_skips_numeric_table() {
        let mut fig = synthetic_fig1b();
        for s in &mut fig.series {
            s.points.truncate(3);
        }
        let cmp = compare_figure(&fig);
        assert!(cmp.numbers.is_none());
        assert!(cmp.geomean.is_none());
    }
}
