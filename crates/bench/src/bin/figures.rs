//! Regenerate the paper's figures on the simulated targets.
//!
//! ```text
//! figures [all|fig1a|fig1b|fig2|fig3|fig4a|fig4b]...
//!         [--quick] [--jobs N] [--csv-dir DIR] [--write-experiments PATH]
//!         [--faults SPEC] [--fault-seed N] [--retries N] [--trace FILE]
//! ```
//!
//! Prints each figure as a table + ASCII log-log chart, compares it
//! against the paper's plotted values, and (optionally) writes CSVs and
//! an EXPERIMENTS.md with per-figure paper-vs-measured records.
//!
//! `--faults` (or the `MPSTREAM_FAULTS` environment variable) injects
//! deterministic transient faults into every sweep; with the default
//! retry budget the figures should come out identical to a fault-free
//! run — a standing end-to-end check of the resilience layer.
//!
//! `--trace FILE` writes one Chrome `trace_event` JSON file covering all
//! requested figures (chrome://tracing or Perfetto). With
//! `MPSTREAM_TRACE_CANONICAL=1` the canonical jobs-invariant form is
//! written instead — the CI determinism job diffs it across `--jobs`.

use mpstream_bench::{compare_figure, comparison_markdown, render_figure};
use mpstream_core::engine::{env_fault_seed, env_fault_spec, env_retries};
use mpstream_core::experiments::{run_figure, RunOpts};
use mpstream_core::paperdata::Shape;
use mpstream_core::{FigureId, Table, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: figures [all|fig1a|fig1b|fig2|fig3|fig4a|fig4b]... \
         [--quick] [--jobs N] [--csv-dir DIR] [--write-experiments PATH] \
         [--faults SPEC] [--fault-seed N] [--retries N] [--trace FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut ids: Vec<FigureId> = Vec::new();
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut csv_dir: Option<PathBuf> = None;
    let mut experiments_path: Option<PathBuf> = None;
    let mut faults = env_fault_spec();
    let mut fault_seed = env_fault_seed();
    let mut retries = env_retries();
    let mut trace_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => ids.extend(FigureId::ALL),
            "--quick" => quick = true,
            "--jobs" => {
                jobs = match args.next().and_then(|v| v.parse().ok()) {
                    Some(0) | None => usage(),
                    n => n,
                }
            }
            "--csv-dir" => csv_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--write-experiments" => {
                experiments_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--faults" => {
                let spec = args.next().unwrap_or_else(|| usage());
                faults = Some(mpcl::FaultSpec::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("[figures] {e}");
                    usage()
                }));
            }
            "--fault-seed" => {
                fault_seed = match args.next().and_then(|v| v.parse().ok()) {
                    None => usage(),
                    n => n,
                }
            }
            "--retries" => {
                retries = match args.next().and_then(|v| v.parse().ok()) {
                    None => usage(),
                    n => n,
                }
            }
            "--trace" => trace_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            other => match FigureId::from_name(other) {
                Some(id) => ids.push(id),
                None => usage(),
            },
        }
    }
    if ids.is_empty() {
        ids.extend(FigureId::ALL);
    }
    let mut opts = if quick {
        RunOpts::quick()
    } else {
        RunOpts::full()
    };
    if let Some(n) = jobs {
        opts = opts.with_jobs(n);
    }
    if let Some(spec) = faults {
        opts = opts.with_faults(spec);
        eprintln!("[figures] injecting faults: {spec:?}");
    }
    if let Some(seed) = fault_seed {
        opts = opts.with_fault_seed(seed);
    }
    if let Some(r) = retries {
        opts = opts.with_retries(r);
    }
    let trace = trace_path.as_ref().map(|_| Trace::new());
    if let Some(t) = &trace {
        opts = opts.with_trace(t.clone());
    }

    let mut experiments_md = String::from(EXPERIMENTS_HEADER);
    let mut failures = 0usize;

    for id in ids {
        eprintln!(
            "[figures] running {} ({} mode)...",
            id.name(),
            if quick { "quick" } else { "full" }
        );
        let fig = run_figure(id, opts.clone());
        println!("{}", render_figure(&fig));

        let cmp = compare_figure(&fig);
        println!("shape checks for {}:", id.name());
        for c in &cmp.checks {
            match &c.shape {
                Shape::Matches => println!("  PASS  {}", c.name),
                Shape::Deviates(problems) => {
                    failures += 1;
                    println!("  FAIL  {} :: {}", c.name, problems.join("; "));
                }
            }
        }
        if let Some(g) = cmp.geomean {
            println!("  geomean measured/paper ratio: {g:.2}x");
        }
        println!();

        let _ = write!(experiments_md, "{}", comparison_markdown(&fig, &cmp));

        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let mut t = Table::new(&["series", "x", "y"]);
            for s in &fig.series {
                for &(x, y) in &s.points {
                    t.row(&[s.label.clone(), x.to_string(), y.to_string()]);
                }
            }
            let path = dir.join(format!("{}.csv", id.name()));
            std::fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("[figures] wrote {}", path.display());
        }
    }

    if let Some(path) = experiments_path {
        std::fs::write(&path, experiments_md).expect("write EXPERIMENTS.md");
        eprintln!("[figures] wrote {}", path.display());
    }

    if let (Some(path), Some(t)) = (&trace_path, &trace) {
        let canonical = mpstream_core::env::flag_enabled("MPSTREAM_TRACE_CANONICAL");
        let json = if canonical {
            t.canonical_chrome_json()
        } else {
            t.to_chrome_json()
        };
        std::fs::write(path, json).expect("write trace");
        eprintln!(
            "[figures] wrote {} ({} events{})",
            path.display(),
            t.len(),
            if canonical { ", canonical" } else { "" }
        );
    }

    if failures > 0 {
        eprintln!("[figures] {failures} shape check(s) FAILED");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

const EXPERIMENTS_HEADER: &str = "\
# EXPERIMENTS — paper vs measured

Generated by `cargo run -p mpstream-bench --release --bin figures -- all \
--write-experiments EXPERIMENTS.md`.

The substrate here is a deterministic simulator of the paper's four
targets (see DESIGN.md §2 for the hardware substitutions), so absolute
GB/s are *not* reproduction targets. What is checked, per figure, is the
paper's qualitative claims: who wins, what rises/plateaus/collapses,
where vendor knobs help and then hurt. Numeric paper-vs-measured tables
are included wherever the paper's figure text publishes values
(Figures 1a, 1b, 2 and the vector series of 4b); Figures 3 and 4a have
no published numbers, so only their orderings are checked.

";
