//! Run the extension experiments (energy, data type, HMC outlook, host
//! link) and print their tables; optionally append a Markdown section to
//! EXPERIMENTS.md.
//!
//! ```text
//! extensions [--append-experiments PATH]
//! ```

use mpstream_core::all_extensions;
use std::fmt::Write as _;

fn main() {
    let mut append_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--append-experiments" => append_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: extensions [--append-experiments PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut md = String::from("\n# Extensions (beyond the paper's figures)\n\n");
    for r in all_extensions() {
        println!("== {} — {} ==", r.id, r.title);
        println!("{}", r.table.to_text());
        for n in &r.notes {
            println!("note: {n}");
        }
        println!();

        let _ = writeln!(md, "## {} — {}\n", r.id, r.title);
        let _ = writeln!(md, "```\n{}```\n", r.table.to_text());
        for n in &r.notes {
            let _ = writeln!(md, "- {n}");
        }
        md.push('\n');
    }

    if let Some(path) = append_path {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open experiments file");
        f.write_all(md.as_bytes())
            .expect("append extensions section");
        eprintln!("[extensions] appended to {path}");
    }
}
