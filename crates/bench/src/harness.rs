//! A minimal wall-clock benchmark harness for the `[[bench]]` targets.
//!
//! The container this workspace builds in has no registry access, so the
//! benches cannot depend on an external harness crate; this module
//! provides the small subset actually used: named groups, per-function
//! throughput annotation, warmup + repeated sampling, and a
//! `cargo bench -- <filter>` substring filter. Timings are reported as
//! min / median / mean over the samples — min is the least noisy
//! statistic for the "did the simulator get slower?" question these
//! benches exist to answer.

use std::time::{Duration, Instant};

/// What one iteration of a benchmark processes, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration moves this many bytes (reported as GB/s).
    Bytes(u64),
    /// Iteration handles this many items (reported as Melem/s).
    Elements(u64),
}

/// Top-level harness: parses the filter cargo passes after `--` and the
/// `MPSTREAM_BENCH_SAMPLES` override (default 10 samples per function).
pub struct Harness {
    filter: Vec<String>,
    samples: usize,
}

impl Harness {
    /// Build from the process environment and command line.
    pub fn from_env() -> Self {
        // Cargo invokes bench binaries with flags like `--bench`; any
        // non-flag argument is a name filter, matching cargo's own
        // convention of `cargo bench -- <substring>`.
        let filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let samples =
            mpstream_core::env::positive_or_warn("MPSTREAM_BENCH_SAMPLES", "the default (10)")
                .unwrap_or(10);
        Self { filter, samples }
    }

    /// Open a named group of related benchmarks.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn selected(&self, full_name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| full_name.contains(f.as_str()))
    }
}

/// A named group; `throughput` applies to subsequently benched functions.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    throughput: Option<Throughput>,
}

impl Group<'_> {
    /// Annotate following benchmarks with a per-iteration work amount.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark: one warmup iteration, then the configured
    /// number of timed samples of a single iteration each.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{}", self.name, name);
        if !self.harness.selected(&full) {
            return;
        }
        std::hint::black_box(f()); // warmup, also forces lazy init
        let mut times: Vec<Duration> = (0..self.harness.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:8.2} GB/s", b as f64 / min.as_nanos().max(1) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!(
                    "  {:8.2} Melem/s",
                    n as f64 * 1e3 / min.as_nanos().max(1) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{full:<44} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}{rate}",
            min, median, mean
        );
    }
}
