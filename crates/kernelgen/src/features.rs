//! Architecture-independent program features of a kernel configuration.
//!
//! Chilukuri et al. ("Characterizing Optimizations to Memory Access
//! Patterns using Architecture-Independent Program Features") show that
//! sustained bandwidth is largely predictable from properties of the
//! access stream itself — operational intensity, stride class, access
//! granularity — without ever consulting the target. The surrogate
//! model in `mpstream_core::dse` builds on exactly that observation:
//! every feature here is derived from the kernel IR alone, so a model
//! fitted on a handful of measured points can rank the rest of the
//! design space before anything is synthesized.
//!
//! The vector is deliberately low-dimensional and log-scaled: the
//! tuning dimensions (vector width, unroll, stride) act multiplicatively
//! on the memory system, so a linear model over their logarithms is the
//! natural first-order fit. Loop management is categorical and one-hot
//! encoded, with loop-mode × width interaction terms appended because
//! the profitability of wide accesses depends on how the iteration
//! space is expressed (an NDRange kernel coalesces differently from a
//! pipelined single-work-item loop).

use crate::ir::{AccessPattern, KernelConfig, LoopMode, Op, VendorOpts};

/// Names of the feature dimensions, index-aligned with [`features`].
pub const FEATURE_NAMES: &[&str] = &[
    "op_intensity",
    "arrays",
    "log2_word_bytes",
    "log2_vector_width",
    "log2_unroll",
    "loop_ndrange",
    "loop_flat",
    "loop_nested",
    "pattern_unit_stride",
    "log2_stride",
    "log2_bytes_per_iter",
    "log2_n_words",
    "log2_simd",
    "log2_compute_units",
    "ndrange_x_log2_width",
    "flat_x_log2_width",
    "nested_x_log2_width",
    "flat_x_log2_unroll",
    "nested_x_log2_unroll",
    "is_random_access",
    "is_transpose",
    "is_dgemm",
    "log2_compute_intensity",
    "log2_channel_depth",
    "is_channeled",
];

/// Number of feature dimensions.
pub const FEATURE_DIM: usize = FEATURE_NAMES.len();

fn log2(x: f64) -> f64 {
    x.max(1.0).log2()
}

/// The architecture-independent feature vector of a configuration.
///
/// Every entry depends only on the kernel IR — never on the device the
/// configuration will run on — so the same vector is valid input for a
/// surrogate trained against any target. See [`FEATURE_NAMES`] for the
/// dimension labels.
pub fn features(cfg: &KernelConfig) -> Vec<f64> {
    let arrays = cfg.op.arrays() as f64;
    let word_bytes = cfg.dtype.word_bytes() as f64;
    let width = cfg.vector_width.get() as f64;
    let unroll = cfg.unroll as f64;

    // Floating-point (or integer) operations per payload byte: COPY
    // computes nothing, SCALE and ADD one op per element, TRIAD two.
    // GUPS does one XOR (plus the hash, counted as one fused op);
    // PTRANS computes nothing; DGEMM-lite does 2K ops per output
    // element (K multiply-adds over the inner dimension).
    let ops_per_elem = match cfg.op {
        Op::Copy | Op::Ptrans => 0.0,
        Op::Scale | Op::Add | Op::RandomAccess => 1.0,
        Op::Triad => 2.0,
        Op::DgemmLite => {
            let (_, k) = cfg.matrix_shape();
            2.0 * k as f64
        }
    };
    let op_intensity = ops_per_elem / (arrays * word_bytes);

    let (unit_stride, stride) = match cfg.pattern {
        AccessPattern::Contiguous => (1.0, 1.0),
        AccessPattern::ColMajor { .. } => {
            // Column-major walks jump by the row length of the 2D view.
            let (_, cols) = cfg.matrix_shape();
            (0.0, cols as f64)
        }
        AccessPattern::Strided { stride } => (0.0, stride as f64),
    };

    let (ndrange, flat, nested) = match cfg.loop_mode {
        LoopMode::NdRange => (1.0, 0.0, 0.0),
        LoopMode::SingleWorkItemFlat => (0.0, 1.0, 0.0),
        LoopMode::SingleWorkItemNested => (0.0, 0.0, 1.0),
    };

    let (simd, cu) = match cfg.vendor {
        VendorOpts::Aocl(a) => (a.num_simd_work_items as f64, a.num_compute_units as f64),
        _ => (1.0, 1.0),
    };

    // Payload bytes touched per (unrolled) loop iteration: the access
    // granularity the memory controller actually sees.
    let bytes_per_iter = cfg.vector_bytes() as f64 * arrays * unroll;

    vec![
        op_intensity,
        arrays,
        log2(word_bytes),
        log2(width),
        log2(unroll),
        ndrange,
        flat,
        nested,
        unit_stride,
        log2(stride),
        log2(bytes_per_iter),
        log2(cfg.n_words as f64),
        log2(simd),
        log2(cu),
        ndrange * log2(width),
        flat * log2(width),
        nested * log2(width),
        flat * log2(unroll),
        nested * log2(unroll),
        (cfg.op == Op::RandomAccess) as u8 as f64,
        (cfg.op == Op::Ptrans) as u8 as f64,
        (cfg.op == Op::DgemmLite) as u8 as f64,
        log2(1.0 + ops_per_elem),
        log2(1.0 + cfg.channel.map_or(0.0, |ch| ch.depth as f64)),
        cfg.channel.is_some() as u8 as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AoclOpts, StreamOp, VectorWidth};

    fn base() -> KernelConfig {
        KernelConfig::baseline(StreamOp::Copy, 1 << 20)
    }

    #[test]
    fn dimension_count_matches_names() {
        assert_eq!(features(&base()).len(), FEATURE_DIM);
    }

    #[test]
    fn op_intensity_orders_the_kernels() {
        let f = |op| {
            let mut c = base();
            c.op = op;
            features(&c)[0]
        };
        assert_eq!(f(StreamOp::Copy), 0.0);
        assert!(f(StreamOp::Scale) > f(StreamOp::Copy));
        assert!(f(StreamOp::Triad) > f(StreamOp::Add));
    }

    #[test]
    fn log_dimensions_scale_linearly() {
        let mut c = base();
        c.vector_width = VectorWidth::new(4).unwrap();
        let f4 = features(&c);
        c.vector_width = VectorWidth::new(16).unwrap();
        let f16 = features(&c);
        assert_eq!(f4[3], 2.0);
        assert_eq!(f16[3], 4.0);
    }

    #[test]
    fn loop_mode_is_one_hot() {
        for mode in LoopMode::ALL {
            let mut c = base();
            c.loop_mode = mode;
            let f = features(&c);
            assert_eq!(f[5] + f[6] + f[7], 1.0, "{mode:?}");
        }
    }

    #[test]
    fn stride_features_distinguish_patterns() {
        let mut c = base();
        assert_eq!(features(&c)[8], 1.0, "contiguous is unit stride");
        assert_eq!(features(&c)[9], 0.0);
        c.pattern = AccessPattern::Strided { stride: 8 };
        let f = features(&c);
        assert_eq!(f[8], 0.0);
        assert_eq!(f[9], 3.0);
    }

    #[test]
    fn vendor_replication_is_captured() {
        let mut c = base();
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 2,
            num_compute_units: 8,
        });
        let f = features(&c);
        assert_eq!(f[12], 1.0);
        assert_eq!(f[13], 3.0);
    }

    #[test]
    fn family_and_channel_dims_discriminate() {
        use crate::ir::ChannelSpec;
        let dim = |name: &str| {
            FEATURE_NAMES
                .iter()
                .position(|n| *n == name)
                .expect("known feature")
        };
        for op in Op::FAMILIES {
            let mut c = base();
            c.op = op;
            let f = features(&c);
            assert_eq!(f.len(), FEATURE_DIM, "{op:?}");
            assert_eq!(
                f[dim("is_random_access")],
                (op == Op::RandomAccess) as u8 as f64
            );
            assert_eq!(f[dim("is_transpose")], (op == Op::Ptrans) as u8 as f64);
            assert_eq!(f[dim("is_dgemm")], (op == Op::DgemmLite) as u8 as f64);
        }
        // DGEMM's compute intensity dwarfs the streaming kernels'.
        let mut dgemm = base();
        dgemm.op = Op::DgemmLite;
        let mut triad = base();
        triad.op = Op::Triad;
        assert!(
            features(&dgemm)[dim("log2_compute_intensity")]
                > features(&triad)[dim("log2_compute_intensity")]
        );
        // Channel depth registers.
        let mut c = base();
        assert_eq!(features(&c)[dim("is_channeled")], 0.0);
        c.channel = Some(ChannelSpec { depth: 7 });
        let f = features(&c);
        assert_eq!(f[dim("is_channeled")], 1.0);
        assert_eq!(f[dim("log2_channel_depth")], 3.0); // log2(1 + 7)
    }

    #[test]
    fn features_are_target_free_and_deterministic() {
        // Same config, same vector — the contract the surrogate relies on.
        assert_eq!(features(&base()), features(&base()));
    }
}
