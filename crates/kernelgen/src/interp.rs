//! Functional execution of STREAM kernels over raw byte buffers.
//!
//! Every simulated kernel launch really computes its result, so the
//! benchmark runner can validate output arrays exactly like the original
//! STREAM's `checkSTREAMresults`. Execution follows the configuration's
//! traversal order (so index-arithmetic bugs in a pattern would corrupt
//! results and fail validation, rather than hiding behind an elementwise
//! shortcut), with a fast path for the contiguous pattern.

use crate::access::IndexOrder;
use crate::ir::{gups_index, DataType, KernelConfig, Op, StreamOp};

/// An element type the kernels operate on.
trait Element: Copy {
    const BYTES: usize;
    fn from_q(q: f64) -> Self;
    fn load(bytes: &[u8]) -> Self;
    fn store(self, bytes: &mut [u8]);
    fn mul(self, other: Self) -> Self;
    fn add(self, other: Self) -> Self;
}

impl Element for i32 {
    const BYTES: usize = 4;
    fn from_q(q: f64) -> Self {
        q as i32
    }
    fn load(bytes: &[u8]) -> Self {
        i32::from_ne_bytes(bytes[..4].try_into().expect("4 bytes"))
    }
    fn store(self, bytes: &mut [u8]) {
        bytes[..4].copy_from_slice(&self.to_ne_bytes());
    }
    fn mul(self, other: Self) -> Self {
        self.wrapping_mul(other)
    }
    fn add(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
}

impl Element for f64 {
    const BYTES: usize = 8;
    fn from_q(q: f64) -> Self {
        q
    }
    fn load(bytes: &[u8]) -> Self {
        f64::from_ne_bytes(bytes[..8].try_into().expect("8 bytes"))
    }
    fn store(self, bytes: &mut [u8]) {
        bytes[..8].copy_from_slice(&self.to_ne_bytes());
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
}

/// Execute the kernel described by `cfg`: `a` is the destination buffer,
/// `b` and `c` the sources (`c` may be empty for COPY/SCALE). Buffer
/// lengths must be at least [`KernelConfig::array_bytes`].
///
/// # Panics
/// Panics if a buffer is too short — the runtime layer (mpcl) validates
/// sizes before dispatching, mirroring `CL_INVALID_BUFFER_SIZE`.
pub fn execute(cfg: &KernelConfig, a: &mut [u8], b: &[u8], c: &[u8]) {
    let need = cfg.array_bytes() as usize;
    assert!(
        a.len() >= need,
        "destination buffer too small: {} < {need}",
        a.len()
    );
    assert!(b.len() >= need, "source b too small: {} < {need}", b.len());
    if cfg.op.uses_c() {
        assert!(c.len() >= need, "source c too small: {} < {need}", c.len());
    }
    if !cfg.op.is_stream() {
        execute_hpcc(cfg, a, b, c);
        return;
    }
    match cfg.dtype {
        DataType::I32 => execute_typed::<i32>(cfg, a, b, c),
        DataType::F64 => execute_typed::<f64>(cfg, a, b, c),
    }
}

/// The HPCC-style kernels. All are scalar (validation pins them to
/// vector width 1) and order-independent: GUPS accumulates with XOR,
/// PTRANS writes each destination slot exactly once, DGEMM-lite's
/// outputs are independent — so the traversal order that matters for
/// timing does not affect values, and results stay bit-exact.
fn execute_hpcc(cfg: &KernelConfig, a: &mut [u8], b: &[u8], c: &[u8]) {
    let n = cfg.n_words as usize;
    match cfg.op {
        Op::RandomAccess => {
            // a starts from zero so a launch is a pure function of b
            // (and repeated timed launches all produce the same bits).
            a[..n * 4].fill(0);
            for i in 0..n {
                let h = gups_index(i as u64, n as u64) as usize * 4;
                let x = i32::from_ne_bytes(b[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
                let old = i32::from_ne_bytes(a[h..h + 4].try_into().expect("4 bytes"));
                a[h..h + 4].copy_from_slice(&(old ^ x).to_ne_bytes());
            }
        }
        Op::Ptrans => {
            // Pure byte-level permutation, valid for both dtypes.
            let w = cfg.dtype.word_bytes() as usize;
            let (rows, cols) = cfg.matrix_shape();
            for i in 0..n {
                let (r, col) = (i as u64 / cols, i as u64 % cols);
                let dst = (col * rows + r) as usize * w;
                a[dst..dst + w].copy_from_slice(&b[i * w..i * w + w]);
            }
        }
        Op::DgemmLite => {
            // i32 wrapping matmul with a fixed accumulation order; the
            // operand matrix from `c` is its first cols x cols elements.
            let (_, cols) = cfg.matrix_shape();
            let k_dim = cols as usize;
            let load = |buf: &[u8], idx: usize| {
                i32::from_ne_bytes(buf[idx * 4..idx * 4 + 4].try_into().expect("4 bytes"))
            };
            for i in 0..n {
                let (r, col) = (i / k_dim, i % k_dim);
                let mut acc = 0i32;
                for k in 0..k_dim {
                    acc = acc.wrapping_add(
                        load(b, r * k_dim + k).wrapping_mul(load(c, k * k_dim + col)),
                    );
                }
                a[i * 4..i * 4 + 4].copy_from_slice(&acc.to_ne_bytes());
            }
        }
        _ => unreachable!("stream ops take execute_typed"),
    }
}

fn execute_typed<T: Element>(cfg: &KernelConfig, a: &mut [u8], b: &[u8], c: &[u8]) {
    let q = T::from_q(cfg.q);
    let w = T::BYTES;
    let n = cfg.n_words as usize;

    // Fast path: contiguous traversal is a plain elementwise loop.
    if cfg.pattern.is_contiguous() {
        match cfg.op {
            StreamOp::Copy => a[..n * w].copy_from_slice(&b[..n * w]),
            StreamOp::Scale => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    q.mul(x).store(&mut a[i * w..]);
                }
            }
            StreamOp::Add => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    let y = T::load(&c[i * w..]);
                    x.add(y).store(&mut a[i * w..]);
                }
            }
            StreamOp::Triad => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    let y = T::load(&c[i * w..]);
                    x.add(q.mul(y)).store(&mut a[i * w..]);
                }
            }
            _ => unreachable!("HPCC ops take execute_hpcc"),
        }
        return;
    }

    // Pattern-faithful path: visit vector elements in traversal order.
    let vw = cfg.vector_width.get() as usize;
    for vidx in IndexOrder::new(cfg) {
        let start = vidx as usize * vw;
        for lane in 0..vw {
            let i = (start + lane) * w;
            let x = T::load(&b[i..]);
            let val = match cfg.op {
                StreamOp::Copy => x,
                StreamOp::Scale => q.mul(x),
                StreamOp::Add => x.add(T::load(&c[i..])),
                StreamOp::Triad => x.add(q.mul(T::load(&c[i..]))),
                _ => unreachable!("HPCC ops take execute_hpcc"),
            };
            val.store(&mut a[i..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, VectorWidth};

    fn bufs_i32(n: usize) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut b = vec![0u8; n * 4];
        let mut c = vec![0u8; n * 4];
        for i in 0..n {
            (i as i32 + 1).store(&mut b[i * 4..]);
            (2 * i as i32).store(&mut c[i * 4..]);
        }
        (vec![0u8; n * 4], b, c)
    }

    fn read_i32(buf: &[u8], i: usize) -> i32 {
        i32::load(&buf[i * 4..])
    }

    #[test]
    fn copy_i32() {
        let (mut a, b, c) = bufs_i32(100);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 100);
        execute(&cfg, &mut a, &b, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Scale, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), 3 * (i as i32 + 1));
        }
    }

    #[test]
    fn add_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Add, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), (i as i32 + 1) + 2 * i as i32);
        }
    }

    #[test]
    fn triad_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Triad, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), (i as i32 + 1) + 3 * 2 * i as i32);
        }
    }

    #[test]
    fn triad_f64() {
        let n = 16;
        let mut b = vec![0u8; n * 8];
        let mut c = vec![0u8; n * 8];
        for i in 0..n {
            (i as f64).store(&mut b[i * 8..]);
            (0.5 * i as f64).store(&mut c[i * 8..]);
        }
        let mut a = vec![0u8; n * 8];
        let mut cfg = KernelConfig::baseline(StreamOp::Triad, n as u64);
        cfg.dtype = DataType::F64;
        cfg.q = 2.0;
        execute(&cfg, &mut a, &b, &c);
        for i in 0..n {
            let got = f64::load(&a[i * 8..]);
            assert_eq!(got, i as f64 + 2.0 * 0.5 * i as f64);
        }
    }

    #[test]
    fn strided_pattern_same_result_as_contiguous() {
        let (mut a1, b, c) = bufs_i32(64);
        let mut a2 = vec![0u8; 64 * 4];
        let cfg1 = KernelConfig::baseline(StreamOp::Triad, 64);
        let mut cfg2 = cfg1.clone();
        cfg2.pattern = AccessPattern::Strided { stride: 8 };
        execute(&cfg1, &mut a1, &b, &c);
        execute(&cfg2, &mut a2, &b, &c);
        assert_eq!(a1, a2, "pattern only changes order, not values");
    }

    #[test]
    fn colmajor_vectorized_same_result() {
        let (mut a1, b, c) = bufs_i32(256);
        let mut a2 = vec![0u8; 256 * 4];
        let cfg1 = KernelConfig::baseline(StreamOp::Scale, 256);
        let mut cfg2 = cfg1.clone();
        cfg2.vector_width = VectorWidth::new(4).unwrap();
        cfg2.pattern = AccessPattern::ColMajor { cols: Some(8) };
        execute(&cfg1, &mut a1, &b, &c);
        execute(&cfg2, &mut a2, &b, &c);
        assert_eq!(a1, a2);
    }

    #[test]
    fn int_overflow_wraps() {
        let n = 2;
        let mut b = vec![0u8; 8];
        i32::MAX.store(&mut b[0..]);
        1i32.store(&mut b[4..]);
        let mut a = vec![0u8; 8];
        let mut cfg = KernelConfig::baseline(StreamOp::Scale, n as u64);
        cfg.q = 2.0;
        execute(&cfg, &mut a, &b, &[]);
        assert_eq!(read_i32(&a, 0), i32::MAX.wrapping_mul(2));
        assert_eq!(read_i32(&a, 1), 2);
    }

    #[test]
    #[should_panic(expected = "destination buffer too small")]
    fn short_destination_panics() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 100);
        let mut a = vec![0u8; 10];
        let b = vec![0u8; 400];
        execute(&cfg, &mut a, &b, &[]);
    }

    #[test]
    fn gups_is_an_xor_scatter_from_zero() {
        let n = 32usize;
        let (mut a, b, _) = bufs_i32(n);
        let cfg = KernelConfig::baseline(Op::RandomAccess, n as u64);
        execute(&cfg, &mut a, &b, &[]);
        let mut expect = vec![0i32; n];
        for i in 0..n {
            let h = crate::ir::gups_index(i as u64, n as u64) as usize;
            expect[h] ^= i as i32 + 1; // bufs_i32 fills b[i] = i + 1
        }
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(read_i32(&a, i), e, "a[{i}]");
        }
        // Idempotent across repeated launches (a is re-zeroed).
        let snapshot = a.clone();
        execute(&cfg, &mut a, &b, &[]);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn ptrans_transposes_the_2d_view() {
        let n = 12usize; // 4 rows x 3 cols near-square view
        let (mut a, b, _) = bufs_i32(n);
        let cfg = KernelConfig::baseline(Op::Ptrans, n as u64);
        let (rows, cols) = cfg.matrix_shape();
        assert_eq!((rows, cols), (4, 3));
        execute(&cfg, &mut a, &b, &[]);
        for r in 0..rows as usize {
            for c in 0..cols as usize {
                assert_eq!(
                    read_i32(&a, c * rows as usize + r),
                    read_i32(&b, r * cols as usize + c)
                );
            }
        }
    }

    #[test]
    fn ptrans_f64_is_a_bit_exact_permutation() {
        let n = 16usize;
        let mut b = vec![0u8; n * 8];
        for i in 0..n {
            (0.25 * i as f64).store(&mut b[i * 8..]);
        }
        let mut a = vec![0u8; n * 8];
        let mut cfg = KernelConfig::baseline(Op::Ptrans, n as u64);
        cfg.dtype = DataType::F64;
        execute(&cfg, &mut a, &b, &[]);
        let mut seen: Vec<u64> = (0..n)
            .map(|i| u64::from_ne_bytes(a[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect();
        let mut src: Vec<u64> = (0..n)
            .map(|i| u64::from_ne_bytes(b[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect();
        seen.sort_unstable();
        src.sort_unstable();
        assert_eq!(seen, src);
    }

    #[test]
    fn dgemm_lite_matches_a_reference_matmul() {
        let n = 16usize; // 4x4, K = 4
        let (mut a, b, c) = bufs_i32(n);
        let cfg = KernelConfig::baseline(Op::DgemmLite, n as u64);
        execute(&cfg, &mut a, &b, &c);
        for r in 0..4usize {
            for col in 0..4usize {
                let mut acc = 0i32;
                for k in 0..4usize {
                    acc = acc.wrapping_add(
                        read_i32(&b, r * 4 + k).wrapping_mul(read_i32(&c, k * 4 + col)),
                    );
                }
                assert_eq!(read_i32(&a, r * 4 + col), acc, "a[{r},{col}]");
            }
        }
    }

    #[test]
    fn hpcc_results_do_not_depend_on_pattern() {
        // PTRANS and DGEMM allow ColMajor; values must match contiguous.
        for op in [Op::Ptrans, Op::DgemmLite] {
            let n = 64usize;
            let (mut a1, b, c) = bufs_i32(n);
            let mut a2 = vec![0u8; n * 4];
            // 64 elements: the near-square contiguous view is also 8x8,
            // so the explicit ColMajor { cols: 8 } shape matches and only
            // the traversal order differs.
            let cfg1 = KernelConfig::baseline(op, n as u64);
            let mut cfg2 = cfg1.clone();
            cfg2.pattern = AccessPattern::ColMajor { cols: Some(8) };
            execute(&cfg1, &mut a1, &b, &c);
            execute(&cfg2, &mut a2, &b, &c);
            assert_eq!(a1, a2, "{op:?}");
        }
    }

    #[test]
    fn copy_scale_ignore_c_buffer() {
        let (mut a, b, _) = bufs_i32(8);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 8);
        execute(&cfg, &mut a, &b, &[]); // empty c is fine
        assert_eq!(a, b);
    }
}
