//! Functional execution of STREAM kernels over raw byte buffers.
//!
//! Every simulated kernel launch really computes its result, so the
//! benchmark runner can validate output arrays exactly like the original
//! STREAM's `checkSTREAMresults`. Execution follows the configuration's
//! traversal order (so index-arithmetic bugs in a pattern would corrupt
//! results and fail validation, rather than hiding behind an elementwise
//! shortcut), with a fast path for the contiguous pattern.

use crate::access::IndexOrder;
use crate::ir::{DataType, KernelConfig, StreamOp};

/// An element type the kernels operate on.
trait Element: Copy {
    const BYTES: usize;
    fn from_q(q: f64) -> Self;
    fn load(bytes: &[u8]) -> Self;
    fn store(self, bytes: &mut [u8]);
    fn mul(self, other: Self) -> Self;
    fn add(self, other: Self) -> Self;
}

impl Element for i32 {
    const BYTES: usize = 4;
    fn from_q(q: f64) -> Self {
        q as i32
    }
    fn load(bytes: &[u8]) -> Self {
        i32::from_ne_bytes(bytes[..4].try_into().expect("4 bytes"))
    }
    fn store(self, bytes: &mut [u8]) {
        bytes[..4].copy_from_slice(&self.to_ne_bytes());
    }
    fn mul(self, other: Self) -> Self {
        self.wrapping_mul(other)
    }
    fn add(self, other: Self) -> Self {
        self.wrapping_add(other)
    }
}

impl Element for f64 {
    const BYTES: usize = 8;
    fn from_q(q: f64) -> Self {
        q
    }
    fn load(bytes: &[u8]) -> Self {
        f64::from_ne_bytes(bytes[..8].try_into().expect("8 bytes"))
    }
    fn store(self, bytes: &mut [u8]) {
        bytes[..8].copy_from_slice(&self.to_ne_bytes());
    }
    fn mul(self, other: Self) -> Self {
        self * other
    }
    fn add(self, other: Self) -> Self {
        self + other
    }
}

/// Execute the kernel described by `cfg`: `a` is the destination buffer,
/// `b` and `c` the sources (`c` may be empty for COPY/SCALE). Buffer
/// lengths must be at least [`KernelConfig::array_bytes`].
///
/// # Panics
/// Panics if a buffer is too short — the runtime layer (mpcl) validates
/// sizes before dispatching, mirroring `CL_INVALID_BUFFER_SIZE`.
pub fn execute(cfg: &KernelConfig, a: &mut [u8], b: &[u8], c: &[u8]) {
    let need = cfg.array_bytes() as usize;
    assert!(
        a.len() >= need,
        "destination buffer too small: {} < {need}",
        a.len()
    );
    assert!(b.len() >= need, "source b too small: {} < {need}", b.len());
    if cfg.op.uses_c() {
        assert!(c.len() >= need, "source c too small: {} < {need}", c.len());
    }
    match cfg.dtype {
        DataType::I32 => execute_typed::<i32>(cfg, a, b, c),
        DataType::F64 => execute_typed::<f64>(cfg, a, b, c),
    }
}

fn execute_typed<T: Element>(cfg: &KernelConfig, a: &mut [u8], b: &[u8], c: &[u8]) {
    let q = T::from_q(cfg.q);
    let w = T::BYTES;
    let n = cfg.n_words as usize;

    // Fast path: contiguous traversal is a plain elementwise loop.
    if cfg.pattern.is_contiguous() {
        match cfg.op {
            StreamOp::Copy => a[..n * w].copy_from_slice(&b[..n * w]),
            StreamOp::Scale => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    q.mul(x).store(&mut a[i * w..]);
                }
            }
            StreamOp::Add => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    let y = T::load(&c[i * w..]);
                    x.add(y).store(&mut a[i * w..]);
                }
            }
            StreamOp::Triad => {
                for i in 0..n {
                    let x = T::load(&b[i * w..]);
                    let y = T::load(&c[i * w..]);
                    x.add(q.mul(y)).store(&mut a[i * w..]);
                }
            }
        }
        return;
    }

    // Pattern-faithful path: visit vector elements in traversal order.
    let vw = cfg.vector_width.get() as usize;
    for vidx in IndexOrder::new(cfg) {
        let start = vidx as usize * vw;
        for lane in 0..vw {
            let i = (start + lane) * w;
            let x = T::load(&b[i..]);
            let val = match cfg.op {
                StreamOp::Copy => x,
                StreamOp::Scale => q.mul(x),
                StreamOp::Add => x.add(T::load(&c[i..])),
                StreamOp::Triad => x.add(q.mul(T::load(&c[i..]))),
            };
            val.store(&mut a[i..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, VectorWidth};

    fn bufs_i32(n: usize) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut b = vec![0u8; n * 4];
        let mut c = vec![0u8; n * 4];
        for i in 0..n {
            (i as i32 + 1).store(&mut b[i * 4..]);
            (2 * i as i32).store(&mut c[i * 4..]);
        }
        (vec![0u8; n * 4], b, c)
    }

    fn read_i32(buf: &[u8], i: usize) -> i32 {
        i32::load(&buf[i * 4..])
    }

    #[test]
    fn copy_i32() {
        let (mut a, b, c) = bufs_i32(100);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 100);
        execute(&cfg, &mut a, &b, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Scale, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), 3 * (i as i32 + 1));
        }
    }

    #[test]
    fn add_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Add, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), (i as i32 + 1) + 2 * i as i32);
        }
    }

    #[test]
    fn triad_i32() {
        let (mut a, b, c) = bufs_i32(10);
        let cfg = KernelConfig::baseline(StreamOp::Triad, 10);
        execute(&cfg, &mut a, &b, &c);
        for i in 0..10 {
            assert_eq!(read_i32(&a, i), (i as i32 + 1) + 3 * 2 * i as i32);
        }
    }

    #[test]
    fn triad_f64() {
        let n = 16;
        let mut b = vec![0u8; n * 8];
        let mut c = vec![0u8; n * 8];
        for i in 0..n {
            (i as f64).store(&mut b[i * 8..]);
            (0.5 * i as f64).store(&mut c[i * 8..]);
        }
        let mut a = vec![0u8; n * 8];
        let mut cfg = KernelConfig::baseline(StreamOp::Triad, n as u64);
        cfg.dtype = DataType::F64;
        cfg.q = 2.0;
        execute(&cfg, &mut a, &b, &c);
        for i in 0..n {
            let got = f64::load(&a[i * 8..]);
            assert_eq!(got, i as f64 + 2.0 * 0.5 * i as f64);
        }
    }

    #[test]
    fn strided_pattern_same_result_as_contiguous() {
        let (mut a1, b, c) = bufs_i32(64);
        let mut a2 = vec![0u8; 64 * 4];
        let cfg1 = KernelConfig::baseline(StreamOp::Triad, 64);
        let mut cfg2 = cfg1.clone();
        cfg2.pattern = AccessPattern::Strided { stride: 8 };
        execute(&cfg1, &mut a1, &b, &c);
        execute(&cfg2, &mut a2, &b, &c);
        assert_eq!(a1, a2, "pattern only changes order, not values");
    }

    #[test]
    fn colmajor_vectorized_same_result() {
        let (mut a1, b, c) = bufs_i32(256);
        let mut a2 = vec![0u8; 256 * 4];
        let cfg1 = KernelConfig::baseline(StreamOp::Scale, 256);
        let mut cfg2 = cfg1.clone();
        cfg2.vector_width = VectorWidth::new(4).unwrap();
        cfg2.pattern = AccessPattern::ColMajor { cols: Some(8) };
        execute(&cfg1, &mut a1, &b, &c);
        execute(&cfg2, &mut a2, &b, &c);
        assert_eq!(a1, a2);
    }

    #[test]
    fn int_overflow_wraps() {
        let n = 2;
        let mut b = vec![0u8; 8];
        i32::MAX.store(&mut b[0..]);
        1i32.store(&mut b[4..]);
        let mut a = vec![0u8; 8];
        let mut cfg = KernelConfig::baseline(StreamOp::Scale, n as u64);
        cfg.q = 2.0;
        execute(&cfg, &mut a, &b, &[]);
        assert_eq!(read_i32(&a, 0), i32::MAX.wrapping_mul(2));
        assert_eq!(read_i32(&a, 1), 2);
    }

    #[test]
    #[should_panic(expected = "destination buffer too small")]
    fn short_destination_panics() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 100);
        let mut a = vec![0u8; 10];
        let b = vec![0u8; 400];
        execute(&cfg, &mut a, &b, &[]);
    }

    #[test]
    fn copy_scale_ignore_c_buffer() {
        let (mut a, b, _) = bufs_i32(8);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 8);
        execute(&cfg, &mut a, &b, &[]); // empty c is fine
        assert_eq!(a, b);
    }
}
