//! The bound execution plan handed to device backends.

use crate::ir::KernelConfig;

/// A [`KernelConfig`] bound to concrete device buffer addresses — all a
/// device timing model needs to generate the memory-access stream, and
/// all a synthesis model needs to "compile" the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    /// The tuning-space point being executed.
    pub cfg: KernelConfig,
    /// Device address of the destination array `a`.
    pub base_a: u64,
    /// Device address of source array `b`.
    pub base_b: u64,
    /// Device address of source array `c` (ignored for COPY/SCALE).
    pub base_c: u64,
}

impl ExecPlan {
    /// Bind a configuration to buffer base addresses.
    pub fn new(cfg: KernelConfig, base_a: u64, base_b: u64, base_c: u64) -> Self {
        ExecPlan {
            cfg,
            base_a,
            base_b,
            base_c,
        }
    }

    /// Do the three arrays overlap? (A programming error the runtime
    /// rejects, mirroring `CL_MEM_COPY_OVERLAP`.)
    pub fn overlapping(&self) -> bool {
        let len = self.cfg.array_bytes();
        let spans = if self.cfg.op.uses_c() {
            vec![self.base_a, self.base_b, self.base_c]
        } else {
            vec![self.base_a, self.base_b]
        };
        for (i, &x) in spans.iter().enumerate() {
            for &y in &spans[i + 1..] {
                if x < y + len && y < x + len {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::StreamOp;

    #[test]
    fn disjoint_buffers_do_not_overlap() {
        let cfg = KernelConfig::baseline(StreamOp::Add, 1024); // 4 KiB arrays
        let p = ExecPlan::new(cfg, 0, 4096, 8192);
        assert!(!p.overlapping());
    }

    #[test]
    fn overlap_detected() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let p = ExecPlan::new(cfg, 0, 2048, 1 << 30);
        assert!(p.overlapping());
    }

    #[test]
    fn c_ignored_for_two_array_kernels() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        // c overlaps a, but COPY never touches c.
        let p = ExecPlan::new(cfg, 0, 4096, 0);
        assert!(!p.overlapping());
    }
}
