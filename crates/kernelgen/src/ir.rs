//! The MP-STREAM tuning-space types.
//!
//! A [`KernelConfig`] is one point in the design space the paper explores:
//! which STREAM kernel, over which data type and array size, with which
//! vectorization, access pattern, loop management and vendor options.

/// The workload-family kernels: the paper's four STREAM ops (§II) plus
/// the HPCChallenge-style extensions (GUPS random access, PTRANS
/// transpose, DGEMM-lite) from the parameterized-HPCC line of work.
///
/// `q` is a scalar; `a` is the destination, `b` and `c` the sources:
///
/// | kernel | operation                      | buffers | bytes counted |
/// |--------|--------------------------------|---------|---------------|
/// | COPY   | `a[i] = b[i]`                  | 2       | 2·n·w         |
/// | SCALE  | `a[i] = q*b[i]`                | 2       | 2·n·w         |
/// | ADD    | `a[i] = b[i] + c[i]`           | 3       | 3·n·w         |
/// | TRIAD  | `a[i] = b[i]+q*c[i]`           | 3       | 3·n·w         |
/// | GUPS   | `a[h(i)] ^= b[i]`              | 2       | 3·n·w         |
/// | PTRANS | `a[c*R+r] = b[r*C+c]`          | 2       | 2·n·w         |
/// | DGEMM  | `a[r,c] = Σ_k b[r,k]·c[k,c]`   | 3       | 3·n·w         |
///
/// GUPS counts three accesses per update (read `b`, read-modify-write
/// `a[h]`), as HPCC's RandomAccess does. DGEMM-lite counts each matrix
/// element once (STREAM-style "useful data"), so its GB/s stays a
/// bandwidth figure while the compute term shows up as a roofline cap
/// in the target cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    Copy,
    Scale,
    Add,
    Triad,
    /// GUPS: a seeded XOR-update scatter (`a[h(i)] ^= b[i]` with a
    /// SplitMix64-finalizer hash). Latency- and TLB-hostile.
    RandomAccess,
    /// PTRANS: a strided matrix transpose over the configuration's 2D
    /// view (`matrix_shape()`), interacting with `ColMajor { cols }`.
    Ptrans,
    /// DGEMM-lite: a blocked integer matrix-multiply whose inner
    /// dimension is the 2D view's column count — compute-dense, so the
    /// targets' compute/bandwidth roofline term becomes visible.
    DgemmLite,
}

/// Back-compatible alias: the tuning-space op started as the four
/// STREAM kernels and kept the name when it grew into a family.
pub type StreamOp = Op;

impl Op {
    /// The paper's four STREAM kernels in paper order. Kept at four —
    /// every STREAM-shaped sweep, figure, and test iterates this; the
    /// full family is [`Op::FAMILIES`].
    pub const ALL: [Op; 4] = [Op::Copy, Op::Scale, Op::Add, Op::Triad];

    /// The HPCC-style extension kernels.
    pub const HPCC: [Op; 3] = [Op::RandomAccess, Op::Ptrans, Op::DgemmLite];

    /// Every workload family: STREAM then HPCC.
    pub const FAMILIES: [Op; 7] = [
        Op::Copy,
        Op::Scale,
        Op::Add,
        Op::Triad,
        Op::RandomAccess,
        Op::Ptrans,
        Op::DgemmLite,
    ];

    /// Lower-case kernel name as used in reports and generated source.
    pub fn name(self) -> &'static str {
        match self {
            Op::Copy => "copy",
            Op::Scale => "scale",
            Op::Add => "add",
            Op::Triad => "triad",
            Op::RandomAccess => "gups",
            Op::Ptrans => "ptrans",
            Op::DgemmLite => "dgemm",
        }
    }

    /// Parse a kernel name as reported by [`Op::name`]. The error lists
    /// every valid name — CLI flags rely on this message.
    pub fn parse(name: &str) -> Result<Op, String> {
        Op::FAMILIES
            .into_iter()
            .find(|op| op.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = Op::FAMILIES.iter().map(|op| op.name()).collect();
                format!("unknown op '{name}' (valid: {})", valid.join(", "))
            })
    }

    /// Is this one of the four original STREAM kernels? Gates the fused
    /// closed-form fast path, which models only plain streaming.
    pub fn is_stream(self) -> bool {
        matches!(self, Op::Copy | Op::Scale | Op::Add | Op::Triad)
    }

    /// Workload-family label for report grouping: `"stream"` for the
    /// paper's four kernels, `"hpcc"` for the extension ops.
    pub fn family(self) -> &'static str {
        if self.is_stream() {
            "stream"
        } else {
            "hpcc"
        }
    }

    /// Number of buffer arguments the kernel touches (2 or 3).
    pub fn arrays(self) -> u64 {
        match self {
            Op::Copy | Op::Scale | Op::RandomAccess | Op::Ptrans => 2,
            Op::Add | Op::Triad | Op::DgemmLite => 3,
        }
    }

    /// Accesses counted per element for the bandwidth figure (the
    /// "bytes counted" column of the table above). Equals [`Op::arrays`]
    /// for the STREAM ops; GUPS counts its read-modify-write.
    pub fn counted_accesses(self) -> u64 {
        match self {
            Op::Copy | Op::Scale | Op::Ptrans => 2,
            Op::Add | Op::Triad | Op::DgemmLite => 3,
            Op::RandomAccess => 3,
        }
    }

    /// Does the kernel read array `c` as a second source?
    pub fn uses_c(self) -> bool {
        self.arrays() == 3
    }

    /// Does the kernel multiply by the scalar `q`?
    pub fn uses_q(self) -> bool {
        matches!(self, Op::Scale | Op::Triad)
    }

    /// Payload bytes moved by one invocation over `n_words` elements of
    /// `word_bytes` each (STREAM counting: counted accesses × n × word).
    pub fn bytes_moved(self, n_words: u64, word_bytes: u64) -> u64 {
        self.counted_accesses() * n_words * word_bytes
    }
}

/// Fixed seed of the GUPS hash — part of the benchmark definition, so
/// every layer (generated source, interpreter, host validation, access
/// stream) scatters to the same locations.
pub const GUPS_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The GUPS scatter index: a SplitMix64-style finalizer of `i` reduced
/// modulo the array length. Deterministic, uniform enough to defeat
/// caches and TLBs, and order-independent under XOR accumulation.
pub fn gups_index(i: u64, n_vectors: u64) -> u64 {
    let mut z = i.wrapping_add(GUPS_SEED);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % n_vectors.max(1)
}

/// A producer→consumer channel (AOCL) / pipe (SDAccel) splitting the
/// kernel into a load stage and a compute+store stage connected by an
/// on-chip FIFO of `depth` elements. Vendors disagree on legal depths:
/// AOCL accepts depth 0 (the compiler fuses the stages back together),
/// SDAccel requires a power-of-two depth and charges a second kernel
/// launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelSpec {
    /// FIFO capacity in vector elements.
    pub depth: u32,
}

/// Element data type (the paper supports integer and double).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer ("word size is 32 bits" in all figures).
    I32,
    /// IEEE-754 double, giving 64-bit coalesced accesses for COPY.
    F64,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn word_bytes(self) -> u64 {
        match self {
            DataType::I32 => 4,
            DataType::F64 => 8,
        }
    }

    /// OpenCL C scalar type name.
    pub fn cl_name(self) -> &'static str {
        match self {
            DataType::I32 => "int",
            DataType::F64 => "double",
        }
    }
}

/// Degree of vectorization (OpenCL vector data types, up to 16 words —
/// "translates to a memory controller on the FPGA that coalesces memory
/// accesses", §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorWidth(u32);

impl VectorWidth {
    /// The widths OpenCL vector types support.
    pub const ALLOWED: [u32; 5] = [1, 2, 4, 8, 16];

    /// Construct a vector width; `w` must be 1, 2, 4, 8 or 16.
    pub fn new(w: u32) -> Result<Self, String> {
        if Self::ALLOWED.contains(&w) {
            Ok(VectorWidth(w))
        } else {
            Err(format!(
                "vector width must be one of {:?}, got {w}",
                Self::ALLOWED
            ))
        }
    }

    /// The width in words.
    pub fn get(self) -> u32 {
        self.0
    }

    /// OpenCL type suffix: empty for width 1, the width otherwise.
    pub fn cl_suffix(self) -> String {
        if self.0 == 1 {
            String::new()
        } else {
            self.0.to_string()
        }
    }
}

impl Default for VectorWidth {
    fn default() -> Self {
        VectorWidth(1)
    }
}

/// Data access pattern (§III "Data access pattern").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Elements visited in address order.
    Contiguous,
    /// The paper's "strided" pattern: a row-major 2D array accessed in
    /// column-major order, so consecutive accesses jump by the row
    /// length. `rows × cols` must equal the array length in vector
    /// elements; `None` lets the runner pick a near-square factorization.
    ColMajor {
        /// Columns of the row-major matrix (= the fixed stride in vector
        /// elements), or `None` for near-square.
        cols: Option<u32>,
    },
    /// Generalized fixed stride with phase wrap: visits
    /// `p + k*stride` for `p in 0..stride`, `k in 0..n/stride`.
    Strided {
        /// Stride in vector elements (≥ 2).
        stride: u32,
    },
}

impl AccessPattern {
    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            AccessPattern::Contiguous => "contig".to_string(),
            AccessPattern::ColMajor { cols: None } => "colmajor".to_string(),
            AccessPattern::ColMajor { cols: Some(c) } => format!("colmajor{c}"),
            AccessPattern::Strided { stride } => format!("stride{stride}"),
        }
    }

    /// Is this the contiguous pattern?
    pub fn is_contiguous(self) -> bool {
        matches!(self, AccessPattern::Contiguous)
    }
}

/// Kernel loop management (§III): how the iteration space is expressed,
/// which on FPGAs changes the synthesized memory architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopMode {
    /// One work-item per (vector) element; the host launches
    /// `NDRange = n` work-items.
    NdRange,
    /// A single work-item containing one flat `for` loop.
    SingleWorkItemFlat,
    /// A single work-item looping over the 2D view in a nested fashion —
    /// the variant that surprisingly helps SDAccel (Fig. 3).
    SingleWorkItemNested,
}

impl LoopMode {
    /// All three modes, in the paper's order.
    pub const ALL: [LoopMode; 3] = [
        LoopMode::NdRange,
        LoopMode::SingleWorkItemFlat,
        LoopMode::SingleWorkItemNested,
    ];

    /// Label used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            LoopMode::NdRange => "ndrange-kernel",
            LoopMode::SingleWorkItemFlat => "kernel-loop-flat",
            LoopMode::SingleWorkItemNested => "kernel-loop-nested",
        }
    }
}

/// Altera/Intel AOCL-specific optimization attributes (§III, citing the
/// AOCL best-practices guide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AoclOpts {
    /// `__attribute__((num_simd_work_items(n)))`.
    pub num_simd_work_items: u32,
    /// `__attribute__((num_compute_units(n)))`.
    pub num_compute_units: u32,
}

impl Default for AoclOpts {
    fn default() -> Self {
        AoclOpts {
            num_simd_work_items: 1,
            num_compute_units: 1,
        }
    }
}

/// Xilinx SDAccel-specific optimization attributes (§III, citing the
/// SDAccel user guide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct XilinxOpts {
    /// `__attribute__((xcl_pipeline_loop))`.
    pub pipeline_loop: bool,
    /// `__attribute__((xcl_pipeline_workitems))`.
    pub pipeline_work_items: bool,
    /// `max_memory_ports`: give each pointer argument its own AXI port.
    pub max_memory_ports: bool,
    /// `memory_port_data_width(n)`: widen the AXI data port to `n` bits.
    pub memory_port_width_bits: Option<u32>,
}

/// Vendor-specific options attached to a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VendorOpts {
    /// No vendor-specific options (portable OpenCL).
    #[default]
    None,
    /// Altera/Intel AOCL attributes.
    Aocl(AoclOpts),
    /// Xilinx SDAccel attributes.
    Xilinx(XilinxOpts),
}

/// One point of the MP-STREAM tuning space.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Which STREAM kernel.
    pub op: StreamOp,
    /// Element type.
    pub dtype: DataType,
    /// Elements per array (scalar words, not vectors).
    pub n_words: u64,
    /// Degree of vectorization.
    pub vector_width: VectorWidth,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Loop management.
    pub loop_mode: LoopMode,
    /// Loop unroll factor (`opencl_unroll_hint`); 1 = no unrolling.
    pub unroll: u32,
    /// Work-group size used for NDRange launches.
    pub work_group_size: u32,
    /// Emit `reqd_work_group_size(X,1,1)` (recommended by some
    /// OpenCL-FPGA compilers).
    pub reqd_work_group_size: bool,
    /// Vendor-specific attributes.
    pub vendor: VendorOpts,
    /// Two-stage producer→consumer variant connected by an on-chip
    /// channel/pipe, or `None` for the plain single-stage kernel.
    pub channel: Option<ChannelSpec>,
    /// The scalar `q` used by SCALE and TRIAD.
    pub q: f64,
}

impl KernelConfig {
    /// A sensible portable default: contiguous scalar COPY over `n_words`
    /// 32-bit words, NDRange, no optimizations — the paper's baseline.
    pub fn baseline(op: StreamOp, n_words: u64) -> Self {
        KernelConfig {
            op,
            dtype: DataType::I32,
            n_words,
            vector_width: VectorWidth::default(),
            pattern: AccessPattern::Contiguous,
            loop_mode: LoopMode::NdRange,
            unroll: 1,
            work_group_size: 64,
            reqd_work_group_size: false,
            vendor: VendorOpts::None,
            channel: None,
            q: 3.0,
        }
    }

    /// Array size in bytes.
    pub fn array_bytes(&self) -> u64 {
        self.n_words * self.dtype.word_bytes()
    }

    /// Number of vector elements per array.
    pub fn n_vectors(&self) -> u64 {
        self.n_words / self.vector_width.get() as u64
    }

    /// Bytes of one vector element.
    pub fn vector_bytes(&self) -> u64 {
        self.dtype.word_bytes() * self.vector_width.get() as u64
    }

    /// Payload bytes one kernel invocation moves (STREAM counting).
    pub fn bytes_moved(&self) -> u64 {
        self.op.bytes_moved(self.n_words, self.dtype.word_bytes())
    }

    /// The 2D view used by the column-major pattern and the nested loop
    /// mode: returns `(rows, cols)` in vector elements. For `Contiguous`
    /// and `Strided` configurations this is the near-square view (used
    /// only by the nested loop); for `ColMajor` it honours `cols`.
    pub fn matrix_shape(&self) -> (u64, u64) {
        let n = self.n_vectors();
        let cols = match self.pattern {
            AccessPattern::ColMajor { cols: Some(c) } => c as u64,
            _ => near_square_cols(n),
        };
        (n / cols.max(1), cols.max(1))
    }
}

/// Largest divisor of `n` that is ≤ √n, as a column count — gives the
/// most square 2D factorization of a 1D length.
pub fn near_square_cols(n: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let root = (n as f64).sqrt() as u64;
    for c in (1..=root).rev() {
        if n.is_multiple_of(c) {
            return c;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_array_counts_match_stream() {
        assert_eq!(StreamOp::Copy.arrays(), 2);
        assert_eq!(StreamOp::Scale.arrays(), 2);
        assert_eq!(StreamOp::Add.arrays(), 3);
        assert_eq!(StreamOp::Triad.arrays(), 3);
    }

    #[test]
    fn bytes_moved_counts_like_stream() {
        // 1M doubles, triad: 3 * 8 MB.
        assert_eq!(StreamOp::Triad.bytes_moved(1 << 20, 8), 3 << 23);
    }

    #[test]
    fn vector_width_validation() {
        assert!(VectorWidth::new(1).is_ok());
        assert!(VectorWidth::new(16).is_ok());
        assert!(VectorWidth::new(3).is_err());
        assert!(VectorWidth::new(32).is_err());
        assert_eq!(VectorWidth::new(4).unwrap().cl_suffix(), "4");
        assert_eq!(VectorWidth::new(1).unwrap().cl_suffix(), "");
    }

    #[test]
    fn near_square_factorization() {
        assert_eq!(near_square_cols(1024), 32);
        assert_eq!(near_square_cols(1 << 21), 1024); // 2^21 -> 1024 x 2048
        assert_eq!(near_square_cols(7), 1); // prime falls back to 1 x n
        assert_eq!(near_square_cols(12), 3);
    }

    #[test]
    fn matrix_shape_covers_all_elements() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 20);
        cfg.pattern = AccessPattern::ColMajor { cols: Some(256) };
        let (r, c) = cfg.matrix_shape();
        assert_eq!(r * c, 1 << 20);
        assert_eq!(c, 256);
    }

    #[test]
    fn op_family_accounting() {
        assert_eq!(Op::RandomAccess.arrays(), 2);
        assert_eq!(Op::RandomAccess.counted_accesses(), 3);
        assert!(!Op::RandomAccess.uses_c());
        assert_eq!(Op::Ptrans.arrays(), 2);
        assert_eq!(Op::Ptrans.counted_accesses(), 2);
        assert_eq!(Op::DgemmLite.arrays(), 3);
        assert!(Op::DgemmLite.uses_c());
        for op in Op::ALL {
            assert!(op.is_stream(), "{op:?}");
            assert_eq!(op.counted_accesses(), op.arrays());
        }
        for op in Op::HPCC {
            assert!(!op.is_stream(), "{op:?}");
            assert!(!op.uses_q(), "{op:?}");
        }
        assert_eq!(Op::FAMILIES.len(), Op::ALL.len() + Op::HPCC.len());
    }

    #[test]
    fn op_parse_round_trips_and_lists_valid_names() {
        for op in Op::FAMILIES {
            assert_eq!(Op::parse(op.name()), Ok(op));
        }
        let err = Op::parse("fft").unwrap_err();
        assert!(err.contains("unknown op 'fft'"), "{err}");
        for name in ["copy", "scale", "add", "triad", "gups", "ptrans", "dgemm"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn gups_index_is_deterministic_and_in_bounds() {
        let n = 4096;
        let a: Vec<u64> = (0..64).map(|i| gups_index(i, n)).collect();
        let b: Vec<u64> = (0..64).map(|i| gups_index(i, n)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&h| h < n));
        // The scatter actually scatters: consecutive i land far apart.
        let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
        assert!(distinct.len() > 48, "hash collapses: {distinct:?}");
        assert_eq!(gups_index(7, 0), 0, "degenerate length clamps");
    }

    #[test]
    fn baseline_is_paper_baseline() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        assert_eq!(cfg.dtype.word_bytes(), 4);
        assert_eq!(cfg.vector_width.get(), 1);
        assert!(cfg.pattern.is_contiguous());
        assert_eq!(cfg.array_bytes(), 4096);
    }

    #[test]
    fn vector_accounting() {
        let mut cfg = KernelConfig::baseline(StreamOp::Add, 1 << 10);
        cfg.vector_width = VectorWidth::new(8).unwrap();
        assert_eq!(cfg.n_vectors(), 128);
        assert_eq!(cfg.vector_bytes(), 32);
        assert_eq!(cfg.bytes_moved(), 3 * 4096);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(LoopMode::NdRange.label(), "ndrange-kernel");
        assert_eq!(AccessPattern::Contiguous.label(), "contig");
        assert_eq!(AccessPattern::Strided { stride: 2 }.label(), "stride2");
        assert_eq!(StreamOp::Triad.name(), "triad");
    }
}
