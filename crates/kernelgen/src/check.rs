//! A small OpenCL-C front end: tokenizer + structural checker.
//!
//! The vendor compilers are the first thing that touches MP-STREAM's
//! generated kernels; this module stands in for their front end so the
//! code generator has a real verification story instead of substring
//! tests. It tokenizes OpenCL-C, checks bracket structure, extracts the
//! kernel signature (name, argument qualifiers and types) and verifies
//! that every identifier the kernel body uses is either an argument, a
//! locally declared variable, a `#define`d constant or a known OpenCL
//! builtin. All generated sources must pass; seeded corruptions must
//! fail (both are tested).

use std::collections::HashSet;
use std::fmt;

/// Lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer or floating literal (value kept as text).
    Number(String),
    /// String literal (contents).
    Str(String),
    /// Single punctuation/operator character: `{ } ( ) [ ] ; , . + - * /
    /// % = < > ! & | ^ ~ ? :` (multi-char operators arrive as chars).
    Punct(char),
    /// Preprocessor directive: the whole line after `#`.
    Directive(String),
}

/// A lexing/checking failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CheckError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, CheckError> {
    Err(CheckError {
        offset,
        message: message.into(),
    })
}

/// Tokenize OpenCL-C source. Comments (`//`, `/* */`) are skipped;
/// preprocessor lines become [`Token::Directive`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, CheckError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                let start = i + 1;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                out.push(Token::Directive(src[start..i].trim().to_string()));
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return err(start, "unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let s0 = i;
                while i < n && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if i >= n {
                    return err(start, "unterminated string literal");
                }
                out.push(Token::Str(src[s0..i].to_string()));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let s0 = i;
                while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(src[s0..i].to_string()));
            }
            c if c.is_ascii_digit() => {
                let s0 = i;
                while i < n
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'.'
                        || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[s0..i];
                // Accept C numeric suffixes (ul, f, etc.) but nothing
                // that looks like a malformed identifier glued on.
                let ok = text.chars().all(|ch| {
                    ch.is_ascii_digit()
                        || ch == '.'
                        || matches!(
                            ch,
                            'u' | 'l' | 'U' | 'L' | 'f' | 'F' | 'e' | 'E' | 'x' | 'X'
                        )
                        || ch.is_ascii_hexdigit()
                });
                if !ok {
                    return err(s0, format!("malformed number '{text}'"));
                }
                out.push(Token::Number(text.to_string()));
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '.' | '+' | '-' | '*' | '/' | '%'
            | '=' | '<' | '>' | '!' | '&' | '|' | '^' | '~' | '?' | ':' => {
                out.push(Token::Punct(c));
                i += 1;
            }
            other => return err(i, format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

/// Check that `{}`, `()` and `[]` nest properly.
pub fn check_brackets(tokens: &[Token]) -> Result<(), CheckError> {
    let mut stack: Vec<char> = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if let Token::Punct(c) = t {
            match c {
                '{' | '(' | '[' => stack.push(*c),
                '}' | ')' | ']' => {
                    let want = match c {
                        '}' => '{',
                        ')' => '(',
                        _ => '[',
                    };
                    if stack.pop() != Some(want) {
                        return err(idx, format!("mismatched '{c}'"));
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(open) = stack.pop() {
        return err(tokens.len(), format!("unclosed '{open}'"));
    }
    Ok(())
}

/// One kernel argument as parsed from the signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelArg {
    /// Address-space qualifier (`__global`, none, ...).
    pub qualifier: Option<String>,
    /// Is the pointee `const`?
    pub is_const: bool,
    /// Base type (`int`, `double16`, ...).
    pub ty: String,
    /// Is it a pointer argument?
    pub is_pointer: bool,
    /// Argument name.
    pub name: String,
}

/// Parsed kernel signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSignature {
    /// Function name.
    pub name: String,
    /// Arguments in order.
    pub args: Vec<KernelArg>,
}

/// Extract the signature of the (single) `__kernel` function.
pub fn kernel_signature(tokens: &[Token]) -> Result<KernelSignature, CheckError> {
    let kpos = tokens
        .iter()
        .position(|t| matches!(t, Token::Ident(s) if s == "__kernel"))
        .ok_or(CheckError {
            offset: 0,
            message: "no __kernel function".into(),
        })?;
    // __kernel void NAME ( args )
    let name = match tokens.get(kpos + 2) {
        Some(Token::Ident(s)) => s.clone(),
        _ => return err(kpos, "expected kernel name after '__kernel void'"),
    };
    if !matches!(tokens.get(kpos + 1), Some(Token::Ident(v)) if v == "void") {
        return err(kpos, "kernel must return void");
    }
    if !matches!(tokens.get(kpos + 3), Some(Token::Punct('('))) {
        return err(kpos, "expected '(' after kernel name");
    }

    // Split the parenthesized argument list on top-level commas.
    let mut args = Vec::new();
    let mut depth = 1;
    let mut current: Vec<&Token> = Vec::new();
    let mut idx = kpos + 4;
    loop {
        let t = tokens.get(idx).ok_or(CheckError {
            offset: idx,
            message: "unterminated argument list".into(),
        })?;
        match t {
            Token::Punct('(') => depth += 1,
            Token::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        args.push(parse_arg(&current, idx)?);
                    }
                    break;
                }
            }
            Token::Punct(',') if depth == 1 => {
                args.push(parse_arg(&current, idx)?);
                current.clear();
                idx += 1;
                continue;
            }
            _ => {}
        }
        current.push(t);
        idx += 1;
    }
    Ok(KernelSignature { name, args })
}

fn parse_arg(tokens: &[&Token], at: usize) -> Result<KernelArg, CheckError> {
    let mut qualifier = None;
    let mut is_const = false;
    let mut ty = None;
    let mut is_pointer = false;
    let mut name = None;
    for t in tokens {
        match t {
            Token::Ident(s) if s.starts_with("__") => qualifier = Some(s.clone()),
            Token::Ident(s) if s == "const" => is_const = true,
            Token::Ident(s) if s == "restrict" => {}
            Token::Ident(s) if ty.is_none() => ty = Some(s.clone()),
            Token::Ident(s) => name = Some(s.clone()),
            Token::Punct('*') => is_pointer = true,
            _ => return err(at, "unexpected token in argument"),
        }
    }
    Ok(KernelArg {
        qualifier,
        is_const,
        ty: ty.ok_or(CheckError {
            offset: at,
            message: "argument missing type".into(),
        })?,
        is_pointer,
        name: name.ok_or(CheckError {
            offset: at,
            message: "argument missing name".into(),
        })?,
    })
}

/// OpenCL-C builtins and keywords the generated kernels may reference.
fn known_builtins() -> HashSet<&'static str> {
    [
        "get_global_id",
        "get_local_id",
        "get_group_id",
        "get_global_size",
        "get_local_size",
        "size_t",
        "void",
        "int",
        "uint",
        "long",
        "ulong",
        "float",
        "double",
        "char",
        "uchar",
        "short",
        "ushort",
        "bool",
        "for",
        "while",
        "if",
        "else",
        "return",
        "const",
        "restrict",
        "__kernel",
        "__global",
        "__local",
        "__constant",
        "__private",
        "__attribute__",
        "opencl_unroll_hint",
        "reqd_work_group_size",
        "num_simd_work_items",
        "num_compute_units",
        "xcl_pipeline_loop",
        "xcl_pipeline_workitems",
        // Channel/pipe spellings used by the two-stage variants.
        "channel",
        "pipe",
        "depth",
        "xcl_reqd_pipe_depth",
        "write_channel_intel",
        "read_channel_intel",
        "write_pipe",
        "read_pipe",
    ]
    .into_iter()
    .collect()
}

fn is_type_name(s: &str) -> bool {
    let base = s.trim_end_matches(|c: char| c.is_ascii_digit());
    matches!(
        base,
        "int"
            | "uint"
            | "long"
            | "ulong"
            | "float"
            | "double"
            | "char"
            | "uchar"
            | "short"
            | "ushort"
            | "size_t"
            | "bool"
            | "void"
    )
}

/// Full structural check of a generated kernel: tokenizes, verifies
/// bracket nesting, extracts the signature, and confirms every
/// identifier in the body is an argument, a `#define`, a local
/// declaration or a builtin. Returns the signature on success.
pub fn check_source(src: &str) -> Result<KernelSignature, CheckError> {
    let tokens = tokenize(src)?;
    check_brackets(&tokens)?;
    let sig = kernel_signature(&tokens)?;

    let mut known: HashSet<String> = known_builtins().into_iter().map(String::from).collect();
    for a in &sig.args {
        known.insert(a.name.clone());
        known.insert(a.ty.clone());
    }
    for t in &tokens {
        if let Token::Directive(d) = t {
            if let Some(rest) = d.strip_prefix("define") {
                if let Some(name) = rest.split_whitespace().next() {
                    known.insert(name.to_string());
                }
            }
        }
    }

    // Walk the whole token stream: any `TYPE ident` sequence declares
    // ident. Starting before the first body also picks up file-scope
    // declarations (the channel/pipe object of two-stage variants) and
    // the second kernel of a producer→consumer pair.
    tokens
        .iter()
        .position(|t| matches!(t, Token::Punct('{')))
        .ok_or(CheckError {
            offset: 0,
            message: "kernel has no body".into(),
        })?;
    let mut prev_was_type = false;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            Token::Ident(s) if is_type_name(s) => prev_was_type = true,
            Token::Ident(s) => {
                if prev_was_type {
                    known.insert(s.clone());
                } else if !known.contains(s.as_str()) {
                    return err(idx, format!("undefined identifier '{s}'"));
                }
                prev_was_type = false;
            }
            _ => prev_was_type = false,
        }
    }
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{
        AccessPattern, AoclOpts, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts,
    };
    use crate::source::generate_source;

    #[test]
    fn tokenizes_the_basics() {
        let toks = tokenize("int x = 42; // comment\n/* block */ y(x);").expect("lex ok");
        assert_eq!(toks[0], Token::Ident("int".into()));
        assert_eq!(toks[2], Token::Punct('='));
        assert_eq!(toks[3], Token::Number("42".into()));
        assert!(toks
            .iter()
            .all(|t| !matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn rejects_unterminated_comment_and_string() {
        assert!(tokenize("/* oops").is_err());
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("int €;").is_err());
    }

    #[test]
    fn bracket_mismatches_are_caught() {
        let t = tokenize("void f() { (a[1)] }").expect("lex ok");
        assert!(check_brackets(&t).is_err());
        let t = tokenize("void f() { a[1]; }").expect("lex ok");
        assert!(check_brackets(&t).is_ok());
    }

    #[test]
    fn extracts_triad_signature() {
        let cfg = KernelConfig::baseline(StreamOp::Triad, 1 << 12);
        let sig = check_source(&generate_source(&cfg)).expect("valid kernel");
        assert_eq!(sig.name, "mp_triad");
        assert_eq!(sig.args.len(), 4);
        assert_eq!(sig.args[0].name, "b");
        assert_eq!(sig.args[0].qualifier.as_deref(), Some("__global"));
        assert!(sig.args[0].is_const && sig.args[0].is_pointer);
        assert_eq!(sig.args[2].name, "a");
        assert!(!sig.args[2].is_const);
        assert_eq!(sig.args[3].name, "q");
        assert!(!sig.args[3].is_pointer);
    }

    #[test]
    fn every_generated_variant_passes_the_checker() {
        for op in StreamOp::ALL {
            for mode in LoopMode::ALL {
                for pattern in [
                    AccessPattern::Contiguous,
                    AccessPattern::ColMajor { cols: None },
                    AccessPattern::Strided { stride: 4 },
                ] {
                    for w in [1u32, 4, 16] {
                        for unroll in [1u32, 8] {
                            let mut cfg = KernelConfig::baseline(op, 1 << 14);
                            cfg.loop_mode = mode;
                            cfg.pattern = pattern;
                            cfg.vector_width = VectorWidth::new(w).expect("allowed");
                            cfg.unroll = unroll;
                            cfg.reqd_work_group_size = true;
                            let src = generate_source(&cfg);
                            let sig = check_source(&src).unwrap_or_else(|e| {
                                panic!("{op:?}/{mode:?}/{pattern:?}: {e}\n{src}")
                            });
                            assert_eq!(sig.name, format!("mp_{}", op.name()));
                            assert_eq!(sig.args.len() as u64, op.arrays() + op.uses_q() as u64);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn vendor_attributes_pass_the_checker() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 12);
        cfg.reqd_work_group_size = true;
        cfg.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 4,
            num_compute_units: 2,
        });
        assert!(check_source(&generate_source(&cfg)).is_ok());
    }

    #[test]
    fn corrupted_sources_fail() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 12);
        let good = generate_source(&cfg);
        // Remove a closing brace.
        let truncated = good.rsplitn(2, '}').last().expect("split").to_string();
        assert!(check_source(&truncated).is_err(), "missing brace must fail");
        // Reference an undefined identifier.
        let undefined = good.replace("b[gid]", "bogus_array[gid]");
        let e = check_source(&undefined).unwrap_err();
        assert!(e.message.contains("bogus_array"), "{e}");
        // Break the signature.
        let no_kernel = good.replace("__kernel", "__colonel");
        assert!(check_source(&no_kernel).is_err());
    }

    #[test]
    fn directives_define_constants() {
        let src = "#define N 10ul\n__kernel void k(__global int* restrict a)\n{\n    for (size_t i = 0; i < N; ++i) { a[i] = 0; }\n}\n";
        assert!(check_source(src).is_ok());
    }
}
