//! OpenCL host-program generation.
//!
//! MP-STREAM ships a C host program that sets up the platform, builds
//! the generated kernel, runs it `NTIMES` and reports bandwidth. This
//! module emits that program for any tuning point — the C-source twin of
//! what `mpstream_core::Runner` does natively — so a configuration
//! explored in simulation can be carried to real hardware unchanged.
//! The emitted text is self-contained C99 over the OpenCL 1.2 API.

use crate::ir::{DataType, KernelConfig, LoopMode};
use crate::source::generate_source;
use std::fmt::Write as _;

/// Options for host-program generation.
#[derive(Debug, Clone)]
pub struct HostOptions {
    /// Substring to match when picking the OpenCL platform (e.g.
    /// `"Altera"`); empty = first platform.
    pub platform_filter: String,
    /// Timed repetitions (`NTIMES`).
    pub ntimes: u32,
    /// Load the kernel from an `.aocx`/`.xclbin` binary instead of
    /// building from source (the FPGA flows require this).
    pub binary_kernel: bool,
}

impl Default for HostOptions {
    fn default() -> Self {
        HostOptions {
            platform_filter: String::new(),
            ntimes: 10,
            binary_kernel: false,
        }
    }
}

/// Generate the complete C host program for `cfg`.
pub fn generate_host_program(cfg: &KernelConfig, opts: &HostOptions) -> String {
    let mut s = String::with_capacity(8192);
    let ty = cfg.dtype.cl_name();
    let n = cfg.n_words;
    let n_vec = cfg.n_vectors();
    let arrays = cfg.op.arrays();
    let kernel_name = format!("mp_{}", cfg.op.name());
    let global = match cfg.loop_mode {
        LoopMode::NdRange => n_vec,
        _ => 1,
    };
    let local = match cfg.loop_mode {
        LoopMode::NdRange => cfg.work_group_size as u64,
        _ => 1,
    };

    let _ = writeln!(
        s,
        "/* MP-STREAM host program — generated for: {kernel_name},"
    );
    let _ = writeln!(
        s,
        " * {} x {ty}, vec{}, {}, {} */",
        n,
        cfg.vector_width.get(),
        cfg.pattern.label(),
        cfg.loop_mode.label()
    );
    s.push_str(HEADER);
    let _ = writeln!(s, "#define N_WORDS {n}ul");
    let _ = writeln!(s, "#define NTIMES {}", opts.ntimes.max(1));
    let _ = writeln!(
        s,
        "#define BYTES_MOVED ((double)N_WORDS * sizeof({ty}) * {arrays}.0)"
    );
    let _ = writeln!(
        s,
        "static const char *PLATFORM_FILTER = \"{}\";",
        opts.platform_filter
    );
    s.push('\n');

    if opts.binary_kernel {
        s.push_str("/* Kernel is loaded from a precompiled binary (FPGA flow). */\n");
        s.push_str("static unsigned char *load_binary(const char *path, size_t *len);\n\n");
    } else {
        s.push_str("static const char *KERNEL_SOURCE =\n");
        for line in generate_source(cfg).lines() {
            let escaped = line.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(s, "    \"{escaped}\\n\"");
        }
        s.push_str("    ;\n\n");
    }

    s.push_str("int main(void) {\n");
    s.push_str(SETUP);
    if opts.binary_kernel {
        s.push_str(
            "    size_t bin_len = 0;\n\
             \x20   const unsigned char *bin = load_binary(\"mp_stream.aocx\", &bin_len);\n\
             \x20   cl_program program = clCreateProgramWithBinary(ctx, 1, &dev, &bin_len, &bin, NULL, &err);\n\
             \x20   CHECK(err);\n",
        );
    } else {
        s.push_str(
            "    cl_program program = clCreateProgramWithSource(ctx, 1, &KERNEL_SOURCE, NULL, &err);\n\
             \x20   CHECK(err);\n",
        );
    }
    s.push_str("    CHECK(clBuildProgram(program, 1, &dev, \"\", NULL, NULL));\n");
    let _ = writeln!(
        s,
        "    cl_kernel kernel = clCreateKernel(program, \"{kernel_name}\", &err);"
    );
    s.push_str("    CHECK(err);\n\n");

    // Buffers and arguments. Argument order matches source.rs: b, [c], a, [q].
    let _ = writeln!(s, "    const size_t bytes = N_WORDS * sizeof({ty});");
    s.push_str("    cl_mem buf_b = clCreateBuffer(ctx, CL_MEM_READ_ONLY, bytes, NULL, &err); CHECK(err);\n");
    if cfg.op.uses_c() {
        s.push_str("    cl_mem buf_c = clCreateBuffer(ctx, CL_MEM_READ_ONLY, bytes, NULL, &err); CHECK(err);\n");
    }
    s.push_str("    cl_mem buf_a = clCreateBuffer(ctx, CL_MEM_WRITE_ONLY, bytes, NULL, &err); CHECK(err);\n");
    let _ = writeln!(s, "    {ty} *host = malloc(bytes);");
    let _ = writeln!(
        s,
        "    for (size_t i = 0; i < N_WORDS; ++i) host[i] = ({ty})(i % 1021 + 1);"
    );
    s.push_str(
        "    CHECK(clEnqueueWriteBuffer(queue, buf_b, CL_TRUE, 0, bytes, host, 0, NULL, NULL));\n",
    );
    if cfg.op.uses_c() {
        let _ = writeln!(
            s,
            "    for (size_t i = 0; i < N_WORDS; ++i) host[i] = ({ty})(i % 511 * 2);"
        );
        s.push_str("    CHECK(clEnqueueWriteBuffer(queue, buf_c, CL_TRUE, 0, bytes, host, 0, NULL, NULL));\n");
    }
    s.push('\n');

    let mut arg = 0;
    let _ = writeln!(
        s,
        "    CHECK(clSetKernelArg(kernel, {arg}, sizeof(cl_mem), &buf_b));"
    );
    arg += 1;
    if cfg.op.uses_c() {
        let _ = writeln!(
            s,
            "    CHECK(clSetKernelArg(kernel, {arg}, sizeof(cl_mem), &buf_c));"
        );
        arg += 1;
    }
    let _ = writeln!(
        s,
        "    CHECK(clSetKernelArg(kernel, {arg}, sizeof(cl_mem), &buf_a));"
    );
    arg += 1;
    if cfg.op.uses_q() {
        let q = match cfg.dtype {
            DataType::I32 => format!("    {ty} q = {};", cfg.q as i64),
            DataType::F64 => format!("    {ty} q = {};", cfg.q),
        };
        s.push_str(&q);
        s.push('\n');
        let _ = writeln!(
            s,
            "    CHECK(clSetKernelArg(kernel, {arg}, sizeof({ty}), &q));"
        );
    }
    s.push('\n');

    let _ = writeln!(s, "    size_t global = {global};");
    let _ = writeln!(s, "    size_t local = {local};");
    s.push_str(TIMING_LOOP);
    s.push_str("    printf(\"best rate: %.2f GB/s\\n\", BYTES_MOVED / best_ns);\n");
    s.push_str("    free(host);\n");
    s.push_str("    return 0;\n}\n");
    s
}

const HEADER: &str = r#"
#define CL_TARGET_OPENCL_VERSION 120
#include <CL/cl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define CHECK(e) do { cl_int _e = (e); if (_e != CL_SUCCESS) { \
    fprintf(stderr, "OpenCL error %d at %s:%d\n", _e, __FILE__, __LINE__); \
    exit(1); } } while (0)

"#;

const SETUP: &str = r#"    cl_int err;
    cl_uint nplat = 0;
    CHECK(clGetPlatformIDs(0, NULL, &nplat));
    cl_platform_id plats[16];
    CHECK(clGetPlatformIDs(nplat > 16 ? 16 : nplat, plats, NULL));
    cl_platform_id plat = plats[0];
    for (cl_uint i = 0; i < nplat && PLATFORM_FILTER[0]; ++i) {
        char name[256];
        CHECK(clGetPlatformInfo(plats[i], CL_PLATFORM_NAME, sizeof name, name, NULL));
        if (strstr(name, PLATFORM_FILTER)) { plat = plats[i]; break; }
    }
    cl_device_id dev;
    CHECK(clGetDeviceIDs(plat, CL_DEVICE_TYPE_ALL, 1, &dev, NULL));
    cl_context ctx = clCreateContext(NULL, 1, &dev, NULL, NULL, &err);
    CHECK(err);
    cl_command_queue queue =
        clCreateCommandQueue(ctx, dev, CL_QUEUE_PROFILING_ENABLE, &err);
    CHECK(err);

"#;

const TIMING_LOOP: &str = r#"    double best_ns = 1e30;
    for (int rep = 0; rep <= NTIMES; ++rep) {
        cl_event ev;
        CHECK(clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local, 0, NULL, &ev));
        CHECK(clWaitForEvents(1, &ev));
        cl_ulong t0, t1;
        CHECK(clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START, sizeof t0, &t0, NULL));
        CHECK(clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_END, sizeof t1, &t1, NULL));
        double ns = (double)(t1 - t0);
        if (rep > 0 && ns < best_ns) best_ns = ns;  /* rep 0 is warm-up */
        clReleaseEvent(ev);
    }
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{StreamOp, VectorWidth};

    fn braces_balanced(src: &str) -> bool {
        let mut depth = 0i64;
        for ch in src.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    }

    fn base(op: StreamOp) -> KernelConfig {
        KernelConfig::baseline(op, 1 << 16)
    }

    #[test]
    fn copy_host_program_is_complete() {
        let src = generate_host_program(&base(StreamOp::Copy), &HostOptions::default());
        assert!(braces_balanced(&src), "{src}");
        for needle in [
            "clGetPlatformIDs",
            "clCreateProgramWithSource",
            "clCreateKernel(program, \"mp_copy\"",
            "clEnqueueNDRangeKernel",
            "CL_PROFILING_COMMAND_START",
            "best rate",
        ] {
            assert!(src.contains(needle), "missing {needle}");
        }
        // Copy takes no q argument and no c buffer.
        assert!(!src.contains("buf_c"));
        assert!(src.matches("clSetKernelArg").count() == 2);
    }

    #[test]
    fn triad_host_program_binds_all_arguments() {
        let src = generate_host_program(&base(StreamOp::Triad), &HostOptions::default());
        assert!(src.contains("buf_c"));
        assert_eq!(src.matches("clSetKernelArg").count(), 4);
        assert!(src.contains("int q = 3"));
    }

    #[test]
    fn kernel_source_is_embedded_and_escaped() {
        let src = generate_host_program(&base(StreamOp::Scale), &HostOptions::default());
        assert!(src.contains("static const char *KERNEL_SOURCE"));
        assert!(src.contains("\"__kernel void mp_scale"));
        // No raw newlines inside the string literal lines.
        for line in src.lines().filter(|l| l.trim_start().starts_with('"')) {
            assert!(line.trim_end().ends_with("\\n\""), "{line}");
        }
    }

    #[test]
    fn fpga_flow_uses_binary_kernel() {
        let mut cfg = base(StreamOp::Copy);
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        let opts = HostOptions {
            platform_filter: "Altera".into(),
            ntimes: 5,
            binary_kernel: true,
        };
        let src = generate_host_program(&cfg, &opts);
        assert!(src.contains("clCreateProgramWithBinary"));
        assert!(!src.contains("KERNEL_SOURCE"));
        assert!(src.contains("PLATFORM_FILTER = \"Altera\""));
        assert!(src.contains("#define NTIMES 5"));
        assert!(
            src.contains("size_t global = 1;"),
            "single work-item launch"
        );
    }

    #[test]
    fn ndrange_launch_geometry_matches_config() {
        let mut cfg = base(StreamOp::Copy);
        cfg.vector_width = VectorWidth::new(4).expect("allowed");
        cfg.work_group_size = 128;
        let src = generate_host_program(&cfg, &HostOptions::default());
        assert!(src.contains(&format!("size_t global = {};", (1u64 << 16) / 4)));
        assert!(src.contains("size_t local = 128;"));
    }
}
