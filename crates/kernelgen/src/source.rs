//! OpenCL-C source generation.
//!
//! MP-STREAM's build scripts emit a specialized `.cl` kernel for every
//! tuning-space point ("Our benchmark's build scripts generate custom
//! kernel code inserting this optimizations as specified by command-line
//! flags", §III). This module is that generator: given a validated
//! [`KernelConfig`] it produces the exact OpenCL kernel text the
//! configuration denotes. The simulated devices execute the IR directly,
//! but the generated source is the ground truth for *what* is being
//! modelled — it is shown by the `codegen_inspect` example, embedded in
//! reports, and golden-tested here.

use crate::ir::{AccessPattern, DataType, KernelConfig, LoopMode, Op, StreamOp, VendorOpts};
use std::fmt::Write as _;

/// The SplitMix64-finalizer GUPS hash as OpenCL-C statements: computes
/// `h` from the loop index expression `i`. Constants mirror
/// [`crate::ir::gups_index`] so device and interpreter scatter alike.
fn gups_hash_lines(i: &str) -> Vec<String> {
    vec![
        format!("ulong h = (ulong)({i}) + 0x9E3779B97F4A7C15ul;"),
        "h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ul;".to_string(),
        "h = (h ^ (h >> 27)) * 0x94D049BB133111EBul;".to_string(),
        "h = (h ^ (h >> 31)) % N_VEC;".to_string(),
    ]
}

/// Generate the OpenCL-C source for one configuration.
///
/// The caller is expected to have run [`crate::validate::validate`];
/// generation itself never fails.
pub fn generate_source(cfg: &KernelConfig) -> String {
    let mut s = String::with_capacity(1024);
    header_comment(&mut s, cfg);

    if cfg.dtype == DataType::F64 {
        s.push_str("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n");
    }

    let n_vec = cfg.n_vectors();
    let (rows, cols) = cfg.matrix_shape();
    writeln!(s, "#define N_VEC {n_vec}ul").expect("write to String");
    if needs_matrix(cfg) {
        writeln!(s, "#define ROWS {rows}ul").expect("write");
        writeln!(s, "#define COLS {cols}ul").expect("write");
    }
    if let AccessPattern::Strided { stride } = cfg.pattern {
        writeln!(s, "#define STRIDE {stride}ul").expect("write");
    }
    s.push('\n');

    if let Some(ch) = cfg.channel {
        channeled_kernels(&mut s, cfg, ch.depth);
        return s;
    }

    attributes(&mut s, cfg);
    signature(&mut s, cfg);
    s.push_str("{\n");
    body(&mut s, cfg);
    s.push_str("}\n");
    s
}

fn needs_matrix(cfg: &KernelConfig) -> bool {
    matches!(cfg.pattern, AccessPattern::ColMajor { .. })
        || cfg.loop_mode == LoopMode::SingleWorkItemNested
        || matches!(cfg.op, Op::Ptrans | Op::DgemmLite)
}

fn header_comment(s: &mut String, cfg: &KernelConfig) {
    writeln!(
        s,
        "// MP-STREAM generated kernel: {} | {} | vec{} | {} | {} | unroll {}",
        cfg.op.name(),
        cfg.dtype.cl_name(),
        cfg.vector_width.get(),
        cfg.pattern.label(),
        cfg.loop_mode.label(),
        cfg.unroll
    )
    .expect("write");
    if let VendorOpts::Xilinx(x) = cfg.vendor {
        if x.max_memory_ports {
            s.push_str("// build: --max_memory_ports all\n");
        }
        if let Some(w) = x.memory_port_width_bits {
            writeln!(s, "// build: --memory_port_data_width all:{w}").expect("write");
        }
    }
}

fn attributes(s: &mut String, cfg: &KernelConfig) {
    if let VendorOpts::Aocl(a) = cfg.vendor {
        if a.num_simd_work_items > 1 {
            writeln!(
                s,
                "__attribute__((num_simd_work_items({})))",
                a.num_simd_work_items
            )
            .expect("write");
        }
        if a.num_compute_units > 1 {
            writeln!(
                s,
                "__attribute__((num_compute_units({})))",
                a.num_compute_units
            )
            .expect("write");
        }
    }
    if cfg.reqd_work_group_size {
        let wg = if cfg.loop_mode == LoopMode::NdRange {
            cfg.work_group_size
        } else {
            1
        };
        writeln!(s, "__attribute__((reqd_work_group_size({wg}, 1, 1)))").expect("write");
    }
}

/// The element type as it appears in pointer arguments: e.g. `int`,
/// `int16`, `double4`.
fn vec_ty(cfg: &KernelConfig) -> String {
    format!("{}{}", cfg.dtype.cl_name(), cfg.vector_width.cl_suffix())
}

fn signature(s: &mut String, cfg: &KernelConfig) {
    let ty = vec_ty(cfg);
    let mut args = vec![format!("__global const {ty}* restrict b")];
    if cfg.op.uses_c() {
        args.push(format!("__global const {ty}* restrict c"));
    }
    args.push(format!("__global {ty}* restrict a"));
    if cfg.op.uses_q() {
        args.push(format!("const {} q", cfg.dtype.cl_name()));
    }
    writeln!(s, "__kernel void mp_{}({})", cfg.op.name(), args.join(", ")).expect("write");
}

/// The per-iteration statement(s) for index expression `idx`. The
/// STREAM ops are one line; the HPCC ops expand to a short block
/// (hash, transpose target, or dot-product loop).
fn statement_lines(cfg: &KernelConfig, idx: &str) -> Vec<String> {
    match cfg.op {
        StreamOp::Copy => vec![format!("a[{idx}] = b[{idx}];")],
        StreamOp::Scale => vec![format!("a[{idx}] = q * b[{idx}];")],
        StreamOp::Add => vec![format!("a[{idx}] = b[{idx}] + c[{idx}];")],
        StreamOp::Triad => vec![format!("a[{idx}] = b[{idx}] + q * c[{idx}];")],
        Op::RandomAccess => {
            let mut lines = gups_hash_lines(idx);
            lines.push(format!("a[h] = a[h] ^ b[{idx}];"));
            lines
        }
        Op::Ptrans => vec![
            format!("const size_t tr = ({idx}) / COLS;"),
            format!("const size_t tc = ({idx}) % COLS;"),
            format!("a[tc * ROWS + tr] = b[{idx}];"),
        ],
        Op::DgemmLite => vec![
            format!("const size_t tr = ({idx}) / COLS;"),
            format!("const size_t tc = ({idx}) % COLS;"),
            "int acc = 0;".to_string(),
            "for (size_t kk = 0; kk < COLS; ++kk) {".to_string(),
            "    acc += b[tr * COLS + kk] * c[kk * COLS + tc];".to_string(),
            "}".to_string(),
            format!("a[{idx}] = acc;"),
        ],
    }
}

fn write_statement(s: &mut String, cfg: &KernelConfig, idx: &str, indent: &str) {
    for line in statement_lines(cfg, idx) {
        writeln!(s, "{indent}{line}").expect("write");
    }
}

fn unroll_hint(s: &mut String, cfg: &KernelConfig, indent: &str) {
    if cfg.unroll > 1 {
        writeln!(
            s,
            "{indent}__attribute__((opencl_unroll_hint({})))",
            cfg.unroll
        )
        .expect("write");
    }
}

fn pipeline_loop_hint(s: &mut String, cfg: &KernelConfig, indent: &str) {
    if let VendorOpts::Xilinx(x) = cfg.vendor {
        if x.pipeline_loop {
            writeln!(s, "{indent}__attribute__((xcl_pipeline_loop))").expect("write");
        }
    }
}

fn body(s: &mut String, cfg: &KernelConfig) {
    match cfg.loop_mode {
        LoopMode::NdRange => body_ndrange(s, cfg),
        LoopMode::SingleWorkItemFlat => body_flat(s, cfg),
        LoopMode::SingleWorkItemNested => body_nested(s, cfg),
    }
}

fn body_ndrange(s: &mut String, cfg: &KernelConfig) {
    if let VendorOpts::Xilinx(x) = cfg.vendor {
        if x.pipeline_work_items {
            s.push_str("    __attribute__((xcl_pipeline_workitems))\n");
        }
    }
    s.push_str("    const size_t gid = get_global_id(0);\n");
    let idx = match cfg.pattern {
        AccessPattern::Contiguous => "gid".to_string(),
        AccessPattern::ColMajor { .. } => {
            // Work-item gid walks the column-major order: column = gid /
            // ROWS, row = gid % ROWS.
            s.push_str("    const size_t col = gid / ROWS;\n");
            s.push_str("    const size_t row = gid % ROWS;\n");
            "row * COLS + col".to_string()
        }
        AccessPattern::Strided { .. } => {
            s.push_str("    const size_t phase = gid / (N_VEC / STRIDE);\n");
            s.push_str("    const size_t k = gid % (N_VEC / STRIDE);\n");
            "k * STRIDE + phase".to_string()
        }
    };
    write_statement(s, cfg, &idx, "    ");
}

fn body_flat(s: &mut String, cfg: &KernelConfig) {
    pipeline_loop_hint(s, cfg, "    ");
    unroll_hint(s, cfg, "    ");
    s.push_str("    for (size_t k = 0; k < N_VEC; ++k) {\n");
    let idx = match cfg.pattern {
        AccessPattern::Contiguous => "k".to_string(),
        AccessPattern::ColMajor { .. } => {
            s.push_str("        const size_t col = k / ROWS;\n");
            s.push_str("        const size_t row = k % ROWS;\n");
            "row * COLS + col".to_string()
        }
        AccessPattern::Strided { .. } => {
            s.push_str("        const size_t phase = k / (N_VEC / STRIDE);\n");
            s.push_str("        const size_t j = k % (N_VEC / STRIDE);\n");
            "j * STRIDE + phase".to_string()
        }
    };
    write_statement(s, cfg, &idx, "        ");
    s.push_str("    }\n");
}

fn body_nested(s: &mut String, cfg: &KernelConfig) {
    // The nested form iterates the 2D view; for the contiguous pattern
    // the inner loop walks a row (addresses sequential), for column-major
    // the inner loop walks a column.
    let (outer, inner, idx) = match cfg.pattern {
        AccessPattern::ColMajor { .. } => ("COLS", "ROWS", "j * COLS + i"),
        _ => ("ROWS", "COLS", "i * COLS + j"),
    };
    writeln!(s, "    for (size_t i = 0; i < {outer}; ++i) {{").expect("write");
    pipeline_loop_hint(s, cfg, "        ");
    unroll_hint(s, cfg, "        ");
    writeln!(s, "        for (size_t j = 0; j < {inner}; ++j) {{").expect("write");
    write_statement(s, cfg, idx, "            ");
    s.push_str("        }\n");
    s.push_str("    }\n");
}

/// The two-stage producer→consumer form: a load kernel streams `b`
/// through an on-chip FIFO, a store kernel computes and writes `a`
/// (keeping `c` and `q` as direct arguments). Both stages are single
/// work-item flat loops — the idiomatic shape for vendor channels.
/// AOCL spells the FIFO `channel` with `read/write_channel_intel`;
/// everything else gets the OpenCL 2.0 `pipe` spelling, which SDAccel
/// synthesizes with its power-of-two-depth restriction.
fn channeled_kernels(s: &mut String, cfg: &KernelConfig, depth: u32) {
    let ty = vec_ty(cfg);
    let aocl = matches!(cfg.vendor, VendorOpts::Aocl(_));
    if aocl {
        writeln!(s, "channel {ty} mp_ch __attribute__((depth({depth})));").expect("write");
    } else {
        writeln!(
            s,
            "pipe {ty} mp_ch __attribute__((xcl_reqd_pipe_depth({depth})));"
        )
        .expect("write");
    }
    s.push('\n');

    // Producer: loads of `b` in traversal order (DGEMM re-streams each
    // operand row once per output element).
    writeln!(
        s,
        "__kernel void mp_{}_load(__global const {ty}* restrict b)",
        cfg.op.name()
    )
    .expect("write");
    s.push_str("{\n");
    s.push_str("    for (size_t k = 0; k < N_VEC; ++k) {\n");
    let idx = flat_index(s, cfg, "        ");
    let send = |expr: &str| {
        if aocl {
            format!("write_channel_intel(mp_ch, {expr});")
        } else {
            format!("write_pipe(mp_ch, {expr});")
        }
    };
    if cfg.op == Op::DgemmLite {
        s.push_str("        const size_t tr = k / COLS;\n");
        s.push_str("        for (size_t kk = 0; kk < COLS; ++kk) {\n");
        writeln!(s, "            {}", send("b[tr * COLS + kk]")).expect("write");
        s.push_str("        }\n");
    } else {
        writeln!(s, "        {}", send(&format!("b[{idx}]"))).expect("write");
    }
    s.push_str("    }\n");
    s.push_str("}\n\n");

    // Consumer: reads the stream, computes, stores to `a`.
    let mut args = vec![format!("__global {ty}* restrict a")];
    if cfg.op.uses_c() {
        args.push(format!("__global const {ty}* restrict c"));
    }
    if cfg.op.uses_q() {
        args.push(format!("const {} q", cfg.dtype.cl_name()));
    }
    writeln!(
        s,
        "__kernel void mp_{}_store({})",
        cfg.op.name(),
        args.join(", ")
    )
    .expect("write");
    s.push_str("{\n");
    s.push_str("    for (size_t k = 0; k < N_VEC; ++k) {\n");
    let idx = flat_index(s, cfg, "        ");
    let recv = if aocl {
        format!("{ty} v = read_channel_intel(mp_ch);")
    } else {
        format!("{ty} v;\n        read_pipe(mp_ch, &v);")
    };
    if cfg.op != Op::DgemmLite {
        writeln!(s, "        {recv}").expect("write");
    }
    let lines: Vec<String> = match cfg.op {
        Op::Copy => vec![format!("a[{idx}] = v;")],
        Op::Scale => vec![format!("a[{idx}] = q * v;")],
        Op::Add => vec![format!("a[{idx}] = v + c[{idx}];")],
        Op::Triad => vec![format!("a[{idx}] = v + q * c[{idx}];")],
        Op::RandomAccess => {
            let mut lines = gups_hash_lines(&idx);
            lines.push("a[h] = a[h] ^ v;".to_string());
            lines
        }
        Op::Ptrans => vec![
            format!("const size_t tr = ({idx}) / COLS;"),
            format!("const size_t tc = ({idx}) % COLS;"),
            "a[tc * ROWS + tr] = v;".to_string(),
        ],
        Op::DgemmLite => vec![
            format!("const size_t tr = ({idx}) / COLS;"),
            format!("const size_t tc = ({idx}) % COLS;"),
            "int acc = 0;".to_string(),
            "for (size_t kk = 0; kk < COLS; ++kk) {".to_string(),
            format!("    {recv}"),
            "    acc += v * c[kk * COLS + tc];".to_string(),
            "}".to_string(),
            format!("a[{idx}] = acc;"),
        ],
    };
    for line in lines {
        writeln!(s, "        {line}").expect("write");
    }
    s.push_str("    }\n");
    s.push_str("}\n");
}

/// Emit the flat-loop index mapping for loop variable `k`, returning
/// the index expression (shared by both channeled stages).
fn flat_index(s: &mut String, cfg: &KernelConfig, indent: &str) -> String {
    match cfg.pattern {
        AccessPattern::Contiguous => "k".to_string(),
        AccessPattern::ColMajor { .. } => {
            writeln!(s, "{indent}const size_t col = k / ROWS;").expect("write");
            writeln!(s, "{indent}const size_t row = k % ROWS;").expect("write");
            "row * COLS + col".to_string()
        }
        AccessPattern::Strided { .. } => {
            writeln!(s, "{indent}const size_t phase = k / (N_VEC / STRIDE);").expect("write");
            writeln!(s, "{indent}const size_t j = k % (N_VEC / STRIDE);").expect("write");
            "j * STRIDE + phase".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AoclOpts, VectorWidth, XilinxOpts};
    use crate::validate::validate;

    fn base(op: StreamOp) -> KernelConfig {
        KernelConfig::baseline(op, 1 << 16)
    }

    fn braces_balanced(src: &str) -> bool {
        let mut depth = 0i64;
        for ch in src.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    }

    #[test]
    fn ndrange_copy_matches_paper_listing() {
        let src = generate_source(&base(StreamOp::Copy));
        assert!(src.contains("__kernel void mp_copy"));
        assert!(src.contains("get_global_id(0)"));
        assert!(src.contains("a[gid] = b[gid];"));
        assert!(!src.contains(" q "), "copy takes no scalar");
    }

    #[test]
    fn flat_loop_matches_paper_listing() {
        let mut cfg = base(StreamOp::Copy);
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        let src = generate_source(&cfg);
        assert!(src.contains("for (size_t k = 0; k < N_VEC; ++k)"));
        assert!(!src.contains("get_global_id"));
    }

    #[test]
    fn nested_loop_is_2d() {
        let mut cfg = base(StreamOp::Copy);
        cfg.loop_mode = LoopMode::SingleWorkItemNested;
        let src = generate_source(&cfg);
        assert!(src.contains("for (size_t i = 0; i < ROWS; ++i)"));
        assert!(src.contains("for (size_t j = 0; j < COLS; ++j)"));
        assert!(src.contains("a[i * COLS + j]"));
    }

    #[test]
    fn triad_signature_and_statement() {
        let src = generate_source(&base(StreamOp::Triad));
        assert!(src.contains("__global const int* restrict c"));
        assert!(src.contains("const int q"));
        assert!(src.contains("a[gid] = b[gid] + q * c[gid];"));
    }

    #[test]
    fn vector_types_emitted() {
        let mut cfg = base(StreamOp::Scale);
        cfg.vector_width = VectorWidth::new(16).unwrap();
        let src = generate_source(&cfg);
        assert!(src.contains("__global const int16* restrict b"));
        assert!(src.contains("__global int16* restrict a"));
    }

    #[test]
    fn double_enables_fp64_pragma() {
        let mut cfg = base(StreamOp::Copy);
        cfg.dtype = DataType::F64;
        let src = generate_source(&cfg);
        assert!(src.starts_with("// MP-STREAM"));
        assert!(src.contains("#pragma OPENCL EXTENSION cl_khr_fp64 : enable"));
        assert!(src.contains("double"));
    }

    #[test]
    fn unroll_hint_emitted() {
        let mut cfg = base(StreamOp::Copy);
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        cfg.unroll = 8;
        let src = generate_source(&cfg);
        assert!(src.contains("opencl_unroll_hint(8)"));
    }

    #[test]
    fn reqd_work_group_size_emitted() {
        let mut cfg = base(StreamOp::Copy);
        cfg.reqd_work_group_size = true;
        cfg.work_group_size = 256;
        cfg.n_words = 1 << 16;
        let src = generate_source(&cfg);
        assert!(src.contains("reqd_work_group_size(256, 1, 1)"));
    }

    #[test]
    fn aocl_attributes_emitted() {
        let mut cfg = base(StreamOp::Copy);
        cfg.reqd_work_group_size = true;
        cfg.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 4,
            num_compute_units: 2,
        });
        let src = generate_source(&cfg);
        assert!(src.contains("num_simd_work_items(4)"));
        assert!(src.contains("num_compute_units(2)"));
    }

    #[test]
    fn xilinx_attributes_emitted() {
        let mut cfg = base(StreamOp::Copy);
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        cfg.vendor = VendorOpts::Xilinx(XilinxOpts {
            pipeline_loop: true,
            max_memory_ports: true,
            memory_port_width_bits: Some(512),
            ..Default::default()
        });
        let src = generate_source(&cfg);
        assert!(src.contains("xcl_pipeline_loop"));
        assert!(src.contains("--max_memory_ports"));
        assert!(src.contains("--memory_port_data_width all:512"));
    }

    #[test]
    fn strided_index_math_emitted() {
        let mut cfg = base(StreamOp::Copy);
        cfg.pattern = AccessPattern::Strided { stride: 4 };
        let src = generate_source(&cfg);
        assert!(src.contains("#define STRIDE 4ul"));
        assert!(src.contains("k * STRIDE + phase"));
    }

    #[test]
    fn colmajor_nested_swaps_loops() {
        let mut cfg = base(StreamOp::Copy);
        cfg.pattern = AccessPattern::ColMajor { cols: Some(256) };
        cfg.loop_mode = LoopMode::SingleWorkItemNested;
        let src = generate_source(&cfg);
        assert!(src.contains("a[j * COLS + i]"));
    }

    #[test]
    fn all_valid_configs_generate_balanced_source() {
        for op in StreamOp::ALL {
            for mode in LoopMode::ALL {
                for pattern in [
                    AccessPattern::Contiguous,
                    AccessPattern::ColMajor { cols: None },
                    AccessPattern::Strided { stride: 2 },
                ] {
                    for w in VectorWidth::ALLOWED {
                        let mut cfg = base(op);
                        cfg.loop_mode = mode;
                        cfg.pattern = pattern;
                        cfg.vector_width = VectorWidth::new(w).expect("allowed");
                        validate(&cfg).expect("valid config");
                        let src = generate_source(&cfg);
                        assert!(braces_balanced(&src), "unbalanced: {src}");
                        assert!(src.contains("__kernel void"));
                    }
                }
            }
        }
    }
}
