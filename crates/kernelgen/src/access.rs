//! Lazy generation of a kernel's memory-access stream.
//!
//! Device timing models consume the stream of [`Access`]es a kernel
//! performs, in program order. The order is determined by the access
//! pattern (which elements, in which sequence) and by the *lane group* —
//! how many consecutive iterations execute in lock-step (a GPU warp, an
//! unrolled FPGA pipeline stage, or 1 for a plain sequential loop). Within
//! a lane group, accesses are emitted instruction-major (all lanes' reads
//! of `b`, then all lanes' reads of `c`, then all lanes' writes of `a`),
//! which is what makes per-warp coalescing work on the GPU model.

use crate::ir::{gups_index, AccessPattern, KernelConfig, Op};
use crate::plan::ExecPlan;

/// Memory access record re-exported from the simulator's request type.
pub use memaccess::{Access, AccessKind};

/// A minimal local definition to avoid a dependency cycle: `memsim`
/// depends on nothing, so we share the shape structurally. The types are
/// converted by the device layer.
pub mod memaccess {
    /// Read or write.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum AccessKind {
        /// Load.
        Read,
        /// Store.
        Write,
    }

    /// One memory access of a kernel, in device address space.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Access {
        /// Byte address.
        pub addr: u64,
        /// Bytes touched.
        pub bytes: u32,
        /// Direction.
        pub kind: AccessKind,
    }
}

/// Iterator over vector-element indices in traversal order.
#[derive(Debug, Clone)]
pub enum IndexOrder {
    /// 0, 1, 2, …
    Contiguous { next: u64, n: u64 },
    /// `k*stride + phase` for `phase` in 0..phases, `k` in 0..per_phase —
    /// covers both the column-major and the fixed-stride patterns.
    Phased {
        stride: u64,
        per_phase: u64,
        phases: u64,
        k: u64,
        phase: u64,
    },
}

impl IndexOrder {
    /// Traversal order for a configuration, in vector elements.
    pub fn new(cfg: &KernelConfig) -> Self {
        let n = cfg.n_vectors();
        match cfg.pattern {
            AccessPattern::Contiguous => IndexOrder::Contiguous { next: 0, n },
            AccessPattern::ColMajor { .. } => {
                let (rows, cols) = cfg.matrix_shape();
                IndexOrder::Phased {
                    stride: cols,
                    per_phase: rows,
                    phases: cols,
                    k: 0,
                    phase: 0,
                }
            }
            AccessPattern::Strided { stride } => IndexOrder::Phased {
                stride: stride as u64,
                per_phase: n / stride as u64,
                phases: stride as u64,
                k: 0,
                phase: 0,
            },
        }
    }
}

impl Iterator for IndexOrder {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match self {
            IndexOrder::Contiguous { next, n } => {
                if *next >= *n {
                    None
                } else {
                    let i = *next;
                    *next += 1;
                    Some(i)
                }
            }
            IndexOrder::Phased {
                stride,
                per_phase,
                phases,
                k,
                phase,
            } => {
                if *phase >= *phases {
                    return None;
                }
                let idx = *k * *stride + *phase;
                *k += 1;
                if *k == *per_phase {
                    *k = 0;
                    *phase += 1;
                }
                Some(idx)
            }
        }
    }
}

/// Total number of accesses the kernel performs (each of
/// [`KernelConfig::vector_bytes`] bytes).
///
/// STREAM ops touch each element of each array once. GUPS adds the
/// read-modify-write of `a` (3 per update); DGEMM-lite performs `K`
/// reads of each operand matrix plus one write per output element,
/// where `K` is the inner dimension (`matrix_shape().1`).
pub fn total_accesses(cfg: &KernelConfig) -> u64 {
    let n = cfg.n_vectors();
    match cfg.op {
        Op::RandomAccess => 3 * n,
        Op::DgemmLite => {
            let (_, k) = cfg.matrix_shape();
            n * (2 * k + 1)
        }
        _ => n * cfg.op.arrays(),
    }
}

/// The access stream of `plan`, emitted lane-group by lane-group.
///
/// `lane_group` is the number of consecutive traversal positions that
/// execute in lock-step (1 for sequential loops, the warp width for GPU
/// NDRange, the unroll factor for unrolled FPGA pipelines). The
/// HPCC-style ops are scalar-sequential (validation pins them to vector
/// width 1) and ignore `lane_group`: their per-iteration sequences
/// (hashed scatter, transpose write, dot-product reads) have no
/// lock-step structure to expose.
pub fn access_stream(plan: &ExecPlan, lane_group: u32) -> AccessStream {
    assert!(lane_group >= 1);
    let cfg = &plan.cfg;
    let inner = if cfg.op.is_stream() {
        Inner::Stream(StreamAccesses {
            order: IndexOrder::new(cfg),
            vector_bytes: cfg.vector_bytes() as u32,
            base_a: plan.base_a,
            base_b: plan.base_b,
            base_c: cfg.op.uses_c().then_some(plan.base_c),
            lane_group: lane_group as usize,
            group: Vec::with_capacity(lane_group as usize),
            cursor: 0,
            instr: 0,
        })
    } else {
        let (rows, cols) = cfg.matrix_shape();
        Inner::Hpcc(HpccAccesses {
            op: cfg.op,
            order: IndexOrder::new(cfg),
            vector_bytes: cfg.vector_bytes() as u32,
            base_a: plan.base_a,
            base_b: plan.base_b,
            base_c: plan.base_c,
            n: cfg.n_vectors(),
            rows,
            cols,
            cur: None,
            step: 0,
        })
    };
    AccessStream { inner }
}

/// Iterator returned by [`access_stream`].
#[derive(Debug, Clone)]
pub struct AccessStream {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stream(StreamAccesses),
    Hpcc(HpccAccesses),
}

/// The instruction-major lane-group machine for the STREAM ops.
#[derive(Debug, Clone)]
struct StreamAccesses {
    order: IndexOrder,
    vector_bytes: u32,
    base_a: u64,
    base_b: u64,
    base_c: Option<u64>,
    lane_group: usize,
    group: Vec<u64>,
    /// Lane within the current instruction.
    cursor: usize,
    /// 0 = read b, 1 = read c (if present), 2 = write a.
    instr: u8,
}

/// Per-iteration access generator for the HPCC-style ops. Each
/// traversal position `i` (drawn from the configuration's
/// [`IndexOrder`]) expands to a fixed per-op sequence:
///
/// - GUPS: read `b[i]`, read `a[h(i)]`, write `a[h(i)]`.
/// - PTRANS (`i = r*cols + c`): read `b[i]`, write `a[c*rows + r]`.
/// - DGEMM-lite (`i = r*cols + c`, inner dim `K = cols`): reads
///   `b[r*cols + k]` for `k in 0..K`, reads `c[k*cols + c]` for
///   `k in 0..K`, then writes `a[i]`.
#[derive(Debug, Clone)]
struct HpccAccesses {
    op: Op,
    order: IndexOrder,
    vector_bytes: u32,
    base_a: u64,
    base_b: u64,
    base_c: u64,
    n: u64,
    rows: u64,
    cols: u64,
    /// Current traversal position, or `None` when the next one must be
    /// drawn from `order`.
    cur: Option<u64>,
    /// Position within the current iteration's access sequence.
    step: u64,
}

impl HpccAccesses {
    fn accesses_per_iter(&self) -> u64 {
        match self.op {
            Op::RandomAccess => 3,
            Op::Ptrans => 2,
            Op::DgemmLite => 2 * self.cols + 1,
            _ => unreachable!("stream ops use StreamAccesses"),
        }
    }
}

impl Iterator for HpccAccesses {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let i = match self.cur {
            Some(i) => i,
            None => {
                let i = self.order.next()?;
                self.cur = Some(i);
                self.step = 0;
                i
            }
        };
        let w = self.vector_bytes as u64;
        let bytes = self.vector_bytes;
        let acc = match self.op {
            Op::RandomAccess => {
                let h = gups_index(i, self.n);
                match self.step {
                    0 => Access {
                        addr: self.base_b + i * w,
                        bytes,
                        kind: AccessKind::Read,
                    },
                    1 => Access {
                        addr: self.base_a + h * w,
                        bytes,
                        kind: AccessKind::Read,
                    },
                    _ => Access {
                        addr: self.base_a + h * w,
                        bytes,
                        kind: AccessKind::Write,
                    },
                }
            }
            Op::Ptrans => {
                if self.step == 0 {
                    Access {
                        addr: self.base_b + i * w,
                        bytes,
                        kind: AccessKind::Read,
                    }
                } else {
                    let (r, c) = (i / self.cols, i % self.cols);
                    Access {
                        addr: self.base_a + (c * self.rows + r) * w,
                        bytes,
                        kind: AccessKind::Write,
                    }
                }
            }
            Op::DgemmLite => {
                let (r, c) = (i / self.cols, i % self.cols);
                let k_dim = self.cols;
                if self.step < k_dim {
                    Access {
                        addr: self.base_b + (r * self.cols + self.step) * w,
                        bytes,
                        kind: AccessKind::Read,
                    }
                } else if self.step < 2 * k_dim {
                    let k = self.step - k_dim;
                    Access {
                        addr: self.base_c + (k * self.cols + c) * w,
                        bytes,
                        kind: AccessKind::Read,
                    }
                } else {
                    Access {
                        addr: self.base_a + i * w,
                        bytes,
                        kind: AccessKind::Write,
                    }
                }
            }
            _ => unreachable!("stream ops use StreamAccesses"),
        };
        self.step += 1;
        if self.step == self.accesses_per_iter() {
            self.cur = None;
        }
        Some(acc)
    }
}

impl AccessStream {
    /// Append up to `max` accesses to `out`, returning how many were
    /// appended (fewer only at end of stream). The emitted sequence is
    /// exactly what repeated [`Iterator::next`] calls would produce;
    /// simulation hot paths batch through here to amortize per-access
    /// iterator dispatch into tight per-instruction loops.
    pub fn fill(&mut self, out: &mut Vec<Access>, max: usize) -> usize {
        match &mut self.inner {
            Inner::Stream(s) => s.fill(out, max),
            Inner::Hpcc(h) => {
                // The HPCC generators are per-iteration state machines;
                // draining through `next` is already the tight loop.
                let start = out.len();
                while out.len() - start < max {
                    match h.next() {
                        Some(a) => out.push(a),
                        None => break,
                    }
                }
                out.len() - start
            }
        }
    }
}

impl Iterator for AccessStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        match &mut self.inner {
            Inner::Stream(s) => s.next(),
            Inner::Hpcc(h) => h.next(),
        }
    }
}

impl StreamAccesses {
    /// See [`AccessStream::fill`].
    fn fill(&mut self, out: &mut Vec<Access>, max: usize) -> usize {
        let start = out.len();
        while out.len() - start < max {
            if self.cursor < self.group.len() {
                let want = max - (out.len() - start);
                let end = self.group.len().min(self.cursor + want);
                let bytes = self.vector_bytes;
                let (base, kind) = match self.instr {
                    0 => (self.base_b, AccessKind::Read),
                    1 => (
                        self.base_c.expect("instr 1 only when c present"),
                        AccessKind::Read,
                    ),
                    _ => (self.base_a, AccessKind::Write),
                };
                for &idx in &self.group[self.cursor..end] {
                    out.push(Access {
                        addr: base + idx * bytes as u64,
                        bytes,
                        kind,
                    });
                }
                self.cursor = end;
                continue;
            }
            // Advance to the next instruction, or refill the lane group
            // (identical to the branch in `next`).
            self.cursor = 0;
            self.instr = match (self.instr, self.base_c.is_some()) {
                (0, true) => 1,
                (0, false) => 2,
                (1, _) => 2,
                _ => {
                    self.group.clear();
                    for idx in self.order.by_ref() {
                        self.group.push(idx);
                        if self.group.len() == self.lane_group {
                            break;
                        }
                    }
                    if self.group.is_empty() {
                        return out.len() - start;
                    }
                    0
                }
            };
        }
        out.len() - start
    }
}

impl Iterator for StreamAccesses {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        loop {
            if self.cursor < self.group.len() {
                let idx = self.group[self.cursor];
                let off = idx * self.vector_bytes as u64;
                let acc = match self.instr {
                    0 => Access {
                        addr: self.base_b + off,
                        bytes: self.vector_bytes,
                        kind: AccessKind::Read,
                    },
                    1 => Access {
                        addr: self.base_c.expect("instr 1 only when c present") + off,
                        bytes: self.vector_bytes,
                        kind: AccessKind::Read,
                    },
                    _ => Access {
                        addr: self.base_a + off,
                        bytes: self.vector_bytes,
                        kind: AccessKind::Write,
                    },
                };
                self.cursor += 1;
                return Some(acc);
            }
            // Advance to the next instruction, or refill the lane group.
            self.cursor = 0;
            self.instr = match (self.instr, self.base_c.is_some()) {
                (0, true) => 1,
                (0, false) => 2,
                (1, _) => 2,
                _ => {
                    self.group.clear();
                    for idx in self.order.by_ref() {
                        self.group.push(idx);
                        if self.group.len() == self.lane_group {
                            break;
                        }
                    }
                    if self.group.is_empty() {
                        return None;
                    }
                    0
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, KernelConfig, StreamOp, VectorWidth};
    use crate::plan::ExecPlan;
    use std::collections::HashSet;

    fn plan(op: StreamOp, n: u64) -> ExecPlan {
        let cfg = KernelConfig::baseline(op, n);
        let bytes = cfg.array_bytes();
        ExecPlan::new(cfg, 0, bytes, 2 * bytes)
    }

    #[test]
    fn copy_stream_alternates_read_write() {
        let p = plan(StreamOp::Copy, 4);
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len(), 8);
        assert_eq!(
            accs[0],
            Access {
                addr: 16,
                bytes: 4,
                kind: AccessKind::Read
            }
        ); // b[0]
        assert_eq!(
            accs[1],
            Access {
                addr: 0,
                bytes: 4,
                kind: AccessKind::Write
            }
        ); // a[0]
        assert_eq!(accs[2].addr, 20); // b[1]
    }

    #[test]
    fn triad_reads_both_sources() {
        let p = plan(StreamOp::Triad, 2);
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len(), 6);
        assert_eq!(accs[0].addr, 8); // b[0]
        assert_eq!(accs[1].addr, 16); // c[0]
        assert_eq!(
            accs[2],
            Access {
                addr: 0,
                bytes: 4,
                kind: AccessKind::Write
            }
        );
    }

    #[test]
    fn lane_group_batches_instructions() {
        let p = plan(StreamOp::Copy, 8);
        let accs: Vec<_> = access_stream(&p, 4).collect();
        // First 4: reads b[0..4]; next 4: writes a[0..4].
        assert!(accs[0..4].iter().all(|a| a.kind == AccessKind::Read));
        assert!(accs[4..8].iter().all(|a| a.kind == AccessKind::Write));
        assert_eq!(accs[3].addr, 32 + 12);
    }

    #[test]
    fn total_accesses_matches_stream_length() {
        for op in StreamOp::ALL {
            let p = plan(op, 64);
            let n = access_stream(&p, 8).count() as u64;
            assert_eq!(n, total_accesses(&p.cfg), "{op:?}");
        }
    }

    #[test]
    fn contiguous_order_is_sequential() {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 16);
        let order: Vec<_> = IndexOrder::new(&cfg).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn colmajor_order_jumps_by_cols() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 12);
        cfg.pattern = AccessPattern::ColMajor { cols: Some(4) };
        let order: Vec<_> = IndexOrder::new(&cfg).collect();
        // 3 rows x 4 cols, column-major: 0,4,8, 1,5,9, 2,6,10, 3,7,11.
        assert_eq!(order, vec![0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11]);
    }

    #[test]
    fn strided_order_visits_phases() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 8);
        cfg.pattern = AccessPattern::Strided { stride: 2 };
        let order: Vec<_> = IndexOrder::new(&cfg).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn every_pattern_is_a_permutation() {
        for pattern in [
            AccessPattern::Contiguous,
            AccessPattern::ColMajor { cols: None },
            AccessPattern::ColMajor { cols: Some(16) },
            AccessPattern::Strided { stride: 4 },
        ] {
            let mut cfg = KernelConfig::baseline(StreamOp::Copy, 256);
            cfg.pattern = pattern;
            let seen: HashSet<u64> = IndexOrder::new(&cfg).collect();
            assert_eq!(seen.len(), 256, "{pattern:?} must visit every element once");
            assert!(seen.iter().all(|&i| i < 256));
        }
    }

    #[test]
    fn vector_width_scales_access_bytes() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 64);
        cfg.vector_width = VectorWidth::new(8).unwrap();
        let bytes = cfg.array_bytes();
        let p = ExecPlan::new(cfg, 0, bytes, 2 * bytes);
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len(), 16); // 8 vectors x 2 arrays
        assert!(accs.iter().all(|a| a.bytes == 32));
    }

    #[test]
    fn fill_matches_next_sequence() {
        for op in StreamOp::ALL {
            for pattern in [
                AccessPattern::Contiguous,
                AccessPattern::ColMajor { cols: Some(8) },
                AccessPattern::Strided { stride: 4 },
            ] {
                for lane in [1u32, 3, 4, 16] {
                    for chunk in [1usize, 5, 16, 1000] {
                        let mut cfg = KernelConfig::baseline(op, 64);
                        cfg.pattern = pattern;
                        let bytes = cfg.array_bytes();
                        let p = ExecPlan::new(cfg, 0, bytes, 2 * bytes);
                        let expect: Vec<_> = access_stream(&p, lane).collect();
                        let mut got = Vec::new();
                        let mut s = access_stream(&p, lane);
                        while s.fill(&mut got, chunk) > 0 {}
                        assert_eq!(got, expect, "{op:?} {pattern:?} lane={lane} chunk={chunk}");
                    }
                }
            }
        }
    }

    #[test]
    fn gups_stream_reads_then_updates_the_hashed_slot() {
        let p = plan(Op::RandomAccess, 16);
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len() as u64, total_accesses(&p.cfg));
        for (i, chunk) in accs.chunks(3).enumerate() {
            let h = crate::ir::gups_index(i as u64, 16);
            assert_eq!(chunk[0].addr, p.base_b + 4 * i as u64, "read b[{i}]");
            assert_eq!(chunk[0].kind, AccessKind::Read);
            assert_eq!(chunk[1].addr, p.base_a + 4 * h, "read a[h({i})]");
            assert_eq!(chunk[1].kind, AccessKind::Read);
            assert_eq!(chunk[2].addr, p.base_a + 4 * h, "write a[h({i})]");
            assert_eq!(chunk[2].kind, AccessKind::Write);
        }
    }

    #[test]
    fn ptrans_stream_writes_the_transposed_slot() {
        // 12 elements, near-square 4 rows x 3 cols.
        let p = plan(Op::Ptrans, 12);
        let (rows, cols) = p.cfg.matrix_shape();
        assert_eq!((rows, cols), (4, 3));
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len(), 24);
        for (i, chunk) in accs.chunks(2).enumerate() {
            let (r, c) = (i as u64 / cols, i as u64 % cols);
            assert_eq!(chunk[0].addr, p.base_b + 4 * i as u64);
            assert_eq!(chunk[0].kind, AccessKind::Read);
            assert_eq!(chunk[1].addr, p.base_a + 4 * (c * rows + r));
            assert_eq!(chunk[1].kind, AccessKind::Write);
        }
    }

    #[test]
    fn dgemm_stream_is_row_times_column_then_write() {
        // 16 elements -> 4x4; K = 4 -> 9 accesses per output.
        let p = plan(Op::DgemmLite, 16);
        let accs: Vec<_> = access_stream(&p, 1).collect();
        assert_eq!(accs.len() as u64, total_accesses(&p.cfg));
        assert_eq!(accs.len(), 16 * 9);
        // Output (1, 2): reads b[4..8], reads c[2], c[6], c[10], c[14],
        // writes a[6].
        let out = &accs[6 * 9..7 * 9];
        for k in 0..4u64 {
            assert_eq!(out[k as usize].addr, p.base_b + 4 * (4 + k));
            assert_eq!(out[k as usize].kind, AccessKind::Read);
            assert_eq!(out[4 + k as usize].addr, p.base_c + 4 * (k * 4 + 2));
            assert_eq!(out[4 + k as usize].kind, AccessKind::Read);
        }
        assert_eq!(out[8].addr, p.base_a + 4 * 6);
        assert_eq!(out[8].kind, AccessKind::Write);
    }

    #[test]
    fn hpcc_fill_matches_next_and_counts() {
        for op in Op::HPCC {
            let patterns: &[AccessPattern] = if op == Op::RandomAccess {
                &[AccessPattern::Contiguous]
            } else {
                &[
                    AccessPattern::Contiguous,
                    AccessPattern::ColMajor { cols: Some(8) },
                ]
            };
            for &pattern in patterns {
                for chunk in [1usize, 7, 1000] {
                    let mut cfg = KernelConfig::baseline(op, 64);
                    cfg.pattern = pattern;
                    let bytes = cfg.array_bytes();
                    let p = ExecPlan::new(cfg, 0, bytes, 2 * bytes);
                    let expect: Vec<_> = access_stream(&p, 4).collect();
                    assert_eq!(expect.len() as u64, total_accesses(&p.cfg));
                    let mut got = Vec::new();
                    let mut s = access_stream(&p, 4);
                    while s.fill(&mut got, chunk) > 0 {}
                    assert_eq!(got, expect, "{op:?} {pattern:?} chunk={chunk}");
                }
            }
        }
    }

    #[test]
    fn fill_interleaves_with_next() {
        let p = plan(StreamOp::Triad, 32);
        let expect: Vec<_> = access_stream(&p, 4).collect();
        let mut s = access_stream(&p, 4);
        let mut got = Vec::new();
        loop {
            let filled = s.fill(&mut got, 7);
            match s.next() {
                Some(a) => got.push(a),
                None => {
                    if filled == 0 {
                        break;
                    }
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn addresses_stay_in_bounds() {
        for op in StreamOp::ALL {
            let p = plan(op, 128);
            let len = p.cfg.array_bytes();
            for a in access_stream(&p, 4) {
                let (base, _name) = if a.kind == AccessKind::Write {
                    (p.base_a, "a")
                } else if a.addr >= p.base_c && p.cfg.op.uses_c() {
                    (p.base_c, "c")
                } else {
                    (p.base_b, "b")
                };
                assert!(a.addr >= base && a.addr + a.bytes as u64 <= base + len);
            }
        }
    }
}
