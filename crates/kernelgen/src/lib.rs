//! # kernelgen — STREAM kernel model
//!
//! MP-STREAM's build scripts generate a different OpenCL kernel for every
//! point of the tuning space (§III of the paper: data type, vector width,
//! access pattern, loop management, unroll factor, work-group attributes
//! and vendor-specific knobs). This crate is the Rust equivalent of those
//! scripts plus everything a simulated device needs to *run* the result:
//!
//! * [`ir`] — the tuning-space types: [`ir::StreamOp`], [`ir::DataType`],
//!   [`ir::AccessPattern`], [`ir::LoopMode`], vendor options and the
//!   combined [`ir::KernelConfig`];
//! * [`mod@validate`] — configuration validation with OpenCL-flavoured errors;
//! * [`source`] — an OpenCL-C source generator producing the exact kernel
//!   text a configuration corresponds to (inspectable, golden-tested);
//! * [`interp`] — a functional interpreter that really executes the
//!   kernel over byte buffers, so benchmark runs can be validated
//!   STREAM-style;
//! * [`access`] — a lazy generator of the kernel's memory-access stream
//!   in program order, which the device timing models consume;
//! * [`features()`] — the architecture-independent feature vector of a
//!   configuration (operational intensity, stride class, access
//!   granularity), the input of the surrogate model used for
//!   model-guided design-space exploration;
//! * [`plan`] — [`plan::ExecPlan`], the bound form (config + buffer base
//!   addresses) handed to a device backend.

pub mod access;
pub mod check;
pub mod features;
pub mod host;
pub mod interp;
pub mod ir;
pub mod plan;
pub mod source;
pub mod validate;

pub use access::{access_stream, total_accesses};
pub use check::{check_source, CheckError, KernelSignature};
pub use features::{features, FEATURE_DIM, FEATURE_NAMES};
pub use host::{generate_host_program, HostOptions};
pub use interp::execute;
pub use ir::{
    gups_index, AccessPattern, AoclOpts, ChannelSpec, DataType, KernelConfig, LoopMode, Op,
    StreamOp, VectorWidth, VendorOpts, XilinxOpts, GUPS_SEED,
};
pub use plan::ExecPlan;
pub use source::generate_source;
pub use validate::{validate, ConfigError, MAX_CHANNEL_DEPTH};
