//! Configuration validation.
//!
//! Invalid tuning-space points are rejected before any source is
//! generated or any device is touched, with errors mirroring the checks
//! MP-STREAM's build scripts and the OpenCL runtime would perform.

use crate::ir::{AccessPattern, KernelConfig, LoopMode, VendorOpts};
use std::fmt;

/// Why a [`KernelConfig`] is not runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Array length is zero.
    EmptyArray,
    /// Array length must be divisible by the vector width.
    LengthNotVectorMultiple { n_words: u64, vector_width: u32 },
    /// Unroll factor must be ≥ 1 and divide the (vector) trip count.
    BadUnroll { unroll: u32, trip_count: u64 },
    /// Work-group size must be ≥ 1 and divide the NDRange.
    BadWorkGroup { work_group_size: u32, nd_range: u64 },
    /// Strides must be ≥ 2 and divide the element count.
    BadStride { stride: u32, n_vectors: u64 },
    /// Column count must divide the element count.
    BadCols { cols: u32, n_vectors: u64 },
    /// AOCL attribute values must be ≥ 1.
    BadVendorValue(&'static str),
    /// `num_simd_work_items` requires an NDRange kernel with a
    /// `reqd_work_group_size` divisible by it (AOCL rule).
    SimdNeedsNdRange,
    /// Xilinx memory port width must be a power of two in 32..=512 bits.
    BadPortWidth(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyArray => write!(f, "array length is zero"),
            ConfigError::LengthNotVectorMultiple {
                n_words,
                vector_width,
            } => write!(
                f,
                "array length {n_words} is not a multiple of vector width {vector_width}"
            ),
            ConfigError::BadUnroll { unroll, trip_count } => {
                write!(
                    f,
                    "unroll factor {unroll} does not divide trip count {trip_count}"
                )
            }
            ConfigError::BadWorkGroup {
                work_group_size,
                nd_range,
            } => {
                write!(
                    f,
                    "work-group size {work_group_size} does not divide NDRange {nd_range}"
                )
            }
            ConfigError::BadStride { stride, n_vectors } => {
                write!(f, "stride {stride} invalid for {n_vectors} elements")
            }
            ConfigError::BadCols { cols, n_vectors } => {
                write!(
                    f,
                    "column count {cols} does not divide {n_vectors} elements"
                )
            }
            ConfigError::BadVendorValue(which) => {
                write!(f, "vendor attribute {which} must be >= 1")
            }
            ConfigError::SimdNeedsNdRange => write!(
                f,
                "num_simd_work_items requires an NDRange kernel with a required work-group size"
            ),
            ConfigError::BadPortWidth(w) => {
                write!(
                    f,
                    "memory port width {w} bits is not a power of two in 32..=512"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Check every constraint; returns the first violation found.
pub fn validate(cfg: &KernelConfig) -> Result<(), ConfigError> {
    if cfg.n_words == 0 {
        return Err(ConfigError::EmptyArray);
    }
    let vw = cfg.vector_width.get();
    if !cfg.n_words.is_multiple_of(vw as u64) {
        return Err(ConfigError::LengthNotVectorMultiple {
            n_words: cfg.n_words,
            vector_width: vw,
        });
    }
    let n_vec = cfg.n_vectors();

    if cfg.unroll == 0 || !n_vec.is_multiple_of(cfg.unroll as u64) {
        return Err(ConfigError::BadUnroll {
            unroll: cfg.unroll,
            trip_count: n_vec,
        });
    }

    if cfg.loop_mode == LoopMode::NdRange
        && (cfg.work_group_size == 0 || !n_vec.is_multiple_of(cfg.work_group_size as u64))
    {
        return Err(ConfigError::BadWorkGroup {
            work_group_size: cfg.work_group_size,
            nd_range: n_vec,
        });
    }

    match cfg.pattern {
        AccessPattern::Contiguous => {}
        AccessPattern::Strided { stride } => {
            if stride < 2 || !n_vec.is_multiple_of(stride as u64) {
                return Err(ConfigError::BadStride {
                    stride,
                    n_vectors: n_vec,
                });
            }
        }
        AccessPattern::ColMajor { cols } => {
            if let Some(c) = cols {
                if c == 0 || !n_vec.is_multiple_of(c as u64) {
                    return Err(ConfigError::BadCols {
                        cols: c,
                        n_vectors: n_vec,
                    });
                }
            }
        }
    }

    match cfg.vendor {
        VendorOpts::None => {}
        VendorOpts::Aocl(a) => {
            if a.num_compute_units == 0 {
                return Err(ConfigError::BadVendorValue("num_compute_units"));
            }
            if a.num_simd_work_items == 0 {
                return Err(ConfigError::BadVendorValue("num_simd_work_items"));
            }
            if a.num_simd_work_items > 1
                && (cfg.loop_mode != LoopMode::NdRange || !cfg.reqd_work_group_size)
            {
                return Err(ConfigError::SimdNeedsNdRange);
            }
        }
        VendorOpts::Xilinx(x) => {
            if let Some(w) = x.memory_port_width_bits {
                if !w.is_power_of_two() || !(32..=512).contains(&w) {
                    return Err(ConfigError::BadPortWidth(w));
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AoclOpts, StreamOp, VectorWidth, XilinxOpts};

    fn base() -> KernelConfig {
        KernelConfig::baseline(StreamOp::Copy, 1 << 16)
    }

    #[test]
    fn baseline_is_valid() {
        assert_eq!(validate(&base()), Ok(()));
    }

    #[test]
    fn empty_array_rejected() {
        let mut c = base();
        c.n_words = 0;
        assert_eq!(validate(&c), Err(ConfigError::EmptyArray));
    }

    #[test]
    fn vector_multiple_enforced() {
        let mut c = base();
        c.n_words = 1000;
        c.vector_width = VectorWidth::new(16).unwrap();
        assert!(matches!(
            validate(&c),
            Err(ConfigError::LengthNotVectorMultiple { .. })
        ));
    }

    #[test]
    fn unroll_must_divide_trip_count() {
        let mut c = base();
        c.loop_mode = LoopMode::SingleWorkItemFlat;
        c.unroll = 3;
        assert!(matches!(validate(&c), Err(ConfigError::BadUnroll { .. })));
        c.unroll = 4;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn work_group_must_divide_ndrange() {
        let mut c = base();
        c.work_group_size = 100; // 2^16 % 100 != 0
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadWorkGroup { .. })
        ));
    }

    #[test]
    fn work_group_irrelevant_for_single_work_item() {
        let mut c = base();
        c.loop_mode = LoopMode::SingleWorkItemFlat;
        c.work_group_size = 100;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn stride_bounds() {
        let mut c = base();
        c.pattern = AccessPattern::Strided { stride: 1 };
        assert!(matches!(validate(&c), Err(ConfigError::BadStride { .. })));
        c.pattern = AccessPattern::Strided { stride: 2 };
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn cols_must_divide() {
        let mut c = base();
        c.pattern = AccessPattern::ColMajor { cols: Some(1000) };
        assert!(matches!(validate(&c), Err(ConfigError::BadCols { .. })));
        c.pattern = AccessPattern::ColMajor { cols: Some(256) };
        assert_eq!(validate(&c), Ok(()));
        c.pattern = AccessPattern::ColMajor { cols: None };
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn aocl_simd_requires_ndrange_and_reqd_wg() {
        let mut c = base();
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 4,
            num_compute_units: 1,
        });
        assert_eq!(validate(&c), Err(ConfigError::SimdNeedsNdRange));
        c.reqd_work_group_size = true;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn aocl_zero_values_rejected() {
        let mut c = base();
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 1,
            num_compute_units: 0,
        });
        assert!(matches!(validate(&c), Err(ConfigError::BadVendorValue(_))));
    }

    #[test]
    fn xilinx_port_width_checked() {
        let mut c = base();
        c.vendor = VendorOpts::Xilinx(XilinxOpts {
            memory_port_width_bits: Some(500),
            ..Default::default()
        });
        assert_eq!(validate(&c), Err(ConfigError::BadPortWidth(500)));
        c.vendor = VendorOpts::Xilinx(XilinxOpts {
            memory_port_width_bits: Some(512),
            ..Default::default()
        });
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn errors_display() {
        let e = ConfigError::BadStride {
            stride: 7,
            n_vectors: 100,
        };
        assert!(e.to_string().contains("stride 7"));
    }
}
