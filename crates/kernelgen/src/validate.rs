//! Configuration validation.
//!
//! Invalid tuning-space points are rejected before any source is
//! generated or any device is touched, with errors mirroring the checks
//! MP-STREAM's build scripts and the OpenCL runtime would perform.

use crate::ir::{AccessPattern, DataType, KernelConfig, LoopMode, Op, VendorOpts};
use std::fmt;

/// Largest channel depth any vendor's on-chip memory can plausibly
/// back; deeper FIFOs are a configuration error before synthesis.
pub const MAX_CHANNEL_DEPTH: u32 = 32_768;

/// Why a [`KernelConfig`] is not runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Array length is zero.
    EmptyArray,
    /// Array length must be divisible by the vector width.
    LengthNotVectorMultiple { n_words: u64, vector_width: u32 },
    /// Unroll factor must be ≥ 1 and divide the (vector) trip count.
    BadUnroll { unroll: u32, trip_count: u64 },
    /// Work-group size must be ≥ 1 and divide the NDRange.
    BadWorkGroup { work_group_size: u32, nd_range: u64 },
    /// Strides must be ≥ 2 and divide the element count.
    BadStride { stride: u32, n_vectors: u64 },
    /// Column count must divide the element count.
    BadCols { cols: u32, n_vectors: u64 },
    /// AOCL attribute values must be ≥ 1.
    BadVendorValue(&'static str),
    /// `num_simd_work_items` requires an NDRange kernel with a
    /// `reqd_work_group_size` divisible by it (AOCL rule).
    SimdNeedsNdRange,
    /// Xilinx memory port width must be a power of two in 32..=512 bits.
    BadPortWidth(u32),
    /// The op only supports certain element types (GUPS and DGEMM-lite
    /// are defined over i32 so results stay bit-exact).
    BadOpDtype { op: Op, dtype: DataType },
    /// The op does not vectorize (scatter/transpose/matmul streams are
    /// scalar in this generator).
    BadOpWidth { op: Op, vector_width: u32 },
    /// The op does not support the requested access pattern.
    BadOpPattern { op: Op, pattern: AccessPattern },
    /// DGEMM-lite's `cols × cols` operand matrix must fit in the array.
    BadDgemmShape { cols: u64, n_vectors: u64 },
    /// Channel depth exceeds [`MAX_CHANNEL_DEPTH`].
    BadChannelDepth { depth: u32 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyArray => write!(f, "array length is zero"),
            ConfigError::LengthNotVectorMultiple {
                n_words,
                vector_width,
            } => write!(
                f,
                "array length {n_words} is not a multiple of vector width {vector_width}"
            ),
            ConfigError::BadUnroll { unroll, trip_count } => {
                write!(
                    f,
                    "unroll factor {unroll} does not divide trip count {trip_count}"
                )
            }
            ConfigError::BadWorkGroup {
                work_group_size,
                nd_range,
            } => {
                write!(
                    f,
                    "work-group size {work_group_size} does not divide NDRange {nd_range}"
                )
            }
            ConfigError::BadStride { stride, n_vectors } => {
                write!(f, "stride {stride} invalid for {n_vectors} elements")
            }
            ConfigError::BadCols { cols, n_vectors } => {
                write!(
                    f,
                    "column count {cols} does not divide {n_vectors} elements"
                )
            }
            ConfigError::BadVendorValue(which) => {
                write!(f, "vendor attribute {which} must be >= 1")
            }
            ConfigError::SimdNeedsNdRange => write!(
                f,
                "num_simd_work_items requires an NDRange kernel with a required work-group size"
            ),
            ConfigError::BadPortWidth(w) => {
                write!(
                    f,
                    "memory port width {w} bits is not a power of two in 32..=512"
                )
            }
            ConfigError::BadOpDtype { op, dtype } => {
                write!(f, "{} does not support dtype {dtype:?}", op.name())
            }
            ConfigError::BadOpWidth { op, vector_width } => {
                write!(
                    f,
                    "{} is scalar-only, got vector width {vector_width}",
                    op.name()
                )
            }
            ConfigError::BadOpPattern { op, pattern } => {
                write!(
                    f,
                    "{} does not support the {} pattern",
                    op.name(),
                    pattern.label()
                )
            }
            ConfigError::BadDgemmShape { cols, n_vectors } => {
                write!(
                    f,
                    "dgemm operand matrix {cols}x{cols} does not fit in {n_vectors} elements"
                )
            }
            ConfigError::BadChannelDepth { depth } => {
                write!(f, "channel depth {depth} exceeds {MAX_CHANNEL_DEPTH}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Check every constraint; returns the first violation found.
pub fn validate(cfg: &KernelConfig) -> Result<(), ConfigError> {
    if cfg.n_words == 0 {
        return Err(ConfigError::EmptyArray);
    }
    let vw = cfg.vector_width.get();
    if !cfg.n_words.is_multiple_of(vw as u64) {
        return Err(ConfigError::LengthNotVectorMultiple {
            n_words: cfg.n_words,
            vector_width: vw,
        });
    }
    let n_vec = cfg.n_vectors();

    if cfg.unroll == 0 || !n_vec.is_multiple_of(cfg.unroll as u64) {
        return Err(ConfigError::BadUnroll {
            unroll: cfg.unroll,
            trip_count: n_vec,
        });
    }

    if cfg.loop_mode == LoopMode::NdRange
        && (cfg.work_group_size == 0 || !n_vec.is_multiple_of(cfg.work_group_size as u64))
    {
        return Err(ConfigError::BadWorkGroup {
            work_group_size: cfg.work_group_size,
            nd_range: n_vec,
        });
    }

    match cfg.pattern {
        AccessPattern::Contiguous => {}
        AccessPattern::Strided { stride } => {
            if stride < 2 || !n_vec.is_multiple_of(stride as u64) {
                return Err(ConfigError::BadStride {
                    stride,
                    n_vectors: n_vec,
                });
            }
        }
        AccessPattern::ColMajor { cols } => {
            if let Some(c) = cols {
                if c == 0 || !n_vec.is_multiple_of(c as u64) {
                    return Err(ConfigError::BadCols {
                        cols: c,
                        n_vectors: n_vec,
                    });
                }
            }
        }
    }

    // Workload-family constraints: the HPCC-style ops are scalar-only
    // (their streams are scatters, transposes and dot products, which
    // this generator does not vectorize), the integer ops stay i32 so
    // results are bit-exact, and each op supports only the patterns its
    // index arithmetic is defined over.
    if !cfg.op.is_stream() && cfg.vector_width.get() != 1 {
        return Err(ConfigError::BadOpWidth {
            op: cfg.op,
            vector_width: cfg.vector_width.get(),
        });
    }
    match cfg.op {
        Op::RandomAccess => {
            if cfg.dtype != DataType::I32 {
                return Err(ConfigError::BadOpDtype {
                    op: cfg.op,
                    dtype: cfg.dtype,
                });
            }
            if !cfg.pattern.is_contiguous() {
                return Err(ConfigError::BadOpPattern {
                    op: cfg.op,
                    pattern: cfg.pattern,
                });
            }
        }
        Op::Ptrans | Op::DgemmLite => {
            if matches!(cfg.pattern, AccessPattern::Strided { .. }) {
                return Err(ConfigError::BadOpPattern {
                    op: cfg.op,
                    pattern: cfg.pattern,
                });
            }
            if cfg.op == Op::DgemmLite {
                if cfg.dtype != DataType::I32 {
                    return Err(ConfigError::BadOpDtype {
                        op: cfg.op,
                        dtype: cfg.dtype,
                    });
                }
                let (_, cols) = cfg.matrix_shape();
                if cols * cols > n_vec {
                    return Err(ConfigError::BadDgemmShape {
                        cols,
                        n_vectors: n_vec,
                    });
                }
            }
        }
        _ => {}
    }

    if let Some(ch) = cfg.channel {
        if ch.depth > MAX_CHANNEL_DEPTH {
            return Err(ConfigError::BadChannelDepth { depth: ch.depth });
        }
    }

    match cfg.vendor {
        VendorOpts::None => {}
        VendorOpts::Aocl(a) => {
            if a.num_compute_units == 0 {
                return Err(ConfigError::BadVendorValue("num_compute_units"));
            }
            if a.num_simd_work_items == 0 {
                return Err(ConfigError::BadVendorValue("num_simd_work_items"));
            }
            if a.num_simd_work_items > 1
                && (cfg.loop_mode != LoopMode::NdRange || !cfg.reqd_work_group_size)
            {
                return Err(ConfigError::SimdNeedsNdRange);
            }
        }
        VendorOpts::Xilinx(x) => {
            if let Some(w) = x.memory_port_width_bits {
                if !w.is_power_of_two() || !(32..=512).contains(&w) {
                    return Err(ConfigError::BadPortWidth(w));
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AoclOpts, StreamOp, VectorWidth, XilinxOpts};

    fn base() -> KernelConfig {
        KernelConfig::baseline(StreamOp::Copy, 1 << 16)
    }

    #[test]
    fn baseline_is_valid() {
        assert_eq!(validate(&base()), Ok(()));
    }

    #[test]
    fn empty_array_rejected() {
        let mut c = base();
        c.n_words = 0;
        assert_eq!(validate(&c), Err(ConfigError::EmptyArray));
    }

    #[test]
    fn vector_multiple_enforced() {
        let mut c = base();
        c.n_words = 1000;
        c.vector_width = VectorWidth::new(16).unwrap();
        assert!(matches!(
            validate(&c),
            Err(ConfigError::LengthNotVectorMultiple { .. })
        ));
    }

    #[test]
    fn unroll_must_divide_trip_count() {
        let mut c = base();
        c.loop_mode = LoopMode::SingleWorkItemFlat;
        c.unroll = 3;
        assert!(matches!(validate(&c), Err(ConfigError::BadUnroll { .. })));
        c.unroll = 4;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn work_group_must_divide_ndrange() {
        let mut c = base();
        c.work_group_size = 100; // 2^16 % 100 != 0
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadWorkGroup { .. })
        ));
    }

    #[test]
    fn work_group_irrelevant_for_single_work_item() {
        let mut c = base();
        c.loop_mode = LoopMode::SingleWorkItemFlat;
        c.work_group_size = 100;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn stride_bounds() {
        let mut c = base();
        c.pattern = AccessPattern::Strided { stride: 1 };
        assert!(matches!(validate(&c), Err(ConfigError::BadStride { .. })));
        c.pattern = AccessPattern::Strided { stride: 2 };
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn cols_must_divide() {
        let mut c = base();
        c.pattern = AccessPattern::ColMajor { cols: Some(1000) };
        assert!(matches!(validate(&c), Err(ConfigError::BadCols { .. })));
        c.pattern = AccessPattern::ColMajor { cols: Some(256) };
        assert_eq!(validate(&c), Ok(()));
        c.pattern = AccessPattern::ColMajor { cols: None };
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn aocl_simd_requires_ndrange_and_reqd_wg() {
        let mut c = base();
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 4,
            num_compute_units: 1,
        });
        assert_eq!(validate(&c), Err(ConfigError::SimdNeedsNdRange));
        c.reqd_work_group_size = true;
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn aocl_zero_values_rejected() {
        let mut c = base();
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 1,
            num_compute_units: 0,
        });
        assert!(matches!(validate(&c), Err(ConfigError::BadVendorValue(_))));
    }

    #[test]
    fn xilinx_port_width_checked() {
        let mut c = base();
        c.vendor = VendorOpts::Xilinx(XilinxOpts {
            memory_port_width_bits: Some(500),
            ..Default::default()
        });
        assert_eq!(validate(&c), Err(ConfigError::BadPortWidth(500)));
        c.vendor = VendorOpts::Xilinx(XilinxOpts {
            memory_port_width_bits: Some(512),
            ..Default::default()
        });
        assert_eq!(validate(&c), Ok(()));
    }

    #[test]
    fn hpcc_ops_are_scalar_only() {
        for op in Op::HPCC {
            let mut c = KernelConfig::baseline(op, 1 << 16);
            assert_eq!(validate(&c), Ok(()), "{op:?} baseline must be valid");
            c.vector_width = VectorWidth::new(4).unwrap();
            assert!(
                matches!(validate(&c), Err(ConfigError::BadOpWidth { .. })),
                "{op:?} must reject vector widths"
            );
        }
    }

    #[test]
    fn gups_requires_i32_and_contiguous() {
        let mut c = KernelConfig::baseline(Op::RandomAccess, 1 << 16);
        c.dtype = DataType::F64;
        assert!(matches!(validate(&c), Err(ConfigError::BadOpDtype { .. })));
        let mut c = KernelConfig::baseline(Op::RandomAccess, 1 << 16);
        c.pattern = AccessPattern::ColMajor { cols: None };
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadOpPattern { .. })
        ));
    }

    #[test]
    fn ptrans_allows_colmajor_but_not_strided() {
        let mut c = KernelConfig::baseline(Op::Ptrans, 1 << 16);
        c.pattern = AccessPattern::ColMajor { cols: Some(256) };
        assert_eq!(validate(&c), Ok(()));
        c.dtype = DataType::F64;
        assert_eq!(validate(&c), Ok(()), "ptrans is a pure permutation");
        c.pattern = AccessPattern::Strided { stride: 4 };
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadOpPattern { .. })
        ));
    }

    #[test]
    fn dgemm_needs_i32_and_a_fitting_operand_matrix() {
        let mut c = KernelConfig::baseline(Op::DgemmLite, 1 << 16);
        assert_eq!(validate(&c), Ok(()));
        c.dtype = DataType::F64;
        assert!(matches!(validate(&c), Err(ConfigError::BadOpDtype { .. })));
        // 1024 elements viewed as 16 x 64: the 64x64 operand matrix
        // needs 4096 elements and does not fit.
        let mut c = KernelConfig::baseline(Op::DgemmLite, 1024);
        c.pattern = AccessPattern::ColMajor { cols: Some(64) };
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadDgemmShape { .. })
        ));
    }

    #[test]
    fn channel_depth_is_bounded() {
        use crate::ir::ChannelSpec;
        let mut c = base();
        c.channel = Some(ChannelSpec { depth: 0 });
        assert_eq!(validate(&c), Ok(()), "depth 0 is legal (AOCL fusion)");
        c.channel = Some(ChannelSpec {
            depth: MAX_CHANNEL_DEPTH,
        });
        assert_eq!(validate(&c), Ok(()));
        c.channel = Some(ChannelSpec {
            depth: MAX_CHANNEL_DEPTH + 1,
        });
        assert!(matches!(
            validate(&c),
            Err(ConfigError::BadChannelDepth { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = ConfigError::BadStride {
            stride: 7,
            n_vectors: 100,
        };
        assert!(e.to_string().contains("stride 7"));
    }
}
