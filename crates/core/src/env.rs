//! Shared parsing for the `MPSTREAM_*` environment knobs.
//!
//! Several layers read the same environment conventions — the engine's
//! worker-count default, the CLI and figure harness's canonical-trace
//! switch, the bench harness's sample count — and each used to carry
//! its own copy of the trim/parse/validate/warn dance. This module is
//! the single parsing path, so an invalid value warns identically (and
//! exactly once per variable per process) no matter which layer reads
//! it first, and a typo can never silently change behaviour.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::Mutex;

/// Warn on stderr the first time `var` is reported invalid; repeated
/// reads of the same broken variable stay quiet so a sweep does not
/// spray one warning per worker.
fn warn_once(var: &str, msg: &str) {
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let mut warned = match WARNED.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if warned.insert(var.to_string()) {
        eprintln!("{msg}");
    }
}

/// `var` parsed with `FromStr` after trimming. `None` when unset or
/// unparseable — for knobs where an invalid value is silently ignored
/// (seeds, retry budgets).
pub fn parsed<T: FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok())
}

/// `var` parsed as a positive integer (>= 1). Returns `None` when the
/// variable is unset *or* invalid; an invalid value (zero, negative,
/// non-numeric) additionally warns once per variable on stderr, naming
/// `fallback` so the user can see what takes effect instead.
pub fn positive_or_warn(var: &str, fallback: &str) -> Option<usize> {
    let v = std::env::var(var).ok()?;
    match v.trim().parse::<usize>().ok().filter(|n| *n >= 1) {
        Some(n) => Some(n),
        None => {
            warn_once(
                var,
                &format!(
                    "warning: ignoring invalid {var}={v:?} \
                     (expected a positive integer); using {fallback}"
                ),
            );
            None
        }
    }
}

/// Is `var` set to the literal `"1"`? The convention every boolean
/// `MPSTREAM_*` switch uses (e.g. `MPSTREAM_TRACE_CANONICAL`).
pub fn flag_enabled(var: &str) -> bool {
    std::env::var(var).map(|v| v == "1").unwrap_or(false)
}

/// `var` as a trimmed non-empty string. `None` when unset, empty, or
/// whitespace — for path/name knobs where "" means "not configured".
pub fn string(var: &str) -> Option<String> {
    std::env::var(var)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: the process environment is
    // global and cargo runs tests concurrently.

    #[test]
    fn positive_or_warn_accepts_only_positive_integers() {
        let var = "MPSTREAM_TEST_ENV_POSITIVE";
        assert_eq!(positive_or_warn(var, "x"), None, "unset");
        std::env::set_var(var, " 8 ");
        assert_eq!(positive_or_warn(var, "x"), Some(8));
        for bad in ["0", "abc", "", "-2", "1.5"] {
            std::env::set_var(var, bad);
            assert_eq!(positive_or_warn(var, "x"), None, "{bad:?} is invalid");
        }
        std::env::remove_var(var);
    }

    #[test]
    fn parsed_trims_and_rejects_garbage() {
        let var = "MPSTREAM_TEST_ENV_PARSED";
        assert_eq!(parsed::<u64>(var), None);
        std::env::set_var(var, " 42 ");
        assert_eq!(parsed::<u64>(var), Some(42));
        std::env::set_var(var, "many");
        assert_eq!(parsed::<u64>(var), None);
        std::env::remove_var(var);
    }

    #[test]
    fn string_trims_and_drops_empty() {
        let var = "MPSTREAM_TEST_ENV_STRING";
        assert_eq!(string(var), None);
        std::env::set_var(var, "  /tmp/tenants.jsonl ");
        assert_eq!(string(var).as_deref(), Some("/tmp/tenants.jsonl"));
        std::env::set_var(var, "   ");
        assert_eq!(string(var), None, "whitespace-only reads as unset");
        std::env::remove_var(var);
    }

    #[test]
    fn flag_enabled_requires_the_literal_one() {
        let var = "MPSTREAM_TEST_ENV_FLAG";
        assert!(!flag_enabled(var));
        std::env::set_var(var, "1");
        assert!(flag_enabled(var));
        std::env::set_var(var, "true");
        assert!(!flag_enabled(var), "only \"1\" enables");
        std::env::remove_var(var);
    }
}
