//! The benchmark runner: executes one [`BenchConfig`] on one device the
//! way MP-STREAM's host program does.
//!
//! Protocol (per configuration): allocate the arrays, initialize the
//! sources with known patterns and transfer them (untimed, as STREAM
//! does), build the kernel (FPGA synthesis may fail — that is a result,
//! not a crash), one warm-up launch, `ntimes` timed launches keeping the
//! best, then STREAM-style validation of the destination array against
//! the closed-form expectation. Bandwidth divides STREAM-counted bytes
//! by the best *wall* time of one launch (queue→end), which is what
//! makes small arrays overhead-bound exactly as in the paper's figures.

use crate::config::{BenchConfig, StreamLocation};
use crate::trace;
use kernelgen::{DataType, KernelConfig, StreamOp};
use mpcl::{
    Buffer, BuildCache, CacheStatus, ClError, CmdKind, CmdRecord, CommandQueue, Context, Device,
    FaultPlan, Kernel, MemFlags, Program, ResourceUsage,
};
use std::sync::Arc;

/// The outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Device name the run executed on.
    pub device: String,
    /// STREAM-counted payload bytes per kernel invocation.
    pub bytes_moved: u64,
    /// Best (minimum) wall time of a timed launch, ns (queue→end).
    pub best_wall_ns: f64,
    /// Mean wall time over the timed launches, ns.
    pub avg_wall_ns: f64,
    /// Best device-only execution time (start→end), ns.
    pub best_kernel_ns: f64,
    /// Validation verdict: `None` when skipped, `Some(true)` when every
    /// element matched.
    pub validated: Option<bool>,
    /// Device DRAM bus traffic of one launch, bytes — includes waste
    /// (partial segments, fills, writebacks), so it can exceed
    /// `bytes_moved`.
    pub dram_bytes_per_launch: u64,
    /// Energy of the best launch, joules (when the target has a power
    /// model): board power over the wall time plus per-byte DRAM energy.
    pub energy_j: Option<f64>,
    /// Synthesis clock, when the target reports one (FPGAs).
    pub fmax_mhz: Option<f64>,
    /// FPGA resource usage, when reported.
    pub resources: Option<ResourceUsage>,
    /// Compiler/synthesis log.
    pub build_log: String,
    /// Modelled synthesis/compile time of the configuration, ns — a
    /// property of the configuration, identical whether the artifact
    /// came from a fresh build or the cache.
    pub build_ns: f64,
    /// Total simulated host↔device transfer time (writes + reads), ns.
    pub xfer_ns: f64,
    /// Total simulated device execution time of completed (non-aborted)
    /// kernel launches, ns, summed over warm-up and timed repetitions.
    pub kernel_ns: f64,
    /// Whether the build artifact came from the shared cache. Excluded
    /// from equality: which worker builds first is a scheduling fact.
    pub cache: CacheStatus,
    /// DRAM row-buffer hits across completed kernel launches.
    pub row_hits: u64,
    /// DRAM row-buffer misses (row conflict) across completed launches.
    pub row_misses: u64,
    /// DRAM row-buffer empty activations across completed launches.
    pub row_empty: u64,
    /// Channel/pipe stall time summed over completed kernel launches,
    /// ns (zero for single-stage kernels).
    pub stall_ns: f64,
}

impl PartialEq for Measurement {
    fn eq(&self, other: &Self) -> bool {
        // `cache` is deliberately excluded: hit-vs-miss depends on
        // which worker reached the configuration (or retry attempt)
        // first, not on what was measured.
        self.device == other.device
            && self.bytes_moved == other.bytes_moved
            && self.best_wall_ns == other.best_wall_ns
            && self.avg_wall_ns == other.avg_wall_ns
            && self.best_kernel_ns == other.best_kernel_ns
            && self.validated == other.validated
            && self.dram_bytes_per_launch == other.dram_bytes_per_launch
            && self.energy_j == other.energy_j
            && self.fmax_mhz == other.fmax_mhz
            && self.resources == other.resources
            && self.build_log == other.build_log
            && self.build_ns == other.build_ns
            && self.xfer_ns == other.xfer_ns
            && self.kernel_ns == other.kernel_ns
            && self.row_hits == other.row_hits
            && self.row_misses == other.row_misses
            && self.row_empty == other.row_empty
            && self.stall_ns == other.stall_ns
    }
}

impl Measurement {
    /// Sustained bandwidth, GB/s (1 GB = 1e9 B), from the best wall time.
    pub fn gbps(&self) -> f64 {
        self.bytes_moved as f64 / self.best_wall_ns
    }

    /// Device-only bandwidth, GB/s, excluding launch overhead.
    pub fn kernel_gbps(&self) -> f64 {
        self.bytes_moved as f64 / self.best_kernel_ns
    }

    /// Energy efficiency, payload gigabytes per joule (when the target
    /// has a power model).
    pub fn gb_per_joule(&self) -> Option<f64> {
        self.energy_j.map(|e| self.bytes_moved as f64 / 1e9 / e)
    }

    /// DRAM traffic amplification: bus bytes per payload byte (1.0 is
    /// ideal; strided patterns and write-allocate fills push it up).
    pub fn traffic_amplification(&self) -> f64 {
        self.dram_bytes_per_launch as f64 / self.bytes_moved as f64
    }

    /// DRAM row-buffer hit rate over the completed kernel launches
    /// (1.0 when the model recorded no row activity).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_empty;
        if total == 0 {
            1.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// A fabricated measurement with the given bandwidth, for testing
    /// search strategies without a device (everything but `gbps()` is
    /// placeholder).
    pub fn synthetic(gbps: f64) -> Measurement {
        let bytes_moved = 1u64 << 20;
        Measurement {
            device: "synthetic".into(),
            bytes_moved,
            best_wall_ns: bytes_moved as f64 / gbps.max(f64::MIN_POSITIVE),
            avg_wall_ns: bytes_moved as f64 / gbps.max(f64::MIN_POSITIVE),
            best_kernel_ns: bytes_moved as f64 / gbps.max(f64::MIN_POSITIVE),
            validated: None,
            dram_bytes_per_launch: bytes_moved,
            energy_j: None,
            fmax_mhz: None,
            resources: None,
            build_log: String::new(),
            build_ns: 0.0,
            xfer_ns: 0.0,
            kernel_ns: 0.0,
            cache: CacheStatus::Uncached,
            row_hits: 0,
            row_misses: 0,
            row_empty: 0,
            stall_ns: 0.0,
        }
    }
}

/// Runs benchmark configurations on one device. Clones share the device
/// and the build cache, so a clone per worker thread is cheap.
#[derive(Clone)]
pub struct Runner {
    device: Device,
    cache: Option<Arc<BuildCache>>,
    faults: Option<Arc<FaultPlan>>,
}

impl Runner {
    /// Wrap a device.
    pub fn new(device: Device) -> Self {
        Runner {
            device,
            cache: None,
            faults: None,
        }
    }

    /// Runner for one of the four standard paper targets.
    pub fn for_target(id: targets::TargetId) -> Self {
        Runner::new(targets::standard_device(id))
    }

    /// Attach a build-artifact cache: repeated configurations skip the
    /// synthesis model (see [`mpcl::BuildCache`] for keying).
    pub fn with_cache(mut self, cache: Arc<BuildCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached build cache, if any.
    pub fn cache(&self) -> Option<&Arc<BuildCache>> {
        self.cache.as_ref()
    }

    /// Attach (or detach) a fault-injection plan: every run's context is
    /// created with it, so builds and launches roll the plan's dice.
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// The device this runner drives.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Execute one configuration. Build failures (FPGA synthesis) and
    /// invalid configurations surface as `Err`.
    ///
    /// When the calling thread is armed for tracing
    /// ([`trace::begin_task`]), the attempt's build and queue activity
    /// is recorded on the virtual timeline — even for failed attempts,
    /// so aborted launches keep their timestamps in the trace.
    pub fn run(&self, bc: &BenchConfig) -> Result<Measurement, ClError> {
        let ctx = Context::with_faults(self.device.clone(), self.faults.clone());
        let queue = if bc.validate {
            CommandQueue::new(&ctx)
        } else {
            CommandQueue::new_timing_only(&ctx)
        };
        let mut build: Option<(f64, CacheStatus)> = None;
        let result = self.run_inner(bc, &ctx, &queue, &mut build);
        let log = queue.take_log();
        self.emit_trace(&queue, &log, build);
        result.map(|mut m| {
            if let Some((synthesis_ns, status)) = build {
                m.build_ns = synthesis_ns;
                m.cache = status;
            }
            for rec in &log {
                match rec.kind {
                    CmdKind::Write | CmdKind::Read => m.xfer_ns += rec.event.duration_ns(),
                    CmdKind::Kernel if !rec.aborted => {
                        m.kernel_ns += rec.event.duration_ns();
                        m.row_hits += rec.event.row_hits;
                        m.row_misses += rec.event.row_misses;
                        m.row_empty += rec.event.row_empty;
                        m.stall_ns += rec.event.stall_ns;
                    }
                    _ => {}
                }
            }
            m
        })
    }

    /// Record this attempt's build span, cache status, queue-command
    /// spans and DRAM row counters, then advance the virtual clock past
    /// everything the attempt simulated. No-op on unarmed threads.
    fn emit_trace(
        &self,
        queue: &CommandQueue,
        log: &[CmdRecord],
        build: Option<(f64, CacheStatus)>,
    ) {
        if !trace::is_active() {
            return;
        }
        let base = trace::vclock_ns();
        let mut synth = 0.0;
        if let Some((synthesis_ns, status)) = build {
            synth = synthesis_ns;
            // The span duration is the configuration's synthesis cost
            // whether or not this worker actually built it — the trace
            // shows the modelled timeline, and stays byte-identical
            // across worker counts. Which worker won the build is a
            // wall fact, recorded as such.
            trace::span(trace::TID_BUILD, "build", base, synthesis_ns, Vec::new);
            trace::wall_instant("cache", || trace::args([("status", status.label().into())]));
        }
        let q0 = base + synth;
        for rec in log {
            let ev = &rec.event;
            trace::span(
                trace::TID_QUEUE,
                rec.kind.name(),
                q0 + ev.queued_ns,
                ev.end_ns - ev.queued_ns,
                || {
                    if rec.aborted {
                        vec![("aborted".to_string(), true.into())]
                    } else {
                        Vec::new()
                    }
                },
            );
            if rec.kind == CmdKind::Kernel {
                trace::counter(trace::TID_QUEUE, "dram_rows", q0 + ev.end_ns, || {
                    trace::args([
                        ("hits", ev.row_hits.into()),
                        ("misses", ev.row_misses.into()),
                        ("empty", ev.row_empty.into()),
                    ])
                });
                if ev.stall_ns > 0.0 {
                    // Render the FIFO backpressure of a channeled launch
                    // as its own span, nested at the tail of the kernel
                    // span (the blocked side idles while the other
                    // drains).
                    trace::span(
                        trace::TID_QUEUE,
                        "channel_stall",
                        q0 + ev.end_ns - ev.stall_ns,
                        ev.stall_ns,
                        Vec::new,
                    );
                }
            }
        }
        trace::advance_vclock(synth + queue.now_ns());
    }

    fn run_inner(
        &self,
        bc: &BenchConfig,
        ctx: &Context,
        queue: &CommandQueue,
        build: &mut Option<(f64, CacheStatus)>,
    ) -> Result<Measurement, ClError> {
        let kernel_cfg = &bc.kernel;
        let bytes = kernel_cfg.array_bytes();
        let a = Buffer::new(ctx, MemFlags::WriteOnly, bytes)?;
        let b = Buffer::new(ctx, MemFlags::ReadOnly, bytes)?;
        let c = if kernel_cfg.op.uses_c() {
            Some(Buffer::new(ctx, MemFlags::ReadOnly, bytes)?)
        } else {
            None
        };

        // Initialize sources (untimed) when running functionally.
        if bc.validate {
            queue.enqueue_write(&b, &init_array(kernel_cfg, Source::B))?;
            if let Some(c) = &c {
                queue.enqueue_write(c, &init_array(kernel_cfg, Source::C))?;
            }
        }

        let program = match &self.cache {
            Some(cache) => Program::build_cached(ctx, kernel_cfg.clone(), cache)?,
            None => Program::build(ctx, kernel_cfg.clone())?,
        };
        *build = Some((program.artifact().synthesis_ns, program.cache_status()));
        let kernel = Kernel::new(&program, &a, &b, c.as_ref())?;

        for _ in 0..bc.warmup {
            queue.enqueue_kernel(&kernel)?;
        }

        let mut best_wall = f64::INFINITY;
        let mut best_kernel = f64::INFINITY;
        let mut sum_wall = 0.0;
        let mut dram_bytes = 0u64;
        for _ in 0..bc.ntimes.max(1) {
            let wall = match bc.location {
                StreamLocation::DeviceGlobal => {
                    let ev = queue.enqueue_kernel(&kernel)?;
                    best_kernel = best_kernel.min(ev.duration_ns());
                    dram_bytes = ev.dram_bytes;
                    ev.wall_ns()
                }
                StreamLocation::HostOverLink => {
                    // Arrays cross the link every repetition: source
                    // download(s), execute, result upload.
                    let t0 = queue.now_ns();
                    if bc.validate {
                        queue.enqueue_write(&b, &init_array(kernel_cfg, Source::B))?;
                        if let Some(c) = &c {
                            queue.enqueue_write(c, &init_array(kernel_cfg, Source::C))?;
                        }
                    } else {
                        // Timing-only: model the transfers with zero-fill.
                        queue.enqueue_write(&b, &vec![0u8; bytes as usize])?;
                        if let Some(c) = &c {
                            queue.enqueue_write(c, &vec![0u8; bytes as usize])?;
                        }
                    }
                    let ev = queue.enqueue_kernel(&kernel)?;
                    best_kernel = best_kernel.min(ev.duration_ns());
                    dram_bytes = ev.dram_bytes;
                    let mut sink = vec![0u8; bytes as usize];
                    queue.enqueue_read(&a, &mut sink)?;
                    queue.now_ns() - t0
                }
            };
            best_wall = best_wall.min(wall);
            sum_wall += wall;
        }

        let validated = if bc.validate {
            let mut out = vec![0u8; bytes as usize];
            queue.enqueue_read(&a, &mut out)?;
            Some(check_results(kernel_cfg, &out))
        } else {
            None
        };

        let energy_j = self
            .device
            .power_model()
            .map(|p| p.energy_j(best_wall, dram_bytes));

        Ok(Measurement {
            device: self.device.info().name.clone(),
            bytes_moved: kernel_cfg.bytes_moved(),
            best_wall_ns: best_wall,
            avg_wall_ns: sum_wall / bc.ntimes.max(1) as f64,
            best_kernel_ns: best_kernel,
            dram_bytes_per_launch: dram_bytes,
            energy_j,
            validated,
            fmax_mhz: program.artifact().fmax_mhz,
            resources: program.artifact().resources,
            build_log: program.artifact().build_log.clone(),
            // Filled by `run` from the build record and command log.
            build_ns: 0.0,
            xfer_ns: 0.0,
            kernel_ns: 0.0,
            cache: CacheStatus::Uncached,
            row_hits: 0,
            row_misses: 0,
            row_empty: 0,
            stall_ns: 0.0,
        })
    }
}

/// Which source array to initialize.
#[derive(Debug, Clone, Copy)]
enum Source {
    B,
    C,
}

/// Deterministic init patterns with closed-form expected results —
/// kept small so `q * b + c` never overflows an i32.
fn src_values(i: u64, which: Source) -> i64 {
    match which {
        Source::B => (i % 1021) as i64 + 1,
        Source::C => (i % 511) as i64 * 2,
    }
}

fn init_array(cfg: &KernelConfig, which: Source) -> Vec<u8> {
    let n = cfg.n_words;
    let mut out = vec![0u8; (n * cfg.dtype.word_bytes()) as usize];
    match cfg.dtype {
        DataType::I32 => {
            for i in 0..n {
                let v = src_values(i, which) as i32;
                out[(i * 4) as usize..(i * 4 + 4) as usize].copy_from_slice(&v.to_ne_bytes());
            }
        }
        DataType::F64 => {
            for i in 0..n {
                let v = src_values(i, which) as f64;
                out[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&v.to_ne_bytes());
            }
        }
    }
    out
}

/// Expected destination value (the closed form STREAM validates against).
fn expected(cfg: &KernelConfig, i: u64) -> f64 {
    let b = src_values(i, Source::B) as f64;
    let c = src_values(i, Source::C) as f64;
    let q = match cfg.dtype {
        DataType::I32 => cfg.q as i64 as f64,
        DataType::F64 => cfg.q,
    };
    match cfg.op {
        StreamOp::Copy => b,
        StreamOp::Scale => q * b,
        StreamOp::Add => b + c,
        StreamOp::Triad => b + q * c,
        _ => unreachable!("HPCC ops validate via expected_hpcc"),
    }
}

/// Host replay of the HPCC-family kernels from the closed-form init
/// patterns — computed from `src_values` directly, so it is an oracle
/// independent of the interpreter the simulated device executed.
fn expected_hpcc(cfg: &KernelConfig) -> Vec<u8> {
    let n = cfg.n_words;
    let w = cfg.dtype.word_bytes();
    let mut out = vec![0u8; (n * w) as usize];
    let (rows, cols) = cfg.matrix_shape();
    match cfg.op {
        StreamOp::RandomAccess => {
            // XOR-scatter of b into a zeroed table.
            let mut acc = vec![0i32; n as usize];
            for i in 0..n {
                acc[kernelgen::gups_index(i, n) as usize] ^= src_values(i, Source::B) as i32;
            }
            for (i, v) in acc.iter().enumerate() {
                out[i * 4..i * 4 + 4].copy_from_slice(&v.to_ne_bytes());
            }
        }
        StreamOp::Ptrans => {
            for i in 0..n {
                let (r, c) = (i / cols, i % cols);
                let dst = ((c * rows + r) * w) as usize;
                match cfg.dtype {
                    DataType::I32 => out[dst..dst + 4]
                        .copy_from_slice(&(src_values(i, Source::B) as i32).to_ne_bytes()),
                    DataType::F64 => out[dst..dst + 8]
                        .copy_from_slice(&(src_values(i, Source::B) as f64).to_ne_bytes()),
                }
            }
        }
        StreamOp::DgemmLite => {
            // Wrapping i32 matmul of the init patterns; the `c` operand
            // is its first cols x cols elements.
            for i in 0..n {
                let (r, c) = (i / cols, i % cols);
                let mut acc = 0i32;
                for k in 0..cols {
                    let bv = src_values(r * cols + k, Source::B) as i32;
                    let cv = src_values(k * cols + c, Source::C) as i32;
                    acc = acc.wrapping_add(bv.wrapping_mul(cv));
                }
                out[(i * 4) as usize..(i * 4 + 4) as usize].copy_from_slice(&acc.to_ne_bytes());
            }
        }
        _ => unreachable!("stream ops use the closed form"),
    }
    out
}

/// STREAM-style full-array validation.
fn check_results(cfg: &KernelConfig, a: &[u8]) -> bool {
    if !cfg.op.is_stream() {
        return a == expected_hpcc(cfg);
    }
    let n = cfg.n_words;
    match cfg.dtype {
        DataType::I32 => (0..n).all(|i| {
            let got = i32::from_ne_bytes(
                a[(i * 4) as usize..(i * 4 + 4) as usize]
                    .try_into()
                    .expect("4"),
            );
            got as f64 == expected(cfg, i)
        }),
        DataType::F64 => (0..n).all(|i| {
            let got = f64::from_ne_bytes(
                a[(i * 8) as usize..(i * 8 + 8) as usize]
                    .try_into()
                    .expect("8"),
            );
            (got - expected(cfg, i)).abs() <= 1e-9 * expected(cfg, i).abs().max(1.0)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AoclOpts, LoopMode, VectorWidth, VendorOpts};
    use targets::TargetId;

    fn quick(op: StreamOp, n_words: u64, target: TargetId) -> Measurement {
        let mut kernel = KernelConfig::baseline(op, n_words);
        if target.is_fpga() {
            kernel.loop_mode = LoopMode::SingleWorkItemFlat;
        }
        Runner::for_target(target)
            .run(&BenchConfig::new(kernel))
            .expect("run ok")
    }

    #[test]
    fn copy_runs_and_validates_on_all_targets() {
        for target in TargetId::ALL {
            let m = quick(StreamOp::Copy, 1 << 14, target);
            assert_eq!(m.validated, Some(true), "{target:?}");
            assert!(m.gbps() > 0.0);
            assert!(m.best_wall_ns >= m.best_kernel_ns);
        }
    }

    #[test]
    fn all_ops_validate_f64_too() {
        for op in StreamOp::ALL {
            let mut kernel = KernelConfig::baseline(op, 1 << 12);
            kernel.dtype = DataType::F64;
            kernel.q = 2.5;
            let m = Runner::for_target(TargetId::Cpu)
                .run(&BenchConfig::new(kernel))
                .expect("ok");
            assert_eq!(m.validated, Some(true), "{op:?}");
        }
    }

    #[test]
    fn vectorized_triad_validates() {
        let mut kernel = KernelConfig::baseline(StreamOp::Triad, 1 << 14);
        kernel.vector_width = VectorWidth::new(8).unwrap();
        kernel.loop_mode = LoopMode::SingleWorkItemFlat;
        let m = Runner::for_target(TargetId::FpgaAocl)
            .run(&BenchConfig::new(kernel))
            .expect("ok");
        assert_eq!(m.validated, Some(true));
        assert!(m.fmax_mhz.is_some(), "FPGA reports a clock");
        assert!(m.resources.is_some(), "FPGA reports resources");
    }

    #[test]
    fn build_failure_is_an_error_result() {
        let mut kernel = KernelConfig::baseline(StreamOp::Copy, 1 << 14);
        kernel.loop_mode = LoopMode::NdRange;
        kernel.reqd_work_group_size = true;
        kernel.vector_width = VectorWidth::new(16).unwrap();
        kernel.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 16,
            num_compute_units: 16,
        });
        let err = Runner::for_target(TargetId::FpgaAocl).run(&BenchConfig::new(kernel));
        assert!(matches!(err, Err(ClError::BuildProgramFailure(_))));
    }

    #[test]
    fn timing_only_skips_validation() {
        let bc = BenchConfig::copy_of_bytes(1 << 20).with_validation(false);
        let m = Runner::for_target(TargetId::Gpu).run(&bc).expect("ok");
        assert_eq!(m.validated, None);
    }

    #[test]
    fn host_over_link_is_slower_than_device_global() {
        let n = 1 << 18; // 1 MiB arrays
        let device = BenchConfig::copy_of_bytes(n * 4);
        let link = BenchConfig::copy_of_bytes(n * 4).over_link();
        let r = Runner::for_target(TargetId::Gpu);
        let dg = r.run(&device).expect("ok");
        let hl = r.run(&link).expect("ok");
        assert!(
            hl.gbps() < dg.gbps() / 2.0,
            "link {} vs device {}",
            hl.gbps(),
            dg.gbps()
        );
    }

    #[test]
    fn best_of_reports_minimum() {
        let bc = BenchConfig::copy_of_bytes(1 << 16).with_ntimes(5);
        let m = Runner::for_target(TargetId::Cpu).run(&bc).expect("ok");
        assert!(m.best_wall_ns <= m.avg_wall_ns);
    }

    #[test]
    fn init_patterns_do_not_overflow_i32() {
        // q * b + c max: 3 * 1021 + 1020 << i32::MAX.
        let cfg = KernelConfig::baseline(StreamOp::Triad, 4096);
        for i in [0u64, 1, 1020, 1021, 4095] {
            assert!(expected(&cfg, i) < i32::MAX as f64);
        }
    }
}
