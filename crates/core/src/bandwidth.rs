//! Bandwidth units and labels.
//!
//! The paper mixes units: Figures 1, 2 and 4b report GB/s, Figures 3 and
//! 4a report KB/s (both decimal, 1 GB = 1e9 B, as STREAM does), and the
//! array-size axis is labelled in (decimal) MB.

/// Convert GB/s to KB/s (the unit of Figures 3 and 4a).
pub fn gbps_to_kbps(gbps: f64) -> f64 {
    gbps * 1e6
}

/// Bytes for an array-size axis label in decimal MB.
pub fn mb_to_bytes(mb: f64) -> u64 {
    (mb * 1e6).round() as u64
}

/// Axis label for an array size in bytes, matching the paper's style
/// (`0.001`, `0.01`, ..., `100` MB).
pub fn mb_label(bytes: u64) -> String {
    let mb = bytes as f64 / 1e6;
    if mb >= 1.0 {
        format!("{mb:.0}")
    } else if mb >= 0.01 {
        format!("{mb:.2}")
    } else {
        format!("{mb:.3}")
    }
}

/// The array sizes (bytes per array) swept in Figures 1a: 1 KiB to
/// 64 MiB in powers of four (nine points spanning the paper's
/// 0.001–100 MB axis).
pub fn fig1_sizes() -> Vec<u64> {
    (0..9).map(|i| 1024u64 << (2 * i)).collect()
}

/// The extended size sweep of Figure 2 (to ~1 GB).
pub fn fig2_sizes() -> Vec<u64> {
    (0..11).map(|i| 1024u64 << (2 * i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(gbps_to_kbps(2.5), 2.5e6);
        assert_eq!(mb_to_bytes(4.0), 4_000_000);
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(mb_label(1024), "0.001");
        assert_eq!(mb_label(4_000_000), "4");
        assert_eq!(mb_label(65_536), "0.07");
    }

    #[test]
    fn size_sweeps() {
        let s = fig1_sizes();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 1 << 10);
        assert_eq!(s[8], 64 << 20);
        let s2 = fig2_sizes();
        assert_eq!(s2.len(), 11);
        assert_eq!(s2[10], 1 << 30);
    }
}
