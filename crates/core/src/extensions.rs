//! Extension experiments beyond the paper's six figures — each grounded
//! in a sentence of the paper's own text:
//!
//! * [`ext_energy`] — energy efficiency (§IV: "one area where FPGAs can
//!   still win in spite of the higher achievable bandwidths on GPUs");
//! * [`ext_dtype`] — the data-type knob (§III: "Using doubles for the
//!   copy kernel translates into a 64-bit coalesced access");
//! * [`ext_hmc`] — the Hybrid Memory Cube outlook (§IV: HMC boards "can
//!   change the picture we present in this paper considerably");
//! * [`ext_host_link`] — the stream source/destination knob (§III).

use crate::config::BenchConfig;
use crate::report::Table;
use crate::runner::{Measurement, Runner};
use kernelgen::{AccessPattern, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth};
use targets::{arria10_device, hmc_device, TargetId};

/// A rendered extension experiment.
#[derive(Debug, Clone)]
pub struct ExtensionReport {
    /// Short id used in filenames (`ext-energy`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Narrative conclusions drawn from the numbers (checked by tests).
    pub notes: Vec<String>,
}

fn copy_cfg(target_is_fpga: bool, bytes: u64, width: u32) -> KernelConfig {
    let mut cfg = KernelConfig::baseline(StreamOp::Copy, bytes / 4);
    cfg.vector_width = VectorWidth::new(width).expect("allowed width");
    if target_is_fpga {
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
    }
    cfg
}

fn run(runner: &Runner, cfg: KernelConfig) -> Measurement {
    runner
        .run(&BenchConfig::new(cfg).with_ntimes(2).with_validation(false))
        .expect("extension run")
}

/// Energy efficiency of a 16 MB COPY per target, at each target's *best
/// practical* configuration (vectorized for the FPGAs), plus the
/// HMC-outlook board. Reports GB/s, energy per launch and GB/J.
///
/// An honest finding: with the 2015-era DDR3 FPGA boards the GPU's huge
/// bandwidth amortizes its 200 W and (narrowly) wins GB/J on a pure
/// streaming kernel; the paper's "FPGAs can still win" conjecture comes
/// true with the HMC-class memory system it points to.
pub fn ext_energy() -> ExtensionReport {
    const BYTES: u64 = 16 << 20;
    let mut table = Table::new(&[
        "target",
        "config",
        "GB/s",
        "mJ / launch",
        "GB/J",
        "traffic amp",
    ]);
    let mut best: Vec<(String, f64)> = Vec::new();

    let mut targets: Vec<(String, Runner, bool)> = TargetId::ALL
        .into_iter()
        .map(|t| (t.label().to_string(), Runner::for_target(t), t.is_fpga()))
        .collect();
    targets.push(("hmc-fpga".into(), Runner::new(hmc_device()), true));

    for (label, runner, is_fpga) in &mut targets {
        let width = if *is_fpga { 16 } else { 1 };
        let m = run(runner, copy_cfg(*is_fpga, BYTES, width));
        let e = m.energy_j.expect("all targets here have power models");
        let eff = m.gb_per_joule().expect("power model present");
        table.row(&[
            label.clone(),
            format!("copy vec{width}"),
            format!("{:.2}", m.gbps()),
            format!("{:.2}", e * 1e3),
            format!("{eff:.3}"),
            format!("{:.2}x", m.traffic_amplification()),
        ]);
        best.push((label.clone(), eff));
    }

    best.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let notes = vec![
        format!(
            "most energy-efficient target: {} ({:.3} GB/J)",
            best[0].0, best[0].1
        ),
        "with 2015 DDR3 boards the GPU amortizes its 200 W; the HMC-class \
         memory the paper anticipates flips the ranking to the FPGA"
            .into(),
    ];
    ExtensionReport {
        id: "ext-energy",
        title: "Energy efficiency of a 16 MB COPY (paper §IV outlook)".into(),
        table,
        notes,
    }
}

/// The data-type knob: int (32-bit) vs double (64-bit) COPY on every
/// target at 4 MB. Doubles halve the element count for the same bytes
/// and double each access's width — scalar FPGA pipelines gain almost
/// 2x, targets that are already bandwidth-bound barely move.
pub fn ext_dtype() -> ExtensionReport {
    const BYTES: u64 = 4 << 20;
    let mut table = Table::new(&["target", "int32 GB/s", "double GB/s", "double/int"]);
    let mut fpga_gain = 0.0f64;
    for target in TargetId::ALL {
        let runner = Runner::for_target(target);
        let mk = |dtype: DataType| {
            let mut cfg = KernelConfig::baseline(StreamOp::Copy, BYTES / dtype.word_bytes());
            cfg.dtype = dtype;
            if target.is_fpga() {
                cfg.loop_mode = LoopMode::SingleWorkItemFlat;
            }
            cfg
        };
        let mi = run(&runner, mk(DataType::I32));
        let mf = run(&runner, mk(DataType::F64));
        let ratio = mf.gbps() / mi.gbps();
        if target == TargetId::FpgaAocl {
            fpga_gain = ratio;
        }
        table.row(&[
            target.label().to_string(),
            format!("{:.2}", mi.gbps()),
            format!("{:.2}", mf.gbps()),
            format!("{ratio:.2}x"),
        ]);
    }
    ExtensionReport {
        id: "ext-dtype",
        title: "Data type: 32-bit int vs 64-bit double COPY at 4 MB (paper §III)".into(),
        table,
        notes: vec![format!(
            "aocl gains {fpga_gain:.2}x from 64-bit accesses (wider scalar pipeline)"
        )],
    }
}

/// The HMC outlook: the AOCL flow in front of a Hybrid Memory Cube,
/// swept over vector widths against the DDR3 board, plus the strided
/// comparison.
pub fn ext_hmc() -> ExtensionReport {
    const BYTES: u64 = 4 << 20;
    let ddr = Runner::for_target(TargetId::FpgaAocl);
    let hmc = Runner::new(hmc_device());

    let mut table = Table::new(&["config", "ddr3 GB/s", "hmc GB/s", "hmc/ddr3"]);
    let mut w16_gain = 0.0f64;
    for width in [1u32, 4, 16] {
        let md = run(&ddr, copy_cfg(true, BYTES, width));
        let mh = run(&hmc, copy_cfg(true, BYTES, width));
        let ratio = mh.gbps() / md.gbps();
        if width == 16 {
            w16_gain = ratio;
        }
        table.row(&[
            format!("copy vec{width} contig"),
            format!("{:.2}", md.gbps()),
            format!("{:.2}", mh.gbps()),
            format!("{ratio:.2}x"),
        ]);
    }
    // Strided: HMC's small closed pages tolerate column-major access.
    let mut strided = copy_cfg(true, BYTES, 1);
    strided.pattern = AccessPattern::ColMajor { cols: None };
    let md = run(&ddr, strided.clone());
    let mh = run(&hmc, strided);
    table.row(&[
        "copy vec1 col-major".into(),
        format!("{:.3}", md.gbps()),
        format!("{:.3}", mh.gbps()),
        format!("{:.2}x", mh.gbps() / md.gbps()),
    ]);

    ExtensionReport {
        id: "ext-hmc",
        title: "Hybrid Memory Cube outlook: AOCL flow on HMC vs DDR3 (paper §IV)".into(),
        table,
        notes: vec![format!(
            "at vector width 16 the HMC board sustains {w16_gain:.2}x the DDR3 board"
        )],
    }
}

/// The stream source/destination knob: device-global vs host-over-link
/// COPY at 16 MB on every target.
pub fn ext_host_link() -> ExtensionReport {
    const BYTES: u64 = 16 << 20;
    let mut table = Table::new(&[
        "target",
        "device-global GB/s",
        "host-over-link GB/s",
        "slowdown",
    ]);
    for target in TargetId::ALL {
        let runner = Runner::for_target(target);
        let mut device = BenchConfig::copy_of_bytes(BYTES).with_validation(false);
        let mut link = BenchConfig::copy_of_bytes(BYTES)
            .with_validation(false)
            .over_link();
        if target.is_fpga() {
            device.kernel.loop_mode = LoopMode::SingleWorkItemFlat;
            link.kernel.loop_mode = LoopMode::SingleWorkItemFlat;
        }
        let dg = runner.run(&device).expect("device-global");
        let hl = runner.run(&link).expect("host-over-link");
        table.row(&[
            target.label().to_string(),
            format!("{:.2}", dg.gbps()),
            format!("{:.2}", hl.gbps()),
            format!("{:.1}x", dg.gbps() / hl.gbps()),
        ]);
    }
    ExtensionReport {
        id: "ext-host-link",
        title: "Stream source/destination: device DRAM vs host over PCIe (paper §III)".into(),
        table,
        notes: vec!["the GPU's 336 GB/s DRAM collapses to the ~12 GB/s PCIe rate".into()],
    }
}

/// The required-work-group-size knob (§III: "allows the compiler to
/// optimize the generated code"): sweep the NDRange work-group size on
/// the CPU and GPU. Groups below the GPU's warp width throttle
/// occupancy; past one warp the knob barely matters for a streaming
/// kernel — which is itself the useful finding.
pub fn ext_wgsize() -> ExtensionReport {
    const BYTES: u64 = 4 << 20;
    let mut table = Table::new(&["work-group", "cpu GB/s", "gpu GB/s"]);
    let cpu = Runner::for_target(TargetId::Cpu);
    let gpu = Runner::for_target(TargetId::Gpu);
    let mut gpu_small = 0.0;
    let mut gpu_big = 0.0;
    for wg in [4u32, 16, 64, 256, 1024] {
        let mk = || {
            let mut cfg = KernelConfig::baseline(StreamOp::Copy, BYTES / 4);
            cfg.work_group_size = wg;
            cfg.reqd_work_group_size = true;
            cfg
        };
        let mc = run(&cpu, mk());
        let mg = run(&gpu, mk());
        if wg == 4 {
            gpu_small = mg.gbps();
        }
        if wg == 1024 {
            gpu_big = mg.gbps();
        }
        table.row(&[
            wg.to_string(),
            format!("{:.2}", mc.gbps()),
            format!("{:.2}", mg.gbps()),
        ]);
    }
    ExtensionReport {
        id: "ext-wgsize",
        title: "Required work-group size sweep on CPU and GPU (paper §III)".into(),
        table,
        notes: vec![format!(
            "gpu: wg=1024 sustains {:.1}x the wg=4 rate; above one warp the knob is flat",
            gpu_big / gpu_small
        )],
    }
}

/// The "newer FPGA boards" outlook (paper §V: "we plan to update our
/// results with newer FPGA boards and OpenCL compiler versions"): the
/// 2015 Stratix V vs an Arria-10/DDR4 generation vs the HMC outlook, at
/// each board's best vector width.
pub fn ext_newer_board() -> ExtensionReport {
    const BYTES: u64 = 4 << 20;
    let boards: Vec<(&str, Runner)> = vec![
        (
            "stratix-v ddr3 (2015)",
            Runner::for_target(TargetId::FpgaAocl),
        ),
        ("arria-10 ddr4 (17.x)", Runner::new(arria10_device())),
        ("hmc outlook", Runner::new(hmc_device())),
    ];
    let mut table = Table::new(&[
        "board",
        "scalar GB/s",
        "vec16 GB/s",
        "fmax MHz",
        "peak GB/s",
    ]);
    let mut gains = Vec::new();
    for (label, runner) in &boards {
        let scalar = run(runner, copy_cfg(true, BYTES, 1));
        let wide = run(runner, copy_cfg(true, BYTES, 16));
        table.row(&[
            label.to_string(),
            format!("{:.2}", scalar.gbps()),
            format!("{:.2}", wide.gbps()),
            wide.fmax_mhz.map(|f| format!("{f:.0}")).unwrap_or_default(),
            format!("{:.1}", runner.device().info().peak_gbps),
        ]);
        gains.push(wide.gbps());
    }
    ExtensionReport {
        id: "ext-newer-board",
        title: "Newer FPGA boards: Stratix V vs Arria 10 vs HMC (paper §V)".into(),
        table,
        notes: vec![format!(
            "vectorized copy: {:.1} -> {:.1} -> {:.1} GB/s across board generations",
            gains[0], gains[1], gains[2]
        )],
    }
}

/// All extension experiments, in presentation order.
pub fn all_extensions() -> Vec<ExtensionReport> {
    vec![
        ext_energy(),
        ext_dtype(),
        ext_hmc(),
        ext_newer_board(),
        ext_host_link(),
        ext_wgsize(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_winner_is_hmc_fpga() {
        let r = ext_energy();
        assert_eq!(r.table.len(), 5, "four paper targets plus the HMC outlook");
        // The paper's conjecture comes true with the memory system it
        // anticipates: the HMC-class FPGA tops GB/J.
        assert!(r.notes[0].contains("hmc-fpga"), "winner: {}", r.notes[0]);
    }

    #[test]
    fn dtype_doubles_help_scalar_fpga_pipelines() {
        let r = ext_dtype();
        // aocl gain parsed into the note; assert > 1.4x.
        let gain: f64 = r.notes[0]
            .split_whitespace()
            .find_map(|w| w.strip_suffix('x').and_then(|v| v.parse().ok()))
            .expect("gain in note");
        assert!(gain > 1.4, "aocl f64 gain {gain}");
    }

    #[test]
    fn hmc_changes_the_picture() {
        let r = ext_hmc();
        let gain: f64 = r.notes[0]
            .split_whitespace()
            .find_map(|w| w.strip_suffix('x').and_then(|v| v.parse().ok()))
            .expect("gain in note");
        assert!(gain > 1.5, "hmc w16 gain {gain}");
    }

    #[test]
    fn host_link_reports_all_targets() {
        let r = ext_host_link();
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn newer_boards_strictly_improve() {
        let r = ext_newer_board();
        assert_eq!(r.table.len(), 3);
        // Parse the three vec16 rates from the note and check they rise.
        let rates: Vec<f64> = r.notes[0]
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        assert_eq!(rates.len(), 3, "{:?}", r.notes);
        assert!(rates[1] > rates[0], "arria beats stratix: {rates:?}");
        assert!(rates[2] > rates[1], "hmc beats arria: {rates:?}");
    }

    #[test]
    fn wgsize_throttles_gpu_below_warp() {
        let r = ext_wgsize();
        assert_eq!(r.table.len(), 5);
        let factor: f64 = r.notes[0]
            .split_whitespace()
            .find_map(|w| w.strip_suffix('x').and_then(|v| v.parse().ok()))
            .expect("factor in note");
        assert!(factor > 1.5, "wg effect {factor}");
    }
}
