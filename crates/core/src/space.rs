//! Cartesian parameter spaces over the §III tuning dimensions.

use kernelgen::{
    validate, AccessPattern, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts,
};

/// A set of values per tuning dimension; [`ParamSpace::configs`] yields
/// the cartesian product, silently skipping combinations that fail
/// validation (e.g. a stride that does not divide a size) — exactly what
/// a sweep script would do.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// STREAM kernels to sweep.
    pub ops: Vec<StreamOp>,
    /// Array sizes, in bytes per array.
    pub sizes_bytes: Vec<u64>,
    /// Element types.
    pub dtypes: Vec<DataType>,
    /// Vectorization widths.
    pub widths: Vec<u32>,
    /// Access patterns.
    pub patterns: Vec<AccessPattern>,
    /// Loop managements.
    pub loop_modes: Vec<LoopMode>,
    /// Unroll factors.
    pub unrolls: Vec<u32>,
    /// Vendor-specific option sets.
    pub vendors: Vec<VendorOpts>,
    /// Work-group size for NDRange points.
    pub work_group_size: u32,
    /// Emit `reqd_work_group_size`.
    pub reqd_work_group_size: bool,
}

impl Default for ParamSpace {
    fn default() -> Self {
        ParamSpace {
            ops: vec![StreamOp::Copy],
            sizes_bytes: vec![4 << 20],
            dtypes: vec![DataType::I32],
            widths: vec![1],
            patterns: vec![AccessPattern::Contiguous],
            loop_modes: vec![LoopMode::NdRange],
            unrolls: vec![1],
            vendors: vec![VendorOpts::None],
            work_group_size: 64,
            reqd_work_group_size: false,
        }
    }
}

impl ParamSpace {
    /// Number of raw combinations (before validity filtering).
    pub fn raw_len(&self) -> usize {
        self.ops.len()
            * self.sizes_bytes.len()
            * self.dtypes.len()
            * self.widths.len()
            * self.patterns.len()
            * self.loop_modes.len()
            * self.unrolls.len()
            * self.vendors.len()
    }

    /// All valid configurations in deterministic order.
    pub fn configs(&self) -> Vec<KernelConfig> {
        let mut out = Vec::new();
        for &op in &self.ops {
            for &size in &self.sizes_bytes {
                for &dtype in &self.dtypes {
                    for &w in &self.widths {
                        for &pattern in &self.patterns {
                            for &loop_mode in &self.loop_modes {
                                for &unroll in &self.unrolls {
                                    for &vendor in &self.vendors {
                                        let Ok(width) = VectorWidth::new(w) else { continue };
                                        let cfg = KernelConfig {
                                            op,
                                            dtype,
                                            n_words: size / dtype.word_bytes(),
                                            vector_width: width,
                                            pattern,
                                            loop_mode,
                                            unroll,
                                            work_group_size: self.work_group_size,
                                            reqd_work_group_size: self.reqd_work_group_size,
                                            vendor,
                                            q: 3.0,
                                        };
                                        if validate(&cfg).is_ok() {
                                            out.push(cfg);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_one_baseline_point() {
        let s = ParamSpace::default();
        assert_eq!(s.raw_len(), 1);
        let cfgs = s.configs();
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].n_words, (4 << 20) / 4);
    }

    #[test]
    fn cartesian_product_size() {
        let s = ParamSpace {
            ops: StreamOp::ALL.to_vec(),
            widths: vec![1, 4, 16],
            loop_modes: LoopMode::ALL.to_vec(),
            ..Default::default()
        };
        assert_eq!(s.raw_len(), 4 * 3 * 3);
        assert_eq!(s.configs().len(), 36, "all combinations valid here");
    }

    #[test]
    fn invalid_combinations_are_filtered() {
        let s = ParamSpace {
            sizes_bytes: vec![4096],
            widths: vec![1, 3, 16], // 3 is not an OpenCL vector width
            ..Default::default()
        };
        assert_eq!(s.configs().len(), 2);
    }

    #[test]
    fn strides_that_do_not_divide_are_filtered() {
        let s = ParamSpace {
            sizes_bytes: vec![4096], // 1024 words
            patterns: vec![
                AccessPattern::Contiguous,
                AccessPattern::Strided { stride: 7 }, // does not divide 1024
                AccessPattern::Strided { stride: 4 },
            ],
            ..Default::default()
        };
        assert_eq!(s.configs().len(), 2);
    }

    #[test]
    fn deterministic_order() {
        let s = ParamSpace { widths: vec![1, 2, 4], ..Default::default() };
        let a = s.configs();
        let b = s.configs();
        assert_eq!(a, b);
    }
}
