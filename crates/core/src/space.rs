//! Cartesian parameter spaces over the §III tuning dimensions.

use kernelgen::{
    validate, AccessPattern, ChannelSpec, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth,
    VendorOpts,
};

/// A set of values per tuning dimension; [`ParamSpace::configs`] yields
/// the cartesian product, silently skipping combinations that fail
/// validation (e.g. a stride that does not divide a size) — exactly what
/// a sweep script would do.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// STREAM kernels to sweep.
    pub ops: Vec<StreamOp>,
    /// Array sizes, in bytes per array.
    pub sizes_bytes: Vec<u64>,
    /// Element types.
    pub dtypes: Vec<DataType>,
    /// Vectorization widths.
    pub widths: Vec<u32>,
    /// Access patterns.
    pub patterns: Vec<AccessPattern>,
    /// Loop managements.
    pub loop_modes: Vec<LoopMode>,
    /// Unroll factors.
    pub unrolls: Vec<u32>,
    /// Vendor-specific option sets.
    pub vendors: Vec<VendorOpts>,
    /// Channel variants: `None` for the single-stage kernel, or a
    /// producer→consumer split with the given FIFO depth.
    pub channels: Vec<Option<ChannelSpec>>,
    /// Work-group size for NDRange points.
    pub work_group_size: u32,
    /// Emit `reqd_work_group_size`.
    pub reqd_work_group_size: bool,
}

impl Default for ParamSpace {
    fn default() -> Self {
        ParamSpace {
            ops: vec![StreamOp::Copy],
            sizes_bytes: vec![4 << 20],
            dtypes: vec![DataType::I32],
            widths: vec![1],
            patterns: vec![AccessPattern::Contiguous],
            loop_modes: vec![LoopMode::NdRange],
            unrolls: vec![1],
            vendors: vec![VendorOpts::None],
            channels: vec![None],
            work_group_size: 64,
            reqd_work_group_size: false,
        }
    }
}

impl ParamSpace {
    /// The default single-point space, ready for chained builders:
    /// `ParamSpace::new().ops(StreamOp::ALL).widths([1, 4, 16])`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the STREAM kernels to sweep.
    pub fn ops(mut self, ops: impl IntoIterator<Item = StreamOp>) -> Self {
        self.ops = ops.into_iter().collect();
        self
    }

    /// Set the array sizes, in bytes per array.
    pub fn sizes_bytes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.sizes_bytes = sizes.into_iter().collect();
        self
    }

    /// Set the array sizes, in MiB per array (the unit the paper's
    /// figures use on their x-axes).
    pub fn sizes_mb(mut self, mb: impl IntoIterator<Item = u64>) -> Self {
        self.sizes_bytes = mb.into_iter().map(|m| m << 20).collect();
        self
    }

    /// Set the element types.
    pub fn dtypes(mut self, dtypes: impl IntoIterator<Item = DataType>) -> Self {
        self.dtypes = dtypes.into_iter().collect();
        self
    }

    /// Set the vectorization widths.
    pub fn widths(mut self, widths: impl IntoIterator<Item = u32>) -> Self {
        self.widths = widths.into_iter().collect();
        self
    }

    /// Set the access patterns.
    pub fn patterns(mut self, patterns: impl IntoIterator<Item = AccessPattern>) -> Self {
        self.patterns = patterns.into_iter().collect();
        self
    }

    /// Set the loop managements.
    pub fn loop_modes(mut self, modes: impl IntoIterator<Item = LoopMode>) -> Self {
        self.loop_modes = modes.into_iter().collect();
        self
    }

    /// Set the unroll factors.
    pub fn unrolls(mut self, unrolls: impl IntoIterator<Item = u32>) -> Self {
        self.unrolls = unrolls.into_iter().collect();
        self
    }

    /// Set the vendor-specific option sets.
    pub fn vendors(mut self, vendors: impl IntoIterator<Item = VendorOpts>) -> Self {
        self.vendors = vendors.into_iter().collect();
        self
    }

    /// Set the channel variants: `None` for the plain kernel, `Some(d)`
    /// for a producer→consumer split over a depth-`d` channel.
    pub fn channel_depths(mut self, depths: impl IntoIterator<Item = Option<u32>>) -> Self {
        self.channels = depths
            .into_iter()
            .map(|d| d.map(|depth| ChannelSpec { depth }))
            .collect();
        self
    }

    /// Set the work-group size for NDRange points.
    pub fn work_group_size(mut self, wg: u32) -> Self {
        self.work_group_size = wg;
        self
    }

    /// Emit `reqd_work_group_size` attributes.
    pub fn reqd_work_group_size(mut self, reqd: bool) -> Self {
        self.reqd_work_group_size = reqd;
        self
    }

    /// Number of raw combinations (before validity filtering).
    pub fn raw_len(&self) -> usize {
        self.ops.len()
            * self.sizes_bytes.len()
            * self.dtypes.len()
            * self.widths.len()
            * self.patterns.len()
            * self.loop_modes.len()
            * self.unrolls.len()
            * self.vendors.len()
            * self.channels.len()
    }

    /// All valid configurations in deterministic order.
    pub fn configs(&self) -> Vec<KernelConfig> {
        let mut out = Vec::new();
        for &op in &self.ops {
            for &size in &self.sizes_bytes {
                for &dtype in &self.dtypes {
                    for &w in &self.widths {
                        for &pattern in &self.patterns {
                            for &loop_mode in &self.loop_modes {
                                for &unroll in &self.unrolls {
                                    for &vendor in &self.vendors {
                                        for &channel in &self.channels {
                                            let Ok(width) = VectorWidth::new(w) else {
                                                continue;
                                            };
                                            let cfg = KernelConfig {
                                                op,
                                                dtype,
                                                n_words: size / dtype.word_bytes(),
                                                vector_width: width,
                                                pattern,
                                                loop_mode,
                                                unroll,
                                                work_group_size: self.work_group_size,
                                                reqd_work_group_size: self.reqd_work_group_size,
                                                vendor,
                                                channel,
                                                q: 3.0,
                                            };
                                            if validate(&cfg).is_ok() {
                                                out.push(cfg);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_one_baseline_point() {
        let s = ParamSpace::default();
        assert_eq!(s.raw_len(), 1);
        let cfgs = s.configs();
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].n_words, (4 << 20) / 4);
    }

    #[test]
    fn cartesian_product_size() {
        let s = ParamSpace::new()
            .ops(StreamOp::ALL)
            .widths([1, 4, 16])
            .loop_modes(LoopMode::ALL);
        assert_eq!(s.raw_len(), 4 * 3 * 3);
        assert_eq!(s.configs().len(), 36, "all combinations valid here");
    }

    #[test]
    fn invalid_combinations_are_filtered() {
        // 3 is not an OpenCL vector width.
        let s = ParamSpace::new().sizes_bytes([4096]).widths([1, 3, 16]);
        assert_eq!(s.configs().len(), 2);
    }

    #[test]
    fn strides_that_do_not_divide_are_filtered() {
        // 1024 words; stride 7 does not divide it.
        let s = ParamSpace::new().sizes_bytes([4096]).patterns([
            AccessPattern::Contiguous,
            AccessPattern::Strided { stride: 7 },
            AccessPattern::Strided { stride: 4 },
        ]);
        assert_eq!(s.configs().len(), 2);
    }

    #[test]
    fn deterministic_order() {
        let s = ParamSpace::new().widths([1, 2, 4]);
        let a = s.configs();
        let b = s.configs();
        assert_eq!(a, b);
    }

    #[test]
    fn builder_matches_struct_literal() {
        let built = ParamSpace::new()
            .ops([StreamOp::Triad])
            .sizes_mb([4])
            .dtypes([DataType::F64])
            .widths([2, 8])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .unrolls([2])
            .work_group_size(128)
            .reqd_work_group_size(true);
        let literal = ParamSpace {
            ops: vec![StreamOp::Triad],
            sizes_bytes: vec![4 << 20],
            dtypes: vec![DataType::F64],
            widths: vec![2, 8],
            loop_modes: vec![LoopMode::SingleWorkItemFlat],
            unrolls: vec![2],
            work_group_size: 128,
            reqd_work_group_size: true,
            ..Default::default()
        };
        assert_eq!(built.configs(), literal.configs());
        assert_eq!(built.raw_len(), literal.raw_len());
    }
}
