//! `mpstream bench-self`: the simulator's own throughput microbenchmark.
//!
//! Runs a fixed set of representative sweep slices twice — once on the
//! default fast path and once with the reference slow path forced
//! ([`memsim::slowpath::force`], the same oracle `MPSTREAM_SIM_SLOW=1`
//! selects) — and reports points/second for each, plus the speedup.
//! Because both runs render their reports through the same code, the
//! bench doubles as an end-to-end equivalence check: it *fails* if the
//! fast and slow reports are not byte-identical.
//!
//! Results are written as flat JSON lines (the workspace's
//! [`crate::json`] dialect): one object per slice plus one `overall`
//! object. `--check <baseline>` compares the measured fast-path
//! points/second of each slice against a previously recorded file and
//! errors when any slice regressed by more than
//! [`REGRESSION_TOLERANCE`] — the CI gate against accidentally
//! de-optimizing the simulator.
//!
//! Timing uses wall-clock [`Instant`], so absolute numbers vary across
//! machines; the committed baseline is refreshed whenever the bench
//! runs on a machine class different from the recorded one. The
//! `speedup` column is a ratio of two runs on the same machine and is
//! therefore comparable anywhere.

use crate::cli::{
    render_dse_report, render_sweep_report, run_dse, run_sweep, CliMode, CliRequest, DseStrategy,
};
use crate::json::{parse_flat_object, JsonLine};
use crate::report::Table;
use kernelgen::StreamOp;
use std::path::PathBuf;
use std::time::Instant;
use targets::TargetId;

/// A slice may lose this fraction of its baseline points/second before
/// `--check` fails. Shared CI runners show up to ~2x wall-clock noise
/// between runs, so the gate is deliberately loose: it exists to catch
/// the fast path being disabled or de-optimized wholesale (a 10-40x
/// drop), which clears this margin by an order of magnitude.
pub const REGRESSION_TOLERANCE: f64 = 0.50;

/// One benchmark slice: a named sweep or search request.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Stable identifier (the `--check` join key).
    pub name: &'static str,
    /// The request the slice executes.
    pub req: CliRequest,
}

/// Measured outcome of one slice.
#[derive(Debug, Clone)]
pub struct SliceResult {
    /// Slice identifier.
    pub name: String,
    /// Configurations evaluated per run.
    pub points: usize,
    /// Fast-path wall time, milliseconds.
    pub fast_ms: f64,
    /// Slow-path (reference oracle) wall time, milliseconds.
    pub slow_ms: f64,
}

impl SliceResult {
    /// Fast-path throughput, points per second.
    pub fn fast_pps(&self) -> f64 {
        self.points as f64 / (self.fast_ms / 1e3)
    }

    /// Slow-path throughput, points per second.
    pub fn slow_pps(&self) -> f64 {
        self.points as f64 / (self.slow_ms / 1e3)
    }

    /// Slow-to-fast speedup.
    pub fn speedup(&self) -> f64 {
        self.slow_ms / self.fast_ms
    }
}

/// The standard slice set: the 90-point quick search plus two sweeps
/// chosen so every engine path is exercised — the cacheless FPGA LSU
/// path, the full CPU cache+TLB+prefetch stack on a hostile pattern,
/// and the GPU coalescer. Validation is off (it is identical work on
/// both paths and would only dilute the simulator measurement); the
/// repetition count is STREAM's reference `NTIMES=10` — each point is
/// one warm-up plus ten timed launches, exactly the protocol a
/// paper-grade sweep runs, which is what the fast path's launch
/// memoization exists to collapse.
pub fn standard_slices() -> Vec<Slice> {
    let base = CliRequest {
        no_validate: true,
        jobs: Some(1),
        ntimes: 10,
        ..CliRequest::default()
    };
    vec![
        Slice {
            name: "dse-aocl-90",
            req: CliRequest {
                mode: CliMode::Dse,
                target: TargetId::FpgaAocl,
                ops: vec![StreamOp::Copy, StreamOp::Triad],
                widths: vec![1, 2, 4, 8, 16],
                unrolls: vec![1, 2, 4],
                strategy: DseStrategy::Grid,
                size_bytes: 64 << 10,
                ..base.clone()
            },
        },
        Slice {
            name: "sweep-cpu-colmajor-16",
            req: CliRequest {
                mode: CliMode::Sweep,
                target: TargetId::Cpu,
                ops: StreamOp::ALL.to_vec(),
                widths: vec![1, 4, 8, 16],
                unrolls: vec![1],
                pattern: kernelgen::AccessPattern::ColMajor { cols: None },
                size_bytes: 1 << 20,
                ..base.clone()
            },
        },
        Slice {
            name: "sweep-gpu-16",
            req: CliRequest {
                mode: CliMode::Sweep,
                target: TargetId::Gpu,
                ops: StreamOp::ALL.to_vec(),
                widths: vec![1, 2, 4, 8],
                unrolls: vec![1],
                size_bytes: 256 << 10,
                ..base.clone()
            },
        },
        // The HPCC scatter kernel: random accesses defeat the row-buffer
        // and TLB models' fast assumptions, so this slice times the
        // simulator on its least regular address stream.
        Slice {
            name: "sweep-cpu-gups-3",
            req: CliRequest {
                mode: CliMode::Sweep,
                target: TargetId::Cpu,
                ops: vec![StreamOp::RandomAccess],
                widths: vec![1],
                unrolls: vec![1, 2, 4],
                size_bytes: 1 << 20,
                ..base
            },
        },
    ]
}

/// Execute one slice's request on a fresh single-purpose engine and
/// return `(points, report)`.
fn run_once(req: &CliRequest) -> (usize, String) {
    let engine = crate::cli::build_engine(req, None);
    match req.mode {
        CliMode::Dse => {
            let result = run_dse(&engine, req, None);
            (result.evaluations(), render_dse_report(req, &result))
        }
        _ => {
            let result = run_sweep(&engine, req, None);
            (result.points.len(), render_sweep_report(req, &result))
        }
    }
}

/// Run `slices` on both paths and measure. The fast run goes first so
/// any cache-warmth advantage falls to the slow path (conservative
/// speedups). Returns an error if any slice's fast and slow reports
/// differ — the paths must be byte-identical.
pub fn bench(slices: &[Slice]) -> Result<Vec<SliceResult>, String> {
    let was_slow = memsim::slowpath::slow();
    let mut results = Vec::with_capacity(slices.len());
    for s in slices {
        memsim::slowpath::force(false);
        let t0 = Instant::now();
        let (points, fast_report) = run_once(&s.req);
        let fast_ms = t0.elapsed().as_secs_f64() * 1e3;

        memsim::slowpath::force(true);
        let t0 = Instant::now();
        let (_, slow_report) = run_once(&s.req);
        let slow_ms = t0.elapsed().as_secs_f64() * 1e3;
        memsim::slowpath::force(was_slow);

        if fast_report != slow_report {
            return Err(format!(
                "slice '{}': fast and slow reports differ — the fast path broke equivalence",
                s.name
            ));
        }
        results.push(SliceResult {
            name: s.name.to_string(),
            points,
            fast_ms,
            slow_ms,
        });
    }
    Ok(results)
}

/// Render the results as flat JSON lines: one object per slice and a
/// final `overall` object (total points, aggregate throughputs, and the
/// minimum per-slice speedup — the conservative headline number).
pub fn to_json_lines(results: &[SliceResult]) -> String {
    let mut out = String::new();
    let mut total_points = 0usize;
    let mut total_fast_ms = 0.0;
    let mut total_slow_ms = 0.0;
    let mut min_speedup = f64::INFINITY;
    for r in results {
        let mut line = JsonLine::new();
        line.str_field("slice", &r.name)
            .u64_field("points", r.points as u64)
            .raw_field("fast_ms", &format!("{:.3}", r.fast_ms))
            .raw_field("slow_ms", &format!("{:.3}", r.slow_ms))
            .raw_field("fast_pps", &format!("{:.1}", r.fast_pps()))
            .raw_field("slow_pps", &format!("{:.1}", r.slow_pps()))
            .raw_field("speedup", &format!("{:.2}", r.speedup()));
        out.push_str(&line.finish());
        out.push('\n');
        total_points += r.points;
        total_fast_ms += r.fast_ms;
        total_slow_ms += r.slow_ms;
        min_speedup = min_speedup.min(r.speedup());
    }
    let mut line = JsonLine::new();
    line.str_field("slice", "overall")
        .u64_field("points", total_points as u64)
        .raw_field(
            "fast_pps",
            &format!("{:.1}", total_points as f64 / (total_fast_ms / 1e3)),
        )
        .raw_field(
            "slow_pps",
            &format!("{:.1}", total_points as f64 / (total_slow_ms / 1e3)),
        )
        .raw_field("speedup", &format!("{:.2}", total_slow_ms / total_fast_ms))
        .raw_field(
            "min_slice_speedup",
            &format!(
                "{:.2}",
                if min_speedup.is_finite() {
                    min_speedup
                } else {
                    0.0
                }
            ),
        );
    out.push_str(&line.finish());
    out.push('\n');
    out
}

/// Render the results as the human table the subcommand prints.
pub fn render_table(results: &[SliceResult]) -> String {
    let mut t = Table::new(&[
        "slice",
        "points",
        "fast ms",
        "slow ms",
        "fast pts/s",
        "slow pts/s",
        "speedup",
    ]);
    for r in results {
        t.row(&[
            r.name.clone(),
            r.points.to_string(),
            format!("{:.1}", r.fast_ms),
            format!("{:.1}", r.slow_ms),
            format!("{:.0}", r.fast_pps()),
            format!("{:.0}", r.slow_pps()),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.to_text()
}

/// Parse a baseline file (the format [`to_json_lines`] writes) into
/// `(slice, fast_pps)` pairs. Unparseable lines and the `overall`
/// record are skipped.
pub fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|l| {
            let obj = parse_flat_object(l)?;
            let name = obj.get("slice")?.as_str()?.to_string();
            if name == "overall" {
                return None;
            }
            Some((name, obj.get("fast_pps")?.as_f64()?))
        })
        .collect()
}

/// Parse any committed `BENCH_*.json` trajectory file into labelled
/// metric points. Every dialect this repo writes is handled:
/// `bench-self` lines (`slice` + `fast_pps`, the `overall` record
/// skipped) and the CI smoke-job lines (`benchmark` [+
/// `target`/`strategy`] + `points_per_sec` or `best_gbps`). Lines
/// carrying no known metric field are skipped, so mixed or partially
/// corrupt files degrade instead of erroring.
pub fn parse_trajectory(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|l| {
            let obj = parse_flat_object(l)?;
            if let Some(name) = obj.get("slice").and_then(|v| v.as_str()) {
                if name == "overall" {
                    return None;
                }
                return Some((name.to_string(), obj.get("fast_pps")?.as_f64()?));
            }
            let mut label = obj.get("benchmark")?.as_str()?.to_string();
            for qualifier in ["target", "strategy"] {
                if let Some(q) = obj.get(qualifier).and_then(|v| v.as_str()) {
                    label.push('/');
                    label.push_str(q);
                }
            }
            let metric = ["points_per_sec", "best_gbps"]
                .iter()
                .find_map(|k| obj.get(*k)?.as_f64())?;
            Some((label, metric))
        })
        .collect()
}

/// Render labelled metric points as a sparkline headline plus an
/// aligned table — the compact form CI logs show so a perf trajectory
/// is readable at a glance. `value_label` names the metric column
/// (e.g. `points/s`, `GB/s`). Deterministic for a given input: no
/// wall-clock, no environment.
pub fn render_trend(title: &str, value_label: &str, entries: &[(String, f64)]) -> String {
    if entries.is_empty() {
        return format!("{title}: (no data)\n");
    }
    let values: Vec<f64> = entries.iter().map(|(_, v)| *v).collect();
    let mut t = Table::new(&["entry", value_label]);
    for (name, v) in entries {
        t.row(&[name.clone(), format!("{v:.1}")]);
    }
    format!(
        "{title}  [{}]\n{}",
        crate::chart::sparkline(&values),
        t.to_text()
    )
}

/// Compare measured results against a baseline: every baseline slice
/// that was measured must retain at least `1 - REGRESSION_TOLERANCE` of
/// its recorded fast-path throughput. Returns the verdict lines, or an
/// error listing every regressed slice.
pub fn check_against(
    results: &[SliceResult],
    baseline: &[(String, f64)],
) -> Result<String, String> {
    let mut out = String::new();
    let mut regressions = Vec::new();
    for (name, base_pps) in baseline {
        let Some(r) = results.iter().find(|r| &r.name == name) else {
            out.push_str(&format!("{name}: not measured (skipped)\n"));
            continue;
        };
        let ratio = r.fast_pps() / base_pps;
        let verdict = if ratio >= 1.0 - REGRESSION_TOLERANCE {
            "ok"
        } else {
            regressions.push(format!(
                "{name}: {:.0} pts/s vs baseline {base_pps:.0} ({:.0}% of baseline)",
                r.fast_pps(),
                ratio * 100.0
            ));
            "REGRESSED"
        };
        out.push_str(&format!(
            "{name}: {:.0} pts/s vs baseline {base_pps:.0} -> {verdict}\n",
            r.fast_pps()
        ));
    }
    if regressions.is_empty() {
        Ok(out)
    } else {
        Err(format!(
            "fast-path throughput regressed more than {:.0}%:\n{}",
            REGRESSION_TOLERANCE * 100.0,
            regressions.join("\n")
        ))
    }
}

/// Options of the `bench-self` subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchSelfOpts {
    /// Write the JSON-lines results here.
    pub out: Option<PathBuf>,
    /// Compare against this baseline file and fail on regression.
    pub check: Option<PathBuf>,
}

/// Usage text of the subcommand.
pub const BENCH_SELF_USAGE: &str = "\
usage: mpstream bench-self [options]
  Benchmark the simulator itself: run representative sweep slices on the
  fast path and the reference slow path, report points/second and the
  speedup, and verify both produce byte-identical reports.
  --out <file>     write results as JSON lines (the BENCH_sim.json format)
  --check <file>   compare fast-path points/sec against a recorded
                   baseline; exit nonzero if any slice lost more than 20%
  --help           this text";

/// Parse `bench-self` arguments (without the subcommand itself).
/// `Ok(None)` means `--help`.
pub fn parse_bench_self_args(args: &[String]) -> Result<Option<BenchSelfOpts>, String> {
    let mut opts = BenchSelfOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--check" => {
                let v = it.next().ok_or("--check needs a value")?;
                opts.check = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Some(opts))
}

/// Execute the subcommand: bench the standard slices, write/compare as
/// requested, and return the report text.
pub fn run_bench_self(opts: &BenchSelfOpts) -> Result<String, String> {
    let results = bench(&standard_slices())?;
    let mut out = render_table(&results);
    if let Some(path) = &opts.out {
        std::fs::write(path, to_json_lines(&results))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }
    if let Some(path) = &opts.check {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("baseline {}: {e}", path.display()))?;
        out.push('\n');
        out.push_str(&render_trend(
            "baseline trajectory (fast path)",
            "points/s",
            &parse_trajectory(&text),
        ));
        out.push('\n');
        out.push_str(&check_against(&results, &parse_baseline(&text))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_slice() -> Slice {
        Slice {
            name: "tiny",
            req: CliRequest {
                mode: CliMode::Sweep,
                target: TargetId::Cpu,
                ops: vec![StreamOp::Copy],
                widths: vec![1, 4],
                unrolls: vec![1],
                size_bytes: 64 << 10,
                ntimes: 1,
                no_validate: true,
                jobs: Some(1),
                ..CliRequest::default()
            },
        }
    }

    #[test]
    fn parses_flags_and_rejects_garbage() {
        let opts = parse_bench_self_args(&["--out".into(), "b.json".into()])
            .unwrap()
            .unwrap();
        assert_eq!(opts.out, Some(PathBuf::from("b.json")));
        assert!(parse_bench_self_args(&["--help".into()]).unwrap().is_none());
        assert!(parse_bench_self_args(&["--out".into()]).is_err());
        assert!(parse_bench_self_args(&["--bogus".into()]).is_err());
    }

    #[test]
    fn bench_measures_and_serializes_round_trip() {
        let results = bench(&[tiny_slice()]).expect("paths byte-identical");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].points, 2);
        assert!(results[0].fast_ms > 0.0 && results[0].slow_ms > 0.0);

        let json = to_json_lines(&results);
        assert!(json.lines().count() == 2, "{json}");
        let baseline = parse_baseline(&json);
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].0, "tiny");
        assert!((baseline[0].1 - results[0].fast_pps()).abs() / baseline[0].1 < 0.01);
    }

    #[test]
    fn check_flags_regressions_and_accepts_noise() {
        let r = SliceResult {
            name: "tiny".into(),
            points: 100,
            fast_ms: 100.0, // 1000 pts/s
            slow_ms: 400.0,
        };
        // Within tolerance: baseline 1200 pts/s, measured 1000 = 83%.
        check_against(std::slice::from_ref(&r), &[("tiny".into(), 1200.0)])
            .expect("within tolerance");
        // Beyond tolerance: baseline 2500 pts/s, measured 1000 = 40%.
        let err = check_against(std::slice::from_ref(&r), &[("tiny".into(), 2500.0)]).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Unknown baseline slices are reported, not fatal.
        let ok = check_against(&[r], &[("other".into(), 9e9)]).unwrap();
        assert!(ok.contains("not measured"), "{ok}");
    }

    #[test]
    fn trajectory_parser_reads_both_bench_dialects() {
        let text = "\
{\"slice\":\"tiny\",\"points\":2,\"fast_pps\":1500.0}\n\
{\"slice\":\"overall\",\"points\":2,\"fast_pps\":1500.0}\n\
{\"benchmark\":\"cluster_sweep\",\"points\":8,\"points_per_sec\":42.5}\n\
{\"benchmark\":\"dse_quick\",\"target\":\"fpga-aocl\",\"strategy\":\"genetic\",\"points\":30,\"best_gbps\":12.0}\n\
not json at all\n\
{\"benchmark\":\"no_throughput_field\",\"points\":1}\n";
        let entries = parse_trajectory(text);
        assert_eq!(
            entries,
            vec![
                ("tiny".to_string(), 1500.0),
                ("cluster_sweep".to_string(), 42.5),
                ("dse_quick/fpga-aocl/genetic".to_string(), 12.0),
            ]
        );
    }

    #[test]
    fn trend_rendering_is_deterministic_and_handles_empty() {
        assert_eq!(render_trend("t", "points/s", &[]), "t: (no data)\n");
        let entries = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 400.0),
            ("c".to_string(), 250.0),
        ];
        let a = render_trend("trajectory", "points/s", &entries);
        assert_eq!(a, render_trend("trajectory", "points/s", &entries));
        assert!(a.starts_with("trajectory  ["), "{a}");
        assert!(a.contains("entry"), "{a}");
        assert!(a.contains("400"), "{a}");
    }

    #[test]
    fn standard_slices_cover_the_quick_search() {
        let slices = standard_slices();
        assert!(slices.iter().any(|s| s.name == "dse-aocl-90"));
        // The GUPS slice keeps the irregular-stream path in the bench.
        let gups = slices
            .iter()
            .find(|s| s.name == "sweep-cpu-gups-3")
            .expect("gups slice present");
        assert_eq!(gups.req.ops, vec![StreamOp::RandomAccess]);
        for s in &slices {
            assert!(
                s.req.no_validate,
                "{}: validation dilutes the bench",
                s.name
            );
            assert_eq!(s.req.jobs, Some(1), "{}: single-worker timing", s.name);
        }
    }
}
