//! The paper's plotted data, transcribed from the figure text of the
//! author-final version, plus the shape checks EXPERIMENTS.md applies.
//!
//! Absolute numbers are not reproduction targets (the substrate here is
//! a simulator, not the authors' testbed); the *shapes* are: who wins,
//! by roughly what factor, where curves rise, plateau, cross or
//! collapse. `Fig3` and `Fig4a` publish no numeric values in the text,
//! so only their qualitative orderings are recorded.

/// Figure 1a — COPY bandwidth (GB/s) vs array size, contiguous, 32-bit
/// words, optimal loop management per target. Nine points per target
/// spanning 1 KB – 64 MB in powers of four.
pub const FIG1A_AOCL: [f64; 9] = [0.04, 0.14, 0.63, 1.14, 2.03, 2.23, 2.38, 2.53, 2.45];
/// Figure 1a, SDAccel series.
pub const FIG1A_SDACCEL: [f64; 9] = [0.03, 0.09, 0.21, 0.35, 0.53, 0.64, 0.70, 0.74, 0.76];
/// Figure 1a, CPU series.
pub const FIG1A_CPU: [f64; 9] = [0.05, 0.19, 0.72, 2.52, 7.44, 18.16, 27.04, 25.24, 25.10];
/// Figure 1a, GPU series.
pub const FIG1A_GPU: [f64; 9] = [
    0.14, 0.95, 3.71, 14.74, 50.13, 112.79, 173.72, 204.5, 203.87,
];

/// Figure 1b — COPY bandwidth (GB/s) vs vector width {1,2,4,8,16} at
/// 4 MB arrays.
pub const FIG1B_WIDTHS: [u32; 5] = [1, 2, 4, 8, 16];
/// Figure 1b, AOCL series.
pub const FIG1B_AOCL: [f64; 5] = [2.53, 4.61, 8.97, 14.85, 15.26];
/// Figure 1b, SDAccel series.
pub const FIG1B_SDACCEL: [f64; 5] = [0.74, 1.41, 2.47, 4.14, 6.27];
/// Figure 1b, CPU series.
pub const FIG1B_CPU: [f64; 5] = [32.03, 34.58, 37.04, 34.52, 36.03];
/// Figure 1b, GPU series.
pub const FIG1B_GPU: [f64; 5] = [173.72, 194.30, 201.06, 175.30, 117.37];

/// Figure 2 — contiguous series (GB/s); CPU and GPU extend to 11 points
/// (to ~1 GB), the FPGAs stop at 9.
pub const FIG2_AOCL_CONTIG: [f64; 9] = [0.04, 0.1, 0.6, 1.1, 2.0, 2.2, 2.4, 2.5, 2.4];
/// Figure 2, SDAccel contiguous.
pub const FIG2_SDACCEL_CONTIG: [f64; 9] = [0.03, 0.1, 0.2, 0.4, 0.5, 0.6, 0.7, 0.7, 0.8];
/// Figure 2, CPU contiguous.
pub const FIG2_CPU_CONTIG: [f64; 11] =
    [0.1, 0.2, 0.7, 2.5, 7.4, 18.2, 27.0, 25.2, 25.1, 26.7, 26.7];
/// Figure 2, GPU contiguous.
pub const FIG2_GPU_CONTIG: [f64; 11] = [
    0.1, 1.0, 3.7, 14.7, 50.1, 112.8, 173.7, 204.5, 203.9, 216.4, 220.1,
];
/// Figure 2 — strided (column-major) series.
pub const FIG2_AOCL_STRIDED: [f64; 9] = [0.1, 0.2, 0.4, 0.7, 0.8, 1.7, 0.5, 0.4, 0.3];
/// Figure 2, SDAccel strided (flat ~0.01 GB/s).
pub const FIG2_SDACCEL_STRIDED: [f64; 9] = [0.01; 9];
/// Figure 2, CPU strided (LLC bump then collapse).
pub const FIG2_CPU_STRIDED: [f64; 11] = [0.04, 0.2, 0.4, 0.8, 3.9, 5.6, 5.3, 0.8, 0.8, 0.7, 0.8];
/// Figure 2, GPU strided (L2 plateau, collapse past ~100 MB).
pub const FIG2_GPU_STRIDED: [f64; 11] =
    [0.1, 0.6, 2.5, 7.6, 18.2, 26.6, 29.4, 29.5, 27.3, 9.9, 6.7];

/// Peak bandwidths the paper quotes per target (the dotted lines).
pub const PEAK_GBPS: [(&str, f64); 4] = [
    ("aocl", 25.6),
    ("sdaccel", 10.6),
    ("cpu", 34.0),
    ("gpu", 336.0),
];

// ---------------------------------------------------------------------
// Shape checks.
// ---------------------------------------------------------------------

/// Verdict of comparing a measured series against the paper's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// All checked properties hold.
    Matches,
    /// At least one property failed; the strings describe which.
    Deviates(Vec<String>),
}

impl Shape {
    /// Did every check pass?
    pub fn ok(&self) -> bool {
        matches!(self, Shape::Matches)
    }

    fn from_problems(problems: Vec<String>) -> Shape {
        if problems.is_empty() {
            Shape::Matches
        } else {
            Shape::Deviates(problems)
        }
    }
}

/// Check that `measured` rises from its first point and plateaus: the
/// maximum of the last `tail` points must be within `plateau_band`× of
/// the series maximum, and the first point must be at least
/// `rise_factor`× below the maximum.
pub fn check_rise_and_plateau(
    measured: &[f64],
    tail: usize,
    plateau_band: f64,
    rise_factor: f64,
) -> Shape {
    let mut problems = Vec::new();
    if measured.len() < tail + 1 {
        return Shape::Deviates(vec!["series too short".into()]);
    }
    let max = measured.iter().cloned().fold(0.0, f64::max);
    let tail_max = measured[measured.len() - tail..]
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    if tail_max < max / plateau_band {
        problems.push(format!(
            "tail max {tail_max:.3} not within {plateau_band}x of max {max:.3}"
        ));
    }
    if measured[0] * rise_factor > max {
        problems.push(format!(
            "first point {:.3} not at least {rise_factor}x below max {max:.3}",
            measured[0]
        ));
    }
    Shape::from_problems(problems)
}

/// Check that the ratio `measured[i] / paper[i]` stays within
/// `[1/band, band]` for every point (a loose absolute-level check used
/// where the paper publishes numbers).
pub fn check_ratio_band(measured: &[f64], paper: &[f64], band: f64) -> Shape {
    let mut problems = Vec::new();
    for (i, (&m, &p)) in measured.iter().zip(paper.iter()).enumerate() {
        if m <= 0.0 || p <= 0.0 {
            problems.push(format!(
                "point {i}: non-positive value (measured {m}, paper {p})"
            ));
            continue;
        }
        let r = m / p;
        if !(1.0 / band..=band).contains(&r) {
            problems.push(format!(
                "point {i}: measured {m:.3} vs paper {p:.3} (ratio {r:.2} outside {band}x band)"
            ));
        }
    }
    Shape::from_problems(problems)
}

/// Check a strict ordering of values: `labels[i]` must strictly beat
/// `labels[i+1]`.
pub fn check_ordering(values: &[(&str, f64)]) -> Shape {
    let mut problems = Vec::new();
    for pair in values.windows(2) {
        if pair[0].1 <= pair[1].1 {
            problems.push(format!(
                "{} ({:.3}) should beat {} ({:.3})",
                pair[0].0, pair[0].1, pair[1].0, pair[1].1
            ));
        }
    }
    Shape::from_problems(problems)
}

/// Geometric-mean ratio between measured and paper values (a single
/// "how far off is the absolute level" number for EXPERIMENTS.md).
pub fn geomean_ratio(measured: &[f64], paper: &[f64]) -> f64 {
    let logs: Vec<f64> = measured
        .iter()
        .zip(paper.iter())
        .filter(|(&m, &p)| m > 0.0 && p > 0.0)
        .map(|(&m, &p)| (m / p).ln())
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_series_have_consistent_lengths() {
        assert_eq!(FIG1A_AOCL.len(), 9);
        assert_eq!(FIG2_CPU_STRIDED.len(), 11);
        assert_eq!(FIG1B_WIDTHS.len(), FIG1B_GPU.len());
    }

    #[test]
    fn paper_data_itself_passes_its_shape_checks() {
        // Fig 1a: every target rises and plateaus.
        for series in [&FIG1A_AOCL[..], &FIG1A_SDACCEL, &FIG1A_CPU, &FIG1A_GPU] {
            assert!(
                check_rise_and_plateau(series, 3, 1.5, 5.0).ok(),
                "{series:?}"
            );
        }
        // GPU > CPU > AOCL > SDAccel at 4 MB (index 6).
        let at4 = [
            ("gpu", FIG1A_GPU[6]),
            ("cpu", FIG1A_CPU[6]),
            ("aocl", FIG1A_AOCL[6]),
            ("sdaccel", FIG1A_SDACCEL[6]),
        ];
        assert!(check_ordering(&at4).ok());
    }

    #[test]
    fn ratio_band_detects_deviation() {
        assert!(check_ratio_band(&[1.0, 2.0], &[1.1, 1.8], 2.0).ok());
        let bad = check_ratio_band(&[10.0], &[1.0], 2.0);
        assert!(!bad.ok());
        if let Shape::Deviates(p) = bad {
            assert!(p[0].contains("ratio"));
        }
    }

    #[test]
    fn ordering_detects_ties() {
        assert!(!check_ordering(&[("a", 1.0), ("b", 1.0)]).ok());
    }

    #[test]
    fn geomean_is_scale_symmetric() {
        let r = geomean_ratio(&[2.0, 0.5], &[1.0, 1.0]);
        assert!((r - 1.0).abs() < 1e-12);
        assert!(geomean_ratio(&[], &[]).is_nan());
    }

    #[test]
    fn rise_and_plateau_rejects_flat_series() {
        let flat = [5.0; 9];
        assert!(!check_rise_and_plateau(&flat, 3, 1.5, 5.0).ok());
    }
}
