//! A small deterministic PRNG for the explorers.
//!
//! The search strategies in [`crate::dse`] need seeded, reproducible
//! randomness — the same `(strategy, seed)` must visit the same points on
//! every machine, because sweep traces are compared across runs and CI.
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is the standard tiny
//! generator for this: one u64 of state, passes BigCrush, and needs no
//! external dependency.

/// SplitMix64: a 64-bit splittable PRNG with one word of state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds yield equal sequences, forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the bias for any
    /// benchmark-sized `n` (≪ 2^32) is far below observability.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_sequences() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_first_outputs() {
        // Reference values from the published SplitMix64 algorithm,
        // seed 0: pins the implementation across refactors.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn gen_index_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = r.gen_index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices reachable");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..32).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..32).collect::<Vec<_>>(),
            "32 elements virtually never fixed"
        );
    }
}
