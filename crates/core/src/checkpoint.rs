//! Sweep checkpointing: persist completed [`Outcome`]s so a killed
//! campaign resumes instead of restarting.
//!
//! An FPGA sweep is hours of synthesis; losing a night of results to an
//! OOM-killed host is the failure mode this module removes. The format
//! is JSON-lines — one flat JSON object per completed configuration,
//! appended and flushed as workers finish (out of input order; the
//! sweep layer re-establishes order on resume). Append-only means a
//! `kill -9` can at worst truncate the final line; the loader skips an
//! unparseable trailing record rather than rejecting the file.
//!
//! The JSON dialect lives in [`crate::json`] (shared with the serving
//! layer's wire protocol and job journal). Records are keyed by the
//! configuration's exhaustive `Debug` rendering — the same keying the
//! build cache uses — and carry every [`Measurement`] field, or the
//! error as a `(code, detail)` pair that [`ClError::from_parts`]
//! reverses.
//!
//! Long-lived stores (the `mpstream serve` result store keeps one
//! checkpoint file per job, forever) accumulate superseded records for
//! re-run keys; [`Checkpoint::compact`] rewrites a file down to the
//! last record per `(device, config)` key, dropping any torn tail.

use crate::engine::Outcome;
use crate::json::{parse_flat_object, CompactStats, JsonLine, JsonValue};
use crate::runner::Measurement;
use kernelgen::KernelConfig;
use mpcl::{CacheStatus, ClError, ResourceUsage};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A sweep checkpoint file: completed outcomes loaded at open, new ones
/// appended (and flushed) as they are recorded.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: Mutex<File>,
    loaded: HashMap<String, Outcome>,
}

/// The checkpoint key of a configuration (its exhaustive `Debug`
/// rendering, as the build cache uses).
pub fn config_key(cfg: &KernelConfig) -> String {
    format!("{cfg:?}")
}

impl Checkpoint {
    /// Start a fresh checkpoint at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Checkpoint {
            path,
            file: Mutex::new(file),
            loaded: HashMap::new(),
        })
    }

    /// Open `path` for resumption: previously recorded outcomes become
    /// available via [`lookup`](Self::lookup) and new ones append after
    /// them. A missing file starts empty; a corrupt trailing line (the
    /// signature of a mid-write kill) is dropped.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut loaded = HashMap::new();
        match File::open(&path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Some((key, outcome)) = parse_record(&line) {
                        loaded.insert(key, outcome);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Checkpoint {
            path,
            file: Mutex::new(file),
            loaded,
        })
    }

    /// Rewrite the checkpoint file at `path` keeping only the last
    /// record per `(device, config)` key, in first-appearance order;
    /// torn or foreign lines are dropped. The rewrite is atomic
    /// (temp file + rename). Error records carry no device and compact
    /// under an empty device. A missing file is a no-op. The server
    /// runs this over its result store on startup, so a store that was
    /// killed mid-write (torn tail) or re-ran configurations
    /// (duplicates) converges back to one clean record per point.
    pub fn compact(path: impl AsRef<Path>) -> std::io::Result<CompactStats> {
        crate::json::compact_jsonl(path.as_ref(), |fields| {
            let key = fields.get("key")?.as_str()?;
            let device = fields
                .get("device")
                .and_then(JsonValue::as_str)
                .unwrap_or("");
            Some(format!("{device}\u{1f}{key}"))
        })
    }

    /// The file backing this checkpoint.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of outcomes loaded from disk at open.
    pub fn len(&self) -> usize {
        self.loaded.len()
    }

    /// True when nothing was loaded from disk.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty()
    }

    /// The previously completed outcome for `cfg`, if recorded. The
    /// stored result is re-keyed to `cfg` (the file does not carry the
    /// configuration itself, only its key).
    pub fn lookup(&self, cfg: &KernelConfig) -> Option<Outcome> {
        self.loaded.get(&config_key(cfg)).map(|o| Outcome {
            config: cfg.clone(),
            result: o.result.clone(),
            retries: o.retries,
        })
    }

    /// Append `outcome` and flush, so a kill right after loses nothing.
    pub fn record(&self, outcome: &Outcome) -> std::io::Result<()> {
        let line = render_record(outcome);
        let mut file = self.file.lock().expect("checkpoint mutex poisoned");
        writeln!(file, "{line}")?;
        file.flush()
    }
}

/// Render one outcome as a flat JSON object (one line).
///
/// Public because the checkpoint record doubles as the cluster wire
/// format: workers render finished points with this exact codec and
/// ship the lines to the coordinator, whose merged per-job file is then
/// indistinguishable from one a local engine appended itself.
pub fn render_record(o: &Outcome) -> String {
    let mut w = JsonLine::new();
    w.str_field("key", &config_key(&o.config));
    w.raw_field("retries", &o.retries.to_string());
    match &o.result {
        Ok(m) => {
            w.str_field("status", "ok");
            w.str_field("device", &m.device);
            w.raw_field("bytes_moved", &m.bytes_moved.to_string());
            w.raw_field("best_wall_ns", &fmt_f64(m.best_wall_ns));
            w.raw_field("avg_wall_ns", &fmt_f64(m.avg_wall_ns));
            w.raw_field("best_kernel_ns", &fmt_f64(m.best_kernel_ns));
            w.raw_field(
                "validated",
                match m.validated {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                },
            );
            w.raw_field("dram_bytes", &m.dram_bytes_per_launch.to_string());
            w.raw_field(
                "energy_j",
                &m.energy_j.map(fmt_f64).unwrap_or_else(|| "null".into()),
            );
            w.raw_field(
                "fmax_mhz",
                &m.fmax_mhz.map(fmt_f64).unwrap_or_else(|| "null".into()),
            );
            let res = |f: fn(&ResourceUsage) -> u64| {
                m.resources
                    .as_ref()
                    .map(|r| f(r).to_string())
                    .unwrap_or_else(|| "null".into())
            };
            w.raw_field("logic", &res(|r| r.logic));
            w.raw_field("bram", &res(|r| r.bram));
            w.raw_field("dsp", &res(|r| r.dsp));
            w.str_field("build_log", &m.build_log);
            w.raw_field("build_ns", &fmt_f64(m.build_ns));
            w.raw_field("xfer_ns", &fmt_f64(m.xfer_ns));
            w.raw_field("kernel_ns", &fmt_f64(m.kernel_ns));
            w.str_field("cache", m.cache.label());
            w.raw_field("row_hits", &m.row_hits.to_string());
            w.raw_field("row_misses", &m.row_misses.to_string());
            w.raw_field("row_empty", &m.row_empty.to_string());
            w.raw_field("stall_ns", &fmt_f64(m.stall_ns));
        }
        Err(e) => {
            w.str_field("status", "err");
            w.str_field("code", e.code());
            w.str_field("msg", &e.detail());
        }
    }
    w.finish()
}

/// Parse one record line back into `(key, outcome)`; `None` when the
/// line is corrupt (mid-write kill) or incomplete.
///
/// The returned [`Outcome`] carries a placeholder config — records are
/// keyed by the rendered `key` string, not a reconstructed config; use
/// [`Checkpoint::lookup`] to re-associate real configs. Public for the
/// same reason as [`render_record`]: the cluster merge path validates
/// and re-keys worker-shipped lines with the real parser.
pub fn parse_record(line: &str) -> Option<(String, Outcome)> {
    let fields = parse_flat_object(line)?;
    let str_of = |k: &str| Some(fields.get(k)?.as_str()?.to_string());
    let raw_of = |k: &str| fields.get(k)?.as_raw();
    let key = str_of("key")?;
    let retries: u32 = raw_of("retries")?.parse().ok()?;
    let result = match str_of("status")?.as_str() {
        "ok" => {
            let opt_f64 = |k: &str| -> Option<Option<f64>> {
                match raw_of(k)? {
                    "null" => Some(None),
                    v => Some(Some(v.parse().ok()?)),
                }
            };
            let opt_u64 = |k: &str| -> Option<Option<u64>> {
                match raw_of(k)? {
                    "null" => Some(None),
                    v => Some(Some(v.parse().ok()?)),
                }
            };
            let resources = match (opt_u64("logic")?, opt_u64("bram")?, opt_u64("dsp")?) {
                (Some(logic), Some(bram), Some(dsp)) => Some(ResourceUsage { logic, bram, dsp }),
                _ => None,
            };
            Ok(Measurement {
                device: str_of("device")?,
                bytes_moved: raw_of("bytes_moved")?.parse().ok()?,
                best_wall_ns: raw_of("best_wall_ns")?.parse().ok()?,
                avg_wall_ns: raw_of("avg_wall_ns")?.parse().ok()?,
                best_kernel_ns: raw_of("best_kernel_ns")?.parse().ok()?,
                validated: match raw_of("validated")? {
                    "true" => Some(true),
                    "false" => Some(false),
                    "null" => None,
                    _ => return None,
                },
                dram_bytes_per_launch: raw_of("dram_bytes")?.parse().ok()?,
                energy_j: opt_f64("energy_j")?,
                fmax_mhz: opt_f64("fmax_mhz")?,
                resources,
                build_log: str_of("build_log")?,
                // Metrics added after the format's first release:
                // records written by older versions fall back to their
                // zero values instead of being rejected.
                build_ns: raw_of("build_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                xfer_ns: raw_of("xfer_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                kernel_ns: raw_of("kernel_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                cache: str_of("cache")
                    .and_then(|s| CacheStatus::from_label(&s))
                    .unwrap_or(CacheStatus::Uncached),
                row_hits: raw_of("row_hits").and_then(|v| v.parse().ok()).unwrap_or(0),
                row_misses: raw_of("row_misses")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                row_empty: raw_of("row_empty")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                stall_ns: raw_of("stall_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
            })
        }
        "err" => Err(ClError::from_parts(&str_of("code")?, &str_of("msg")?)),
        _ => return None,
    };
    Some((
        key,
        Outcome {
            // The config is reconstructed by `lookup` from the caller's
            // side of the key; a placeholder sits here until then.
            config: KernelConfig::baseline(kernelgen::StreamOp::Copy, 1),
            result,
            retries,
        },
    ))
}

/// Format an f64 so `parse::<f64>` round-trips it (Rust's shortest
/// representation does).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::StreamOp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "mpstream-ckpt-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_ok() -> Outcome {
        let cfg = KernelConfig::baseline(StreamOp::Triad, 4096);
        let mut m = Measurement::synthetic(42.5);
        m.device = "Stratix V (sim)".into();
        m.validated = Some(true);
        m.energy_j = Some(0.125);
        m.fmax_mhz = Some(287.5);
        m.resources = Some(ResourceUsage {
            logic: 12345,
            bram: 67,
            dsp: 8,
        });
        m.build_log = "line1\nline2 \"quoted\" \\slash\ttab".into();
        Outcome {
            config: cfg,
            result: Ok(m),
            retries: 2,
        }
    }

    fn sample_err() -> Outcome {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        Outcome {
            config: cfg,
            result: Err(ClError::BuildProgramFailure("ALM 140%\nover".into())),
            retries: 0,
        }
    }

    #[test]
    fn record_and_resume_round_trips_ok_and_err() {
        let path = temp_path("roundtrip");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
            cp.record(&sample_err()).unwrap();
            assert_eq!(cp.len(), 0, "create starts empty");
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 2);

        let ok = cp.lookup(&sample_ok().config).expect("recorded");
        assert_eq!(ok.retries, 2);
        let (want, got) = (sample_ok().result.unwrap(), ok.result.unwrap());
        assert_eq!(got.device, want.device);
        assert_eq!(got.bytes_moved, want.bytes_moved);
        assert_eq!(got.best_wall_ns, want.best_wall_ns);
        assert_eq!(got.avg_wall_ns, want.avg_wall_ns);
        assert_eq!(got.best_kernel_ns, want.best_kernel_ns);
        assert_eq!(got.validated, want.validated);
        assert_eq!(got.dram_bytes_per_launch, want.dram_bytes_per_launch);
        assert_eq!(got.energy_j, want.energy_j);
        assert_eq!(got.fmax_mhz, want.fmax_mhz);
        assert_eq!(got.resources, want.resources);
        assert_eq!(got.build_log, want.build_log);

        let err = cp.lookup(&sample_err().config).expect("recorded");
        assert_eq!(
            err.result,
            Err(ClError::BuildProgramFailure("ALM 140%\nover".into()))
        );
        assert_eq!(err.config, sample_err().config, "lookup re-keys config");

        let other = KernelConfig::baseline(StreamOp::Scale, 1024);
        assert!(cp.lookup(&other).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_trailing_line_is_dropped() {
        let path = temp_path("corrupt");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
        }
        // Simulate a mid-write kill: append half a record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"half-writ").unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1, "good record kept, torn record dropped");
        assert!(cp.lookup(&sample_ok().config).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_missing_file_starts_empty_and_appends() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let cp = Checkpoint::resume(&path).unwrap();
        assert!(cp.is_empty());
        cp.record(&sample_err()).unwrap();
        drop(cp);
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_truncates_previous_contents() {
        let path = temp_path("truncate");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
        }
        {
            let _cp = Checkpoint::create(&path).unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert!(cp.is_empty(), "create starts over");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_keys_keep_the_last_record() {
        let path = temp_path("dup");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_err()).unwrap();
            let mut retried = sample_err();
            retried.result = Ok(Measurement::synthetic(9.0));
            retried.retries = 1;
            cp.record(&retried).unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1);
        let o = cp.lookup(&sample_err().config).unwrap();
        assert!(o.result.is_ok(), "later record wins");
        assert_eq!(o.retries, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_collapses_duplicates_and_torn_tail_to_clean_state() {
        let path = temp_path("compact");
        {
            let cp = Checkpoint::create(&path).unwrap();
            // An error record, plus two generations of the same
            // (device, config) point — a re-run that succeeded later.
            cp.record(&sample_err()).unwrap();
            cp.record(&sample_ok()).unwrap();
            let mut newer = sample_ok();
            newer.retries = 3;
            if let Ok(m) = &mut newer.result {
                m.best_wall_ns *= 2.0;
            }
            cp.record(&newer).unwrap();
        }
        // A torn tail from a mid-write kill.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"torn").unwrap();
        }
        let stats = Checkpoint::compact(&path).unwrap();
        assert_eq!(stats.kept, 2, "one record per (device, config)");
        assert_eq!(stats.superseded, 1);
        assert_eq!(stats.corrupt, 1);

        // The compacted file is clean: every line parses, the latest
        // generation survived, and compacting again changes nothing.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(parse_record(line).is_some(), "clean record: {line}");
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 2);
        let o = cp.lookup(&sample_ok().config).unwrap();
        assert_eq!(o.retries, 3, "latest generation won");
        let e = cp.lookup(&sample_err().config).unwrap();
        assert!(e.result.is_err(), "unrelated error record survives");
        let again = Checkpoint::compact(&path).unwrap();
        assert_eq!(again.superseded, 0);
        assert_eq!(again.corrupt, 0);
        assert_eq!(again.kept, 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text, "idempotent");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_distinguishes_devices_with_the_same_config() {
        let path = temp_path("compact-dev");
        {
            let cp = Checkpoint::create(&path).unwrap();
            let mut a = sample_ok();
            if let Ok(m) = &mut a.result {
                m.device = "device-A".into();
            }
            let mut b = sample_ok();
            if let Ok(m) = &mut b.result {
                m.device = "device-B".into();
            }
            cp.record(&a).unwrap();
            cp.record(&b).unwrap();
        }
        let stats = Checkpoint::compact(&path).unwrap();
        assert_eq!(stats.kept, 2, "same config on two devices both survive");
        assert_eq!(stats.superseded, 0);
        std::fs::remove_file(&path).ok();
    }
}
