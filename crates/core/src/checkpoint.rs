//! Sweep checkpointing: persist completed [`Outcome`]s so a killed
//! campaign resumes instead of restarting.
//!
//! An FPGA sweep is hours of synthesis; losing a night of results to an
//! OOM-killed host is the failure mode this module removes. The format
//! is JSON-lines — one flat JSON object per completed configuration,
//! appended and flushed as workers finish (out of input order; the
//! sweep layer re-establishes order on resume). Append-only means a
//! `kill -9` can at worst truncate the final line; the loader skips an
//! unparseable trailing record rather than rejecting the file.
//!
//! No external serialization crate exists in-tree, so the writer and the
//! (deliberately minimal, flat-objects-only) parser live here. Records
//! are keyed by the configuration's exhaustive `Debug` rendering — the
//! same keying the build cache uses — and carry every [`Measurement`]
//! field, or the error as a `(code, detail)` pair that
//! [`ClError::from_parts`] reverses.

use crate::engine::Outcome;
use crate::runner::Measurement;
use kernelgen::KernelConfig;
use mpcl::{CacheStatus, ClError, ResourceUsage};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A sweep checkpoint file: completed outcomes loaded at open, new ones
/// appended (and flushed) as they are recorded.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    file: Mutex<File>,
    loaded: HashMap<String, Outcome>,
}

/// The checkpoint key of a configuration (its exhaustive `Debug`
/// rendering, as the build cache uses).
pub fn config_key(cfg: &KernelConfig) -> String {
    format!("{cfg:?}")
}

impl Checkpoint {
    /// Start a fresh checkpoint at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Checkpoint {
            path,
            file: Mutex::new(file),
            loaded: HashMap::new(),
        })
    }

    /// Open `path` for resumption: previously recorded outcomes become
    /// available via [`lookup`](Self::lookup) and new ones append after
    /// them. A missing file starts empty; a corrupt trailing line (the
    /// signature of a mid-write kill) is dropped.
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut loaded = HashMap::new();
        match File::open(&path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Some((key, outcome)) = parse_record(&line) {
                        loaded.insert(key, outcome);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Checkpoint {
            path,
            file: Mutex::new(file),
            loaded,
        })
    }

    /// The file backing this checkpoint.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of outcomes loaded from disk at open.
    pub fn len(&self) -> usize {
        self.loaded.len()
    }

    /// True when nothing was loaded from disk.
    pub fn is_empty(&self) -> bool {
        self.loaded.is_empty()
    }

    /// The previously completed outcome for `cfg`, if recorded. The
    /// stored result is re-keyed to `cfg` (the file does not carry the
    /// configuration itself, only its key).
    pub fn lookup(&self, cfg: &KernelConfig) -> Option<Outcome> {
        self.loaded.get(&config_key(cfg)).map(|o| Outcome {
            config: cfg.clone(),
            result: o.result.clone(),
            retries: o.retries,
        })
    }

    /// Append `outcome` and flush, so a kill right after loses nothing.
    pub fn record(&self, outcome: &Outcome) -> std::io::Result<()> {
        let line = render_record(outcome);
        let mut file = self.file.lock().expect("checkpoint mutex poisoned");
        writeln!(file, "{line}")?;
        file.flush()
    }
}

/// Render one outcome as a flat JSON object (one line).
fn render_record(o: &Outcome) -> String {
    let mut w = JsonLine::new();
    w.str_field("key", &config_key(&o.config));
    w.raw_field("retries", &o.retries.to_string());
    match &o.result {
        Ok(m) => {
            w.str_field("status", "ok");
            w.str_field("device", &m.device);
            w.raw_field("bytes_moved", &m.bytes_moved.to_string());
            w.raw_field("best_wall_ns", &fmt_f64(m.best_wall_ns));
            w.raw_field("avg_wall_ns", &fmt_f64(m.avg_wall_ns));
            w.raw_field("best_kernel_ns", &fmt_f64(m.best_kernel_ns));
            w.raw_field(
                "validated",
                match m.validated {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                },
            );
            w.raw_field("dram_bytes", &m.dram_bytes_per_launch.to_string());
            w.raw_field(
                "energy_j",
                &m.energy_j.map(fmt_f64).unwrap_or_else(|| "null".into()),
            );
            w.raw_field(
                "fmax_mhz",
                &m.fmax_mhz.map(fmt_f64).unwrap_or_else(|| "null".into()),
            );
            let res = |f: fn(&ResourceUsage) -> u64| {
                m.resources
                    .as_ref()
                    .map(|r| f(r).to_string())
                    .unwrap_or_else(|| "null".into())
            };
            w.raw_field("logic", &res(|r| r.logic));
            w.raw_field("bram", &res(|r| r.bram));
            w.raw_field("dsp", &res(|r| r.dsp));
            w.str_field("build_log", &m.build_log);
            w.raw_field("build_ns", &fmt_f64(m.build_ns));
            w.raw_field("xfer_ns", &fmt_f64(m.xfer_ns));
            w.raw_field("kernel_ns", &fmt_f64(m.kernel_ns));
            w.str_field("cache", m.cache.label());
            w.raw_field("row_hits", &m.row_hits.to_string());
            w.raw_field("row_misses", &m.row_misses.to_string());
            w.raw_field("row_empty", &m.row_empty.to_string());
        }
        Err(e) => {
            w.str_field("status", "err");
            w.str_field("code", e.code());
            w.str_field("msg", &e.detail());
        }
    }
    w.finish()
}

/// Parse one record line back into `(key, outcome)`; `None` when the
/// line is corrupt (mid-write kill) or incomplete.
fn parse_record(line: &str) -> Option<(String, Outcome)> {
    let fields = parse_flat_object(line)?;
    let str_of = |k: &str| match fields.get(k)? {
        JsonValue::Str(s) => Some(s.clone()),
        _ => None,
    };
    let raw_of = |k: &str| match fields.get(k)? {
        JsonValue::Raw(s) => Some(s.as_str()),
        _ => None,
    };
    let key = str_of("key")?;
    let retries: u32 = raw_of("retries")?.parse().ok()?;
    let result = match str_of("status")?.as_str() {
        "ok" => {
            let opt_f64 = |k: &str| -> Option<Option<f64>> {
                match raw_of(k)? {
                    "null" => Some(None),
                    v => Some(Some(v.parse().ok()?)),
                }
            };
            let opt_u64 = |k: &str| -> Option<Option<u64>> {
                match raw_of(k)? {
                    "null" => Some(None),
                    v => Some(Some(v.parse().ok()?)),
                }
            };
            let resources = match (opt_u64("logic")?, opt_u64("bram")?, opt_u64("dsp")?) {
                (Some(logic), Some(bram), Some(dsp)) => Some(ResourceUsage { logic, bram, dsp }),
                _ => None,
            };
            Ok(Measurement {
                device: str_of("device")?,
                bytes_moved: raw_of("bytes_moved")?.parse().ok()?,
                best_wall_ns: raw_of("best_wall_ns")?.parse().ok()?,
                avg_wall_ns: raw_of("avg_wall_ns")?.parse().ok()?,
                best_kernel_ns: raw_of("best_kernel_ns")?.parse().ok()?,
                validated: match raw_of("validated")? {
                    "true" => Some(true),
                    "false" => Some(false),
                    "null" => None,
                    _ => return None,
                },
                dram_bytes_per_launch: raw_of("dram_bytes")?.parse().ok()?,
                energy_j: opt_f64("energy_j")?,
                fmax_mhz: opt_f64("fmax_mhz")?,
                resources,
                build_log: str_of("build_log")?,
                // Metrics added after the format's first release:
                // records written by older versions fall back to their
                // zero values instead of being rejected.
                build_ns: raw_of("build_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                xfer_ns: raw_of("xfer_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                kernel_ns: raw_of("kernel_ns")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.0),
                cache: str_of("cache")
                    .and_then(|s| CacheStatus::from_label(&s))
                    .unwrap_or(CacheStatus::Uncached),
                row_hits: raw_of("row_hits").and_then(|v| v.parse().ok()).unwrap_or(0),
                row_misses: raw_of("row_misses")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                row_empty: raw_of("row_empty")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
            })
        }
        "err" => Err(ClError::from_parts(&str_of("code")?, &str_of("msg")?)),
        _ => return None,
    };
    Some((
        key,
        Outcome {
            // The config is reconstructed by `lookup` from the caller's
            // side of the key; a placeholder sits here until then.
            config: KernelConfig::baseline(kernelgen::StreamOp::Copy, 1),
            result,
            retries,
        },
    ))
}

/// Format an f64 so `parse::<f64>` round-trips it (Rust's shortest
/// representation does).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Incremental writer for one flat JSON object.
struct JsonLine {
    out: String,
}

impl JsonLine {
    fn new() -> Self {
        JsonLine { out: "{".into() }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    fn str_field(&mut self, key: &str, value: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":\"");
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// A field whose value is already valid JSON (number, bool, null).
    fn raw_field(&mut self, key: &str, value: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":");
        self.out.push_str(value);
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    /// A non-string scalar, kept raw: number, `true`/`false`, `null`.
    Raw(String),
}

/// Parse a single-line flat JSON object (string/scalar values only — the
/// only shape this module writes). Returns `None` on any malformation.
fn parse_flat_object(line: &str) -> Option<HashMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = if chars.peek() == Some(&'"') {
            JsonValue::Str(parse_string(&mut chars)?)
        } else {
            let mut raw = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' || c == '}' {
                    break;
                }
                raw.push(c);
                chars.next();
            }
            let raw = raw.trim().to_string();
            if raw.is_empty() {
                return None;
            }
            JsonValue::Raw(raw)
        };
        fields.insert(key, value);
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map_while(|_| chars.next()).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::StreamOp;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "mpstream-ckpt-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn sample_ok() -> Outcome {
        let cfg = KernelConfig::baseline(StreamOp::Triad, 4096);
        let mut m = Measurement::synthetic(42.5);
        m.device = "Stratix V (sim)".into();
        m.validated = Some(true);
        m.energy_j = Some(0.125);
        m.fmax_mhz = Some(287.5);
        m.resources = Some(ResourceUsage {
            logic: 12345,
            bram: 67,
            dsp: 8,
        });
        m.build_log = "line1\nline2 \"quoted\" \\slash\ttab".into();
        Outcome {
            config: cfg,
            result: Ok(m),
            retries: 2,
        }
    }

    fn sample_err() -> Outcome {
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        Outcome {
            config: cfg,
            result: Err(ClError::BuildProgramFailure("ALM 140%\nover".into())),
            retries: 0,
        }
    }

    #[test]
    fn record_and_resume_round_trips_ok_and_err() {
        let path = temp_path("roundtrip");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
            cp.record(&sample_err()).unwrap();
            assert_eq!(cp.len(), 0, "create starts empty");
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 2);

        let ok = cp.lookup(&sample_ok().config).expect("recorded");
        assert_eq!(ok.retries, 2);
        let (want, got) = (sample_ok().result.unwrap(), ok.result.unwrap());
        assert_eq!(got.device, want.device);
        assert_eq!(got.bytes_moved, want.bytes_moved);
        assert_eq!(got.best_wall_ns, want.best_wall_ns);
        assert_eq!(got.avg_wall_ns, want.avg_wall_ns);
        assert_eq!(got.best_kernel_ns, want.best_kernel_ns);
        assert_eq!(got.validated, want.validated);
        assert_eq!(got.dram_bytes_per_launch, want.dram_bytes_per_launch);
        assert_eq!(got.energy_j, want.energy_j);
        assert_eq!(got.fmax_mhz, want.fmax_mhz);
        assert_eq!(got.resources, want.resources);
        assert_eq!(got.build_log, want.build_log);

        let err = cp.lookup(&sample_err().config).expect("recorded");
        assert_eq!(
            err.result,
            Err(ClError::BuildProgramFailure("ALM 140%\nover".into()))
        );
        assert_eq!(err.config, sample_err().config, "lookup re-keys config");

        let other = KernelConfig::baseline(StreamOp::Scale, 1024);
        assert!(cp.lookup(&other).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_trailing_line_is_dropped() {
        let path = temp_path("corrupt");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
        }
        // Simulate a mid-write kill: append half a record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"half-writ").unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1, "good record kept, torn record dropped");
        assert!(cp.lookup(&sample_ok().config).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_missing_file_starts_empty_and_appends() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let cp = Checkpoint::resume(&path).unwrap();
        assert!(cp.is_empty());
        cp.record(&sample_err()).unwrap();
        drop(cp);
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_truncates_previous_contents() {
        let path = temp_path("truncate");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_ok()).unwrap();
        }
        {
            let _cp = Checkpoint::create(&path).unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert!(cp.is_empty(), "create starts over");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_keys_keep_the_last_record() {
        let path = temp_path("dup");
        {
            let cp = Checkpoint::create(&path).unwrap();
            cp.record(&sample_err()).unwrap();
            let mut retried = sample_err();
            retried.result = Ok(Measurement::synthetic(9.0));
            retried.retries = 1;
            cp.record(&retried).unwrap();
        }
        let cp = Checkpoint::resume(&path).unwrap();
        assert_eq!(cp.len(), 1);
        let o = cp.lookup(&sample_err().config).unwrap();
        assert!(o.result.is_ok(), "later record wins");
        assert_eq!(o.retries, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_object_parser_rejects_garbage() {
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"a\":1").is_none());
        assert!(parse_flat_object("{\"a\"}").is_none());
        assert!(parse_flat_object("{\"a\":1} trailing").is_none());
        let ok = parse_flat_object("{\"a\": 1, \"b\":\"x\", \"c\":null}").unwrap();
        assert_eq!(ok["a"], JsonValue::Raw("1".into()));
        assert_eq!(ok["b"], JsonValue::Str("x".into()));
        assert_eq!(ok["c"], JsonValue::Raw("null".into()));
    }

    #[test]
    fn escape_round_trips_control_chars() {
        let nasty = "a\"b\\c\nd\te\r\u{1}end";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let parsed = parse_flat_object(&line).unwrap();
        assert_eq!(parsed["k"], JsonValue::Str(nasty.into()));
    }
}
