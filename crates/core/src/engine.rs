//! The parallel execution engine behind sweeps and DSE.
//!
//! Everything that measures more than one configuration funnels through
//! here: the engine takes a work-list of [`BenchConfig`]s, executes them
//! across a pool of scoped worker threads (one [`Runner`] per worker),
//! and returns one [`Outcome`] per input **in input order** — results
//! are byte-identical to a serial run no matter the thread count,
//! because the device models are deterministic and every run gets a
//! fresh context.
//!
//! Sizing: the pool defaults to [`default_jobs`] — the `MPSTREAM_JOBS`
//! environment variable when set, otherwise the machine's available
//! parallelism — and never spawns more workers than there are work
//! items. `--jobs` on the CLI and figure harness overrides it.
//!
//! Caching: every engine owns a [`BuildCache`] shared by its workers, so
//! a configuration is synthesized once per device model per engine
//! lifetime; sweep layers report per-call hit/miss deltas.

use crate::config::BenchConfig;
use crate::runner::{Measurement, Runner};
use kernelgen::KernelConfig;
use mpcl::{BuildCache, CacheStats, ClError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// One executed configuration: the shared result vocabulary of sweeps
/// and explorers (previously the duplicated `SweepPoint`/`Evaluation`).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The configuration.
    pub config: KernelConfig,
    /// Measurement, or the error (typically an FPGA synthesis failure —
    /// a first-class result of a sweep, not a crash).
    pub result: Result<Measurement, ClError>,
}

impl Outcome {
    /// Bandwidth if the run succeeded.
    pub fn gbps(&self) -> Option<f64> {
        self.result.as_ref().ok().map(|m| m.gbps())
    }

    /// FPGA logic usage if reported.
    pub fn logic(&self) -> Option<u64> {
        self.result
            .as_ref()
            .ok()
            .and_then(|m| m.resources)
            .map(|r| r.logic)
    }

    /// Did the run succeed?
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Default worker count: `MPSTREAM_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("MPSTREAM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A reusable parallel executor: a thread-pool size plus a shared
/// build-artifact cache.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Arc<BuildCache>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine sized by [`default_jobs`].
    pub fn new() -> Self {
        Engine::with_jobs(default_jobs())
    }

    /// Engine with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            cache: Arc::new(BuildCache::new()),
        }
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared build cache.
    pub fn cache(&self) -> &Arc<BuildCache> {
        &self.cache
    }

    /// Cumulative build-cache counters over this engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Execute `work` on a standard target, one fresh device per worker.
    pub fn run_list(&self, target: targets::TargetId, work: &[BenchConfig]) -> Vec<Outcome> {
        self.run_list_with(|| Runner::for_target(target), work)
    }

    /// Execute `work` with one runner per worker from `make_runner`
    /// (called once per worker thread; the engine's cache is attached to
    /// each). Results are returned in `work` order.
    pub fn run_list_with(
        &self,
        make_runner: impl Fn() -> Runner + Sync,
        work: &[BenchConfig],
    ) -> Vec<Outcome> {
        let jobs = self.jobs.min(work.len()).max(1);
        if jobs == 1 {
            let runner = make_runner().with_cache(Arc::clone(&self.cache));
            return work
                .iter()
                .map(|bc| Outcome {
                    config: bc.kernel.clone(),
                    result: runner.run(bc),
                })
                .collect();
        }

        // Work-stealing by atomic index; each worker owns one device and
        // reports (index, outcome) pairs, which are re-assembled in
        // input order afterwards. A panicking worker poisons nothing:
        // the scope propagates the panic after the others finish.
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Outcome)>();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let make_runner = &make_runner;
                let cache = Arc::clone(&self.cache);
                s.spawn(move || {
                    let runner = make_runner().with_cache(cache);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(bc) = work.get(i) else { break };
                        let outcome = Outcome {
                            config: bc.kernel.clone(),
                            result: runner.run(bc),
                        };
                        if tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<Outcome>> = work.iter().map(|_| None).collect();
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index executed"))
            .collect()
    }

    /// Execute every valid configuration of a `ParamSpace`-like config
    /// list under one measurement protocol.
    pub fn run_configs(
        &self,
        target: targets::TargetId,
        configs: Vec<KernelConfig>,
        protocol: impl Fn(KernelConfig) -> BenchConfig,
    ) -> Vec<Outcome> {
        let work: Vec<BenchConfig> = configs.into_iter().map(protocol).collect();
        self.run_list(target, &work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BenchConfig;
    use crate::space::ParamSpace;
    use kernelgen::{LoopMode, StreamOp};
    use targets::TargetId;

    fn work_list() -> Vec<BenchConfig> {
        ParamSpace::new()
            .ops([StreamOp::Copy, StreamOp::Triad])
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4, 8])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .configs()
            .into_iter()
            .map(|k| BenchConfig::new(k).with_ntimes(1).with_validation(false))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_in_order_and_values() {
        let work = work_list();
        let serial = Engine::with_jobs(1).run_list(TargetId::FpgaAocl, &work);
        let parallel = Engine::with_jobs(4).run_list(TargetId::FpgaAocl, &work);
        assert_eq!(serial.len(), work.len());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config, "input order preserved");
            assert_eq!(s.gbps(), p.gbps(), "identical measurements");
        }
    }

    #[test]
    fn engine_cache_counts_hits_on_revisit() {
        let work = work_list();
        let engine = Engine::with_jobs(2);
        engine.run_list(TargetId::FpgaAocl, &work);
        let first = engine.cache_stats();
        assert_eq!(
            first.misses as usize,
            work.len(),
            "first pass builds everything"
        );
        engine.run_list(TargetId::FpgaAocl, &work);
        let second = engine.cache_stats().since(first);
        assert_eq!(second.misses, 0, "second pass is all hits");
        assert_eq!(second.hits as usize, work.len());
    }

    #[test]
    fn more_jobs_than_work_is_fine() {
        let work = work_list();
        let out = Engine::with_jobs(64).run_list(TargetId::Cpu, &work);
        assert_eq!(out.len(), work.len());
        assert!(out.iter().all(|o| o.is_ok()));
    }

    #[test]
    fn empty_work_list() {
        assert!(Engine::with_jobs(4).run_list(TargetId::Cpu, &[]).is_empty());
    }

    #[test]
    fn default_jobs_is_positive_and_env_overrides() {
        assert!(default_jobs() >= 1);
        // Engine::with_jobs clamps zero.
        assert_eq!(Engine::with_jobs(0).jobs(), 1);
    }
}
