//! The parallel execution engine behind sweeps and DSE.
//!
//! Everything that measures more than one configuration funnels through
//! here: the engine takes a work-list of [`BenchConfig`]s, executes them
//! across a pool of scoped worker threads (one [`Runner`] per worker),
//! and returns one [`Outcome`] per input **in input order** — results
//! are byte-identical to a serial run no matter the thread count,
//! because the device models are deterministic and every run gets a
//! fresh context.
//!
//! Sizing: the pool defaults to [`default_jobs`] — the `MPSTREAM_JOBS`
//! environment variable when set, otherwise the machine's available
//! parallelism — and never spawns more workers than there are work
//! items. `--jobs` on the CLI and figure harness overrides it.
//!
//! Caching: every engine owns a [`BuildCache`] shared by its workers, so
//! a configuration is synthesized once per device model per engine
//! lifetime; sweep layers report per-call hit/miss deltas.
//!
//! Resilience: every configuration executes inside a protected retry
//! loop. Worker panics are caught (`catch_unwind`) and become
//! [`ClError::HostPanic`] outcomes instead of killing the sweep;
//! transient failures ([`ClError::is_transient`] — lost devices,
//! watchdog timeouts, synthesis-tool crashes — plus launches whose
//! STREAM validation failed, i.e. silent data corruption) are retried
//! under a [`ResiliencePolicy`] with deterministic exponential backoff
//! and an optional per-configuration deadline. Retry activity is
//! counted in [`RetryStats`], reported by sweeps next to the cache
//! counters. An [`mpcl::FaultPlan`] attached via
//! [`Engine::with_faults`] is threaded into every worker's contexts so
//! the whole machinery can be exercised deterministically.

use crate::config::BenchConfig;
use crate::runner::{Measurement, Runner};
use crate::trace::{self, Trace, TID_ENGINE};
use kernelgen::KernelConfig;
use mpcl::{BuildCache, CacheStats, ClError, FaultCounters, FaultPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag. Clone it freely: all clones
/// observe the same state. An [`Engine`] carrying a token (see
/// [`Engine::with_cancel`]) stops dispatching new configurations once
/// the token is cancelled — in-flight configurations finish (and are
/// checkpointed as usual), never-started ones come back as
/// [`ClError::Cancelled`] outcomes, which are **not** passed to the
/// checkpointing observer, so a cancelled sweep resumes exactly where
/// it stopped.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One executed configuration: the shared result vocabulary of sweeps
/// and explorers (previously the duplicated `SweepPoint`/`Evaluation`).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The configuration.
    pub config: KernelConfig,
    /// Measurement, or the error (typically an FPGA synthesis failure —
    /// a first-class result of a sweep, not a crash).
    pub result: Result<Measurement, ClError>,
    /// How many times the configuration was re-attempted after
    /// transient failures before this result stood.
    pub retries: u32,
}

impl Outcome {
    /// An outcome that needed no retries.
    pub fn new(config: KernelConfig, result: Result<Measurement, ClError>) -> Self {
        Outcome {
            config,
            result,
            retries: 0,
        }
    }

    /// Bandwidth if the run succeeded.
    pub fn gbps(&self) -> Option<f64> {
        self.result.as_ref().ok().map(|m| m.gbps())
    }

    /// FPGA logic usage if reported.
    pub fn logic(&self) -> Option<u64> {
        self.result
            .as_ref()
            .ok()
            .and_then(|m| m.resources)
            .map(|r| r.logic)
    }

    /// Did the run succeed?
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Default worker count: `MPSTREAM_JOBS` when set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown). An
/// invalid override (`0`, `abc`) falls back to hardware sizing with a
/// one-time warning on stderr rather than silently
/// (see [`crate::env::positive_or_warn`]).
pub fn default_jobs() -> usize {
    crate::env::positive_or_warn("MPSTREAM_JOBS", "hardware parallelism").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Fault spec from `MPSTREAM_FAULTS`, if set and valid (an invalid spec
/// warns on stderr and is ignored — a typo must not silently disable an
/// intended fault campaign *and* must not abort an innocent run).
pub fn env_fault_spec() -> Option<mpcl::FaultSpec> {
    let v = std::env::var("MPSTREAM_FAULTS").ok()?;
    match mpcl::FaultSpec::parse(&v) {
        Ok(spec) if !spec.is_zero() => Some(spec),
        Ok(_) => None,
        Err(e) => {
            eprintln!("warning: ignoring invalid MPSTREAM_FAULTS: {e}");
            None
        }
    }
}

/// Fault seed from `MPSTREAM_FAULT_SEED`, if set and numeric.
pub fn env_fault_seed() -> Option<u64> {
    crate::env::parsed("MPSTREAM_FAULT_SEED")
}

/// Retry budget from `MPSTREAM_RETRIES`, if set and numeric.
pub fn env_retries() -> Option<u32> {
    crate::env::parsed("MPSTREAM_RETRIES")
}

/// FNV-1a over `bytes` (64-bit). Used wherever a *stable* identity is
/// derived from a textual key — fault-injection rolls key on it, and
/// the cluster layer derives shard ids from it — so the value must
/// never change across versions: offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Split a sweep of `total` configurations into contiguous shards of at
/// most `shard_points` points each, as `(start, end)` index ranges into
/// the deterministic cartesian order of the [`crate::space::ParamSpace`].
/// The planning is a pure function of its inputs, so re-planning the
/// same sweep yields the same shards (the cluster layer relies on this
/// for idempotent re-submission). `shard_points` is clamped to >= 1;
/// the final shard may be short.
pub fn plan_shards(total: usize, shard_points: usize) -> Vec<(usize, usize)> {
    let step = shard_points.max(1);
    let mut shards = Vec::with_capacity(total.div_ceil(step));
    let mut start = 0;
    while start < total {
        let end = (start + step).min(total);
        shards.push((start, end));
        start = end;
    }
    shards
}

/// Default fault seed when a fault campaign is requested without one.
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED;

/// Default retry budget when faults are enabled and no explicit budget
/// was given.
pub const DEFAULT_FAULT_RETRIES: u32 = 3;

/// How the engine responds to transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Re-attempts allowed per configuration after transient failures
    /// (0 = fail fast, the historical behaviour).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (deterministic — no
    /// jitter, so reruns sleep identically).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Wall-clock budget per configuration: once exceeded, no further
    /// retries are attempted (the in-flight attempt is not preempted).
    pub per_config_deadline: Option<Duration>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            per_config_deadline: None,
        }
    }
}

impl ResiliencePolicy {
    /// A policy allowing `max_retries` re-attempts (default backoff, no
    /// deadline).
    pub fn retrying(max_retries: u32) -> Self {
        ResiliencePolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// Replace the backoff schedule (base doubles per retry up to cap;
    /// `Duration::ZERO` disables sleeping, as the tests do).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Set the per-configuration deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.per_config_deadline = Some(deadline);
        self
    }

    /// Deterministic exponential backoff before retry number `retry`
    /// (1-based): `base * 2^(retry-1)`, capped.
    pub fn backoff_after(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1u32 << doublings)
            .min(self.backoff_cap)
    }
}

/// Counters of the engine's resilience machinery, cheap to copy out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Re-attempts performed after transient failures.
    pub retries: u64,
    /// Transient failures observed (including ones that were retried
    /// away and launches failing STREAM validation).
    pub transient_errors: u64,
    /// Configurations whose retry budget or deadline ran out while
    /// still failing transiently.
    pub gave_up: u64,
    /// Worker panics converted into [`ClError::HostPanic`] outcomes.
    pub panics_isolated: u64,
}

impl RetryStats {
    /// Counter difference since an earlier snapshot.
    pub fn since(&self, earlier: RetryStats) -> RetryStats {
        RetryStats {
            retries: self.retries.saturating_sub(earlier.retries),
            transient_errors: self
                .transient_errors
                .saturating_sub(earlier.transient_errors),
            gave_up: self.gave_up.saturating_sub(earlier.gave_up),
            panics_isolated: self.panics_isolated.saturating_sub(earlier.panics_isolated),
        }
    }
}

/// A reusable parallel executor: a thread-pool size, a shared
/// build-artifact cache, a resilience policy and (optionally) a fault
/// plan to stress it with.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Arc<BuildCache>,
    policy: ResiliencePolicy,
    faults: Option<Arc<FaultPlan>>,
    trace: Option<Arc<Trace>>,
    cancel: Option<CancelToken>,
    retries: AtomicU64,
    transient_errors: AtomicU64,
    gave_up: AtomicU64,
    panics_isolated: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine sized by [`default_jobs`].
    pub fn new() -> Self {
        Engine::with_jobs(default_jobs())
    }

    /// Engine with an explicit worker count (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            cache: Arc::new(BuildCache::new()),
            policy: ResiliencePolicy::default(),
            faults: None,
            trace: None,
            cancel: None,
            retries: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
        }
    }

    /// Set the resilience policy.
    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a fault-injection plan, threaded into every worker's
    /// contexts (`None` detaches).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a trace sink: every configuration executed through this
    /// engine records spans/counters into it (`None` detaches — the
    /// default, costing nothing).
    pub fn with_trace(mut self, trace: Option<Arc<Trace>>) -> Self {
        self.trace = trace;
        self
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// Attach a cooperative cancellation token (`None` detaches). Once
    /// the token fires, workers stop claiming new configurations and
    /// the retry loop stops re-attempting; see [`CancelToken`].
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// The attached cancel token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Has the attached token requested cancellation?
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The active resilience policy.
    pub fn policy(&self) -> ResiliencePolicy {
        self.policy
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Injection counters of the attached fault plan (zero when none).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|f| f.counters())
            .unwrap_or_default()
    }

    /// The shared build cache.
    pub fn cache(&self) -> &Arc<BuildCache> {
        &self.cache
    }

    /// Cumulative build-cache counters over this engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative retry/panic counters over this engine's lifetime.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            retries: self.retries.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
        }
    }

    /// Execute `work` on a standard target, one fresh device per worker.
    pub fn run_list(&self, target: targets::TargetId, work: &[BenchConfig]) -> Vec<Outcome> {
        self.run_list_with(|| Runner::for_target(target), work)
    }

    /// Execute `work` with one runner per worker from `make_runner`
    /// (called once per worker thread; the engine's cache and fault plan
    /// are attached to each). Results are returned in `work` order.
    pub fn run_list_with(
        &self,
        make_runner: impl Fn() -> Runner + Sync,
        work: &[BenchConfig],
    ) -> Vec<Outcome> {
        self.run_list_observed(make_runner, work, |_| {})
    }

    /// Like [`run_list_with`](Self::run_list_with), calling `observe` on
    /// each outcome as soon as its worker finishes it (out of input
    /// order; the returned vector is still input-ordered). Used for
    /// incremental checkpointing.
    pub fn run_list_observed(
        &self,
        make_runner: impl Fn() -> Runner + Sync,
        work: &[BenchConfig],
        observe: impl Fn(&Outcome) + Sync,
    ) -> Vec<Outcome> {
        let slots = self.execute_indexed(
            work.len(),
            || self.equip(make_runner()),
            |runner, i| {
                let _task = self
                    .trace
                    .as_ref()
                    .map(|t| trace::begin_task(Arc::clone(t), i as u64));
                self.run_one_with(runner, &work[i])
            },
            observe,
        );
        self.fill_cancelled(slots, |i| work[i].kernel.clone())
    }

    /// Replace the `None` slots a cancelled pool run leaves behind with
    /// [`ClError::Cancelled`] outcomes (never observed, never
    /// checkpointed — a resumed sweep re-runs them).
    fn fill_cancelled(
        &self,
        slots: Vec<Option<Outcome>>,
        config_of: impl Fn(usize) -> KernelConfig,
    ) -> Vec<Outcome> {
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| Outcome::new(config_of(i), Err(ClError::Cancelled))))
            .collect()
    }

    /// Attach this engine's cache and fault plan to a runner.
    fn equip(&self, runner: Runner) -> Runner {
        runner
            .with_cache(Arc::clone(&self.cache))
            .with_faults(self.faults.clone())
    }

    /// Execute one configuration on `runner` under the engine's
    /// resilience policy (retry loop, backoff, deadline, panic
    /// isolation). The runner should carry the engine's cache/fault
    /// plan — [`run_list_with`](Self::run_list_with) workers do; attach
    /// them with [`Runner::with_cache`]/[`Runner::with_faults`] when
    /// driving this directly (as the DSE climbers do).
    pub fn run_one_with(&self, runner: &Runner, bc: &BenchConfig) -> Outcome {
        self.run_protected(&bc.kernel, || runner.run(bc))
    }

    /// The resilient execution core: run `attempt` under
    /// `catch_unwind`, classify the result, and retry transient
    /// failures per the policy. Panics become [`ClError::HostPanic`]
    /// (permanent). A successful measurement that failed STREAM
    /// validation counts as transient — silent data corruption is
    /// exactly what a retry can clear.
    pub fn run_protected(
        &self,
        config: &KernelConfig,
        attempt: impl Fn() -> Result<Measurement, ClError>,
    ) -> Outcome {
        let started = Instant::now();
        let mut retries = 0u32;
        loop {
            let t0 = trace::vclock_ns();
            let result = match catch_unwind(AssertUnwindSafe(&attempt)) {
                Ok(r) => r,
                Err(payload) => {
                    self.panics_isolated.fetch_add(1, Ordering::Relaxed);
                    Err(ClError::HostPanic(panic_message(payload)))
                }
            };
            let transient = match &result {
                Err(e) => e.is_transient(),
                Ok(m) => m.validated == Some(false),
            };
            // The attempt span covers the virtual time the attempt
            // consumed (synthesis + queue activity, advanced by the
            // runner); faults and failed validations get an instant so
            // a fault-injected trace shows exactly the injected sites.
            match &result {
                Err(e) if e.is_transient() => {
                    trace::instant(TID_ENGINE, "fault", trace::vclock_ns(), || {
                        trace::args([("code", e.code().into())])
                    });
                }
                Ok(m) if m.validated == Some(false) => {
                    trace::instant(TID_ENGINE, "fault", trace::vclock_ns(), || {
                        trace::args([("code", "ValidationFailed".into())])
                    });
                }
                _ => {}
            }
            trace::span(TID_ENGINE, "attempt", t0, trace::vclock_ns() - t0, || {
                let mut span_args = trace::args([("n", retries.into())]);
                if let Err(e) = &result {
                    span_args.push(("error".into(), e.code().into()));
                }
                span_args
            });
            if !transient {
                return Outcome {
                    config: config.clone(),
                    result,
                    retries,
                };
            }
            self.transient_errors.fetch_add(1, Ordering::Relaxed);
            // A fired cancel token ends the retry loop like an exhausted
            // budget: the transient result stands (it is not recorded as
            // gave-up — the operator asked for it).
            if self.is_cancelled() {
                return Outcome {
                    config: config.clone(),
                    result,
                    retries,
                };
            }
            let deadline_passed = self
                .policy
                .per_config_deadline
                .is_some_and(|d| started.elapsed() >= d);
            if retries >= self.policy.max_retries || deadline_passed {
                self.gave_up.fetch_add(1, Ordering::Relaxed);
                return Outcome {
                    config: config.clone(),
                    result,
                    retries,
                };
            }
            retries += 1;
            self.retries.fetch_add(1, Ordering::Relaxed);
            let backoff = self.policy.backoff_after(retries);
            if !backoff.is_zero() {
                // The backoff sleep is part of the deterministic
                // schedule (no jitter), so it lives on the virtual
                // timeline too.
                let backoff_ns = backoff.as_nanos() as f64;
                trace::span(
                    TID_ENGINE,
                    "backoff",
                    trace::vclock_ns(),
                    backoff_ns,
                    || trace::args([("retry", retries.into())]),
                );
                trace::advance_vclock(backoff_ns);
                std::thread::sleep(backoff);
            }
        }
    }

    /// Execute an arbitrary per-configuration objective across the pool
    /// under the resilience policy — the engine-backed path for
    /// explorers whose objective is not a [`Runner`] (and the test
    /// hook for panic isolation). Results are input-ordered.
    pub fn run_objective_list(
        &self,
        configs: &[KernelConfig],
        objective: impl Fn(&KernelConfig) -> Result<Measurement, ClError> + Sync,
    ) -> Vec<Outcome> {
        let slots = self.execute_indexed(
            configs.len(),
            || (),
            |(), i| {
                let _task = self
                    .trace
                    .as_ref()
                    .map(|t| trace::begin_task(Arc::clone(t), i as u64));
                self.run_protected(&configs[i], || objective(&configs[i]))
            },
            |_| {},
        );
        self.fill_cancelled(slots, |i| configs[i].clone())
    }

    /// The shared pool core: evaluate indices `0..n` across up to
    /// `jobs` workers (each owning one `make_worker()` value), calling
    /// `observe` on every outcome as produced, and return outcomes in
    /// index order. A fired cancel token stops workers from claiming
    /// further indices; unclaimed slots come back `None` (callers
    /// synthesize [`ClError::Cancelled`] outcomes for them).
    fn execute_indexed<W>(
        &self,
        n: usize,
        make_worker: impl Fn() -> W + Sync,
        eval: impl Fn(&W, usize) -> Outcome + Sync,
        observe: impl Fn(&Outcome) + Sync,
    ) -> Vec<Option<Outcome>> {
        let jobs = self.jobs.min(n).max(1);
        let schedule = |worker: usize, i: usize| {
            if let Some(t) = &self.trace {
                t.wall_instant(
                    i as u64,
                    "schedule",
                    trace::args([("worker", (worker as u64).into())]),
                );
            }
        };
        if jobs == 1 {
            let worker = make_worker();
            return (0..n)
                .map(|i| {
                    if self.is_cancelled() {
                        return None;
                    }
                    schedule(0, i);
                    let outcome = eval(&worker, i);
                    observe(&outcome);
                    Some(outcome)
                })
                .collect();
        }

        // Work-stealing by atomic index; each worker owns one device and
        // reports (index, outcome) pairs, which are re-assembled in
        // input order afterwards. Configuration-level panics never reach
        // here (eval catches them); a panicking worker loop itself would
        // still only propagate after the other workers finish.
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Outcome)>();
        std::thread::scope(|s| {
            for w in 0..jobs {
                let tx = tx.clone();
                let next = &next;
                let make_worker = &make_worker;
                let eval = &eval;
                let observe = &observe;
                let schedule = &schedule;
                s.spawn(move || {
                    let worker = make_worker();
                    loop {
                        if self.is_cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        schedule(w, i);
                        let outcome = eval(&worker, i);
                        observe(&outcome);
                        if tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }
        slots
    }

    /// Execute every valid configuration of a `ParamSpace`-like config
    /// list under one measurement protocol.
    pub fn run_configs(
        &self,
        target: targets::TargetId,
        configs: Vec<KernelConfig>,
        protocol: impl Fn(KernelConfig) -> BenchConfig,
    ) -> Vec<Outcome> {
        let work: Vec<BenchConfig> = configs.into_iter().map(protocol).collect();
        self.run_list(target, &work)
    }
}

/// Render a panic payload (usually a `&str` or `String`) for
/// [`ClError::HostPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BenchConfig;
    use crate::space::ParamSpace;
    use kernelgen::{LoopMode, StreamOp};
    use targets::TargetId;

    fn work_list() -> Vec<BenchConfig> {
        ParamSpace::new()
            .ops([StreamOp::Copy, StreamOp::Triad])
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4, 8])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .configs()
            .into_iter()
            .map(|k| BenchConfig::new(k).with_ntimes(1).with_validation(false))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_in_order_and_values() {
        let work = work_list();
        let serial = Engine::with_jobs(1).run_list(TargetId::FpgaAocl, &work);
        let parallel = Engine::with_jobs(4).run_list(TargetId::FpgaAocl, &work);
        assert_eq!(serial.len(), work.len());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config, "input order preserved");
            assert_eq!(s.gbps(), p.gbps(), "identical measurements");
        }
    }

    #[test]
    fn engine_cache_counts_hits_on_revisit() {
        let work = work_list();
        let engine = Engine::with_jobs(2);
        engine.run_list(TargetId::FpgaAocl, &work);
        let first = engine.cache_stats();
        assert_eq!(
            first.misses as usize,
            work.len(),
            "first pass builds everything"
        );
        engine.run_list(TargetId::FpgaAocl, &work);
        let second = engine.cache_stats().since(first);
        assert_eq!(second.misses, 0, "second pass is all hits");
        assert_eq!(second.hits as usize, work.len());
    }

    #[test]
    fn more_jobs_than_work_is_fine() {
        let work = work_list();
        let out = Engine::with_jobs(64).run_list(TargetId::Cpu, &work);
        assert_eq!(out.len(), work.len());
        assert!(out.iter().all(|o| o.is_ok()));
        assert!(out.iter().all(|o| o.retries == 0), "no faults, no retries");
    }

    #[test]
    fn empty_work_list() {
        assert!(Engine::with_jobs(4).run_list(TargetId::Cpu, &[]).is_empty());
    }

    #[test]
    fn default_jobs_is_positive_and_env_overrides() {
        assert!(default_jobs() >= 1);
        // Engine::with_jobs clamps zero.
        assert_eq!(Engine::with_jobs(0).jobs(), 1);
    }

    // MPSTREAM_JOBS override parsing (positive integers only, warn-once
    // on garbage) lives in `crate::env` now and is tested there.

    #[test]
    fn fnv1a_matches_published_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn plan_shards_covers_the_range_exactly_once() {
        assert!(plan_shards(0, 8).is_empty());
        assert_eq!(plan_shards(5, 8), vec![(0, 5)]);
        assert_eq!(plan_shards(8, 8), vec![(0, 8)]);
        assert_eq!(plan_shards(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(plan_shards(3, 0), vec![(0, 1), (1, 2), (2, 3)], "clamped");
        // Every index appears exactly once, in order, at any granularity.
        for step in 1..20 {
            let shards = plan_shards(97, step);
            let flat: Vec<usize> = shards.iter().flat_map(|&(s, e)| s..e).collect();
            assert_eq!(flat, (0..97).collect::<Vec<_>>(), "step {step}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ResiliencePolicy::retrying(8)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(p.backoff_after(1), Duration::from_millis(10));
        assert_eq!(p.backoff_after(2), Duration::from_millis(20));
        assert_eq!(p.backoff_after(3), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff_after(30), Duration::from_millis(35));
        let zero = ResiliencePolicy::retrying(1).with_backoff(Duration::ZERO, Duration::ZERO);
        assert!(zero.backoff_after(5).is_zero());
    }

    #[test]
    fn run_protected_retries_transient_and_counts() {
        let engine = Engine::with_jobs(1).with_policy(
            ResiliencePolicy::retrying(3).with_backoff(Duration::ZERO, Duration::ZERO),
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let calls = AtomicU64::new(0);
        let out = engine.run_protected(&cfg, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(ClError::DeviceLost)
            } else {
                Ok(Measurement::synthetic(10.0))
            }
        });
        assert!(out.is_ok());
        assert_eq!(out.retries, 2);
        let stats = engine.retry_stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.transient_errors, 2);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn run_protected_gives_up_after_budget() {
        let engine = Engine::with_jobs(1).with_policy(
            ResiliencePolicy::retrying(2).with_backoff(Duration::ZERO, Duration::ZERO),
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let out = engine.run_protected(&cfg, || Err(ClError::Timeout("stuck".into())));
        assert_eq!(out.result, Err(ClError::Timeout("stuck".into())));
        assert_eq!(out.retries, 2, "budget exhausted");
        assert_eq!(engine.retry_stats().gave_up, 1);
    }

    #[test]
    fn run_protected_does_not_retry_permanent_errors() {
        let engine = Engine::with_jobs(1).with_policy(
            ResiliencePolicy::retrying(5).with_backoff(Duration::ZERO, Duration::ZERO),
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let calls = AtomicU64::new(0);
        let out = engine.run_protected(&cfg, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(ClError::BuildProgramFailure("does not fit".into()))
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry");
        assert_eq!(out.retries, 0);
        assert_eq!(engine.retry_stats(), RetryStats::default());
    }

    #[test]
    fn deadline_stops_retrying() {
        let engine = Engine::with_jobs(1).with_policy(
            ResiliencePolicy::retrying(u32::MAX)
                .with_backoff(Duration::ZERO, Duration::ZERO)
                .with_deadline(Duration::from_millis(20)),
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let out = engine.run_protected(&cfg, || {
            std::thread::sleep(Duration::from_millis(5));
            Err(ClError::DeviceLost)
        });
        assert!(out.result.is_err());
        assert!(out.retries < 100, "deadline bounded the retries");
        assert_eq!(engine.retry_stats().gave_up, 1);
    }

    #[test]
    fn pre_cancelled_engine_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1, 4] {
            let engine = Engine::with_jobs(jobs).with_cancel(Some(token.clone()));
            let work = work_list();
            let out = engine.run_list(TargetId::Cpu, &work);
            assert_eq!(out.len(), work.len(), "every slot answered");
            for (o, w) in out.iter().zip(&work) {
                assert_eq!(o.config, w.kernel, "cancelled outcome keeps its config");
                assert_eq!(o.result, Err(ClError::Cancelled));
            }
        }
    }

    #[test]
    fn cancel_mid_run_stops_dispatch_and_skips_observe() {
        let token = CancelToken::new();
        let engine = Engine::with_jobs(1).with_cancel(Some(token.clone()));
        let work = work_list();
        let observed = AtomicU64::new(0);
        let out = engine.run_list_observed(
            || Runner::for_target(TargetId::Cpu),
            &work,
            |o| {
                assert!(o.result != Err(ClError::Cancelled), "never observed");
                // Cancel after the second completed configuration.
                if observed.fetch_add(1, Ordering::Relaxed) == 1 {
                    token.cancel();
                }
            },
        );
        assert_eq!(observed.load(Ordering::Relaxed), 2);
        assert_eq!(out.len(), work.len());
        assert!(out[..2].iter().all(|o| o.is_ok()));
        assert!(out[2..].iter().all(|o| o.result == Err(ClError::Cancelled)));
    }

    #[test]
    fn cancel_stops_the_retry_loop() {
        let token = CancelToken::new();
        let engine = Engine::with_jobs(1)
            .with_policy(
                ResiliencePolicy::retrying(u32::MAX).with_backoff(Duration::ZERO, Duration::ZERO),
            )
            .with_cancel(Some(token.clone()));
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let calls = AtomicU64::new(0);
        let out = engine.run_protected(&cfg, || {
            if calls.fetch_add(1, Ordering::Relaxed) == 2 {
                token.cancel();
            }
            Err(ClError::DeviceLost)
        });
        assert!(out.result.is_err());
        assert!(
            calls.load(Ordering::Relaxed) <= 4,
            "cancellation broke an otherwise unbounded retry loop"
        );
        assert_eq!(engine.retry_stats().gave_up, 0, "cancel is not give-up");
    }

    #[test]
    fn failed_validation_is_retried() {
        let engine = Engine::with_jobs(1).with_policy(
            ResiliencePolicy::retrying(1).with_backoff(Duration::ZERO, Duration::ZERO),
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 1024);
        let calls = AtomicU64::new(0);
        let out = engine.run_protected(&cfg, || {
            let mut m = Measurement::synthetic(10.0);
            m.validated = Some(calls.fetch_add(1, Ordering::Relaxed) > 0);
            Ok(m)
        });
        assert_eq!(out.retries, 1);
        assert_eq!(
            out.result.unwrap().validated,
            Some(true),
            "retry cleared it"
        );
    }
}
