//! Zero-dependency ASCII charts: line/scatter/bar series on linear,
//! log2 or log10 axes, with labelled legends and deterministic
//! fixed-width output.
//!
//! This module is the general renderer behind the `figures` binary,
//! `--chart` sweep/DSE reports, `mpstream watch`, `bench-self`
//! trajectories and the golden figure charts in
//! `tests/report_golden.rs` ([`crate::report::ascii_loglog`] remains
//! only as the minimal standalone log-log scatter). The determinism contract is strict: the
//! output is a pure function of the series data and the chart
//! configuration — no wall clock, no locale, no terminal probing — so
//! renderings are byte-identical across runs, worker counts and
//! fault injection, and safe to pin as goldens.

use crate::report::Series;
use std::fmt::Write as _;

/// An axis transform. Log axes drop non-positive values (they have no
/// finite image), exactly as the paper's log-scaled figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Identity.
    #[default]
    Linear,
    /// `log2(v)` — the natural axis for sizes and widths that double.
    Log2,
    /// `log10(v)` — the paper's bandwidth axis.
    Log10,
}

impl Scale {
    /// The transformed coordinate, `None` when the value has no image.
    fn apply(self, v: f64) -> Option<f64> {
        match self {
            Scale::Linear => v.is_finite().then_some(v),
            Scale::Log2 => (v > 0.0 && v.is_finite()).then(|| v.log2()),
            Scale::Log10 => (v > 0.0 && v.is_finite()).then(|| v.log10()),
        }
    }

    /// Render one axis bound in the scale's own notation.
    fn bound(self, t: f64) -> String {
        match self {
            Scale::Linear => fmt_num(t),
            Scale::Log2 => format!("2^{t:.1}"),
            Scale::Log10 => format!("1e{t:.1}"),
        }
    }

    /// The axis-line suffix naming the scale.
    fn tag(self) -> &'static str {
        match self {
            Scale::Linear => "",
            Scale::Log2 => " (log2)",
            Scale::Log10 => " (log10)",
        }
    }
}

/// How one series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Style {
    /// Points joined column-by-column with linear interpolation.
    Line,
    /// Points only.
    Scatter,
    /// A vertical bar from the x axis up to each point.
    Bar,
}

/// Per-series marker letters, in legend order.
const MARKERS: [char; 8] = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];

/// A chart under construction. Build with the chainable methods, then
/// [`render`](Chart::render) to a `String`.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    width: usize,
    height: usize,
    series: Vec<(Series, Style)>,
}

impl Chart {
    /// A chart with the default 64x16 plot area and linear axes.
    pub fn new(title: impl Into<String>) -> Chart {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            width: 64,
            height: 16,
            series: Vec::new(),
        }
    }

    /// Set the plot area (columns x rows), floored at 8x4.
    pub fn size(mut self, width: usize, height: usize) -> Chart {
        self.width = width.max(8);
        self.height = height.max(4);
        self
    }

    /// Set the x-axis scale.
    pub fn x_scale(mut self, scale: Scale) -> Chart {
        self.x_scale = scale;
        self
    }

    /// Set the y-axis scale.
    pub fn y_scale(mut self, scale: Scale) -> Chart {
        self.y_scale = scale;
        self
    }

    /// Name the x axis.
    pub fn x_label(mut self, label: impl Into<String>) -> Chart {
        self.x_label = label.into();
        self
    }

    /// Name the y axis.
    pub fn y_label(mut self, label: impl Into<String>) -> Chart {
        self.y_label = label.into();
        self
    }

    /// Add a line series.
    pub fn line(mut self, series: Series) -> Chart {
        self.series.push((series, Style::Line));
        self
    }

    /// Add a scatter series.
    pub fn scatter(mut self, series: Series) -> Chart {
        self.series.push((series, Style::Scatter));
        self
    }

    /// Add a bar series.
    pub fn bar(mut self, series: Series) -> Chart {
        self.series.push((series, Style::Bar));
        self
    }

    /// The plottable (transformed) points of one series, in x order as
    /// given.
    fn transformed(&self, s: &Series) -> Vec<(f64, f64)> {
        s.points
            .iter()
            .filter_map(|&(x, y)| Some((self.x_scale.apply(x)?, self.y_scale.apply(y)?)))
            .collect()
    }

    /// Render the chart. Empty or fully-unplottable input renders the
    /// title and `(no data)` so callers never special-case.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(s, _)| self.transformed(s))
            .collect();
        if all.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Bars are anchored to the axis, so the axis must be in range.
        if self.series.iter().any(|(_, st)| *st == Style::Bar) {
            y0 = y0.min(0.0);
        }
        if (x1 - x0).abs() < 1e-9 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-9 {
            y1 = y0 + 1.0;
        }

        let (w, h) = (self.width, self.height);
        let col = |x: f64| (((x - x0) / (x1 - x0)) * (w - 1) as f64).round() as usize;
        let row = |y: f64| (((y - y0) / (y1 - y0)) * (h - 1) as f64).round() as usize;
        let mut grid = vec![vec![' '; w]; h];
        // A cell keeps the first marker drawn into it, so the legend
        // order decides collisions — deterministic and documented.
        let plot = |grid: &mut Vec<Vec<char>>, gx: usize, gy: usize, m: char| {
            let cell = &mut grid[h - 1 - gy][gx];
            if *cell == ' ' {
                *cell = m;
            }
        };

        for (si, (s, style)) in self.series.iter().enumerate() {
            let m = MARKERS[si % MARKERS.len()];
            let pts = self.transformed(s);
            match style {
                Style::Scatter => {
                    for &(x, y) in &pts {
                        plot(&mut grid, col(x), row(y), m);
                    }
                }
                Style::Bar => {
                    let base = row(y0.max(0.0).min(y1));
                    for &(x, y) in &pts {
                        let (gx, gy) = (col(x), row(y));
                        for fy in base.min(gy)..=base.max(gy) {
                            plot(&mut grid, gx, fy, m);
                        }
                    }
                }
                Style::Line => {
                    for &(x, y) in &pts {
                        plot(&mut grid, col(x), row(y), m);
                    }
                    for pair in pts.windows(2) {
                        let ((xa, ya), (xb, yb)) = (pair[0], pair[1]);
                        let (ca, cb) = (col(xa), col(xb));
                        let (lo, hi) = (ca.min(cb), ca.max(cb));
                        for gx in lo..=hi {
                            if hi == lo {
                                continue;
                            }
                            let t = (gx - lo) as f64 / (hi - lo) as f64;
                            // Interpolate in draw direction, whichever
                            // way x runs.
                            let (yl, yr) = if ca <= cb { (ya, yb) } else { (yb, ya) };
                            let y = yl + (yr - yl) * t;
                            plot(&mut grid, gx, row(y), m);
                        }
                    }
                }
            }
        }

        let y_name = if self.y_label.is_empty() {
            String::new()
        } else {
            format!("  [{}]", self.y_label)
        };
        let _ = writeln!(
            out,
            "  y: {} .. {}{}{}",
            self.y_scale.bound(y0),
            self.y_scale.bound(y1),
            self.y_scale.tag(),
            y_name
        );
        for r in grid {
            out.push_str("  |");
            out.extend(r);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(w));
        out.push('\n');
        let x_name = if self.x_label.is_empty() {
            String::new()
        } else {
            format!("  [{}]", self.x_label)
        };
        let _ = writeln!(
            out,
            "  x: {} .. {}{}{}",
            self.x_scale.bound(x0),
            self.x_scale.bound(x1),
            self.x_scale.tag(),
            x_name
        );
        for (si, (s, _)) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} = {}", MARKERS[si % MARKERS.len()], s.label);
        }
        out
    }
}

/// Format a linear axis bound compactly: round numbers without a
/// fraction, everything else with three significant decimals.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// The ASCII amplitude ramp sparklines draw from, low to high.
const RAMP: [char; 9] = ['.', ':', '-', '=', '+', 'o', 'x', '#', '@'];

/// A one-line ASCII sparkline of `values`, min-to-max normalized over
/// the ramp `. : - = + o x # @`. Non-finite values render as `?`; a
/// flat (or single-value) series renders at mid-ramp.
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if (hi - lo).abs() < 1e-12 {
                return RAMP[RAMP.len() / 2];
            }
            let t = (v - lo) / (hi - lo);
            RAMP[((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(label: &str, pts: &[(f64, f64)]) -> Series {
        Series::new(label, pts.to_vec())
    }

    #[test]
    fn render_is_deterministic_and_fixed_width() {
        let chart = Chart::new("bandwidth")
            .size(40, 10)
            .y_scale(Scale::Log10)
            .line(series("cpu", &[(1.0, 20.0), (2.0, 22.0), (3.0, 18.0)]))
            .scatter(series("gpu", &[(1.0, 150.0), (3.0, 202.0)]));
        let a = chart.render();
        let b = chart.render();
        assert_eq!(a, b, "two renders must be byte-identical");
        for line in a.lines().filter(|l| l.starts_with("  |")) {
            assert_eq!(line.chars().count(), 3 + 40, "fixed plot width: {line:?}");
        }
        assert_eq!(
            a.lines().filter(|l| l.starts_with("  |")).count(),
            10,
            "fixed plot height"
        );
        assert!(a.contains("a = cpu"), "{a}");
        assert!(a.contains("b = gpu"), "{a}");
        assert!(a.contains("(log10)"), "{a}");
    }

    #[test]
    fn empty_chart_says_no_data() {
        let rendered = Chart::new("empty").render();
        assert!(rendered.contains("(no data)"), "{rendered}");
        // All-nonpositive input on a log axis is equally unplottable.
        let rendered = Chart::new("neg")
            .y_scale(Scale::Log2)
            .line(series("s", &[(1.0, 0.0), (2.0, -3.0)]))
            .render();
        assert!(rendered.contains("(no data)"), "{rendered}");
    }

    #[test]
    fn log_axes_drop_nonpositive_points_only() {
        let rendered = Chart::new("mixed")
            .y_scale(Scale::Log10)
            .scatter(series("s", &[(1.0, 0.0), (2.0, 10.0), (3.0, 100.0)]))
            .render();
        assert!(rendered.contains("y: 1e1.0 .. 1e2.0"), "{rendered}");
    }

    #[test]
    fn line_interpolates_between_columns() {
        let rendered = Chart::new("")
            .size(11, 5)
            .line(series("s", &[(0.0, 0.0), (10.0, 10.0)]))
            .render();
        // A diagonal: every plot column carries the marker somewhere.
        let rows: Vec<&str> = rendered.lines().filter(|l| l.starts_with("  |")).collect();
        for col in 0..11 {
            assert!(
                rows.iter()
                    .any(|r| r.chars().nth(3 + col).unwrap_or(' ') == 'a'),
                "column {col} empty:\n{rendered}"
            );
        }
    }

    #[test]
    fn bars_reach_down_to_the_axis() {
        let rendered = Chart::new("")
            .size(8, 6)
            .bar(series("s", &[(1.0, 6.0), (2.0, 3.0)]))
            .render();
        let rows: Vec<&str> = rendered.lines().filter(|l| l.starts_with("  |")).collect();
        // The tallest bar fills its full column.
        let tall_col = rows
            .last()
            .unwrap()
            .chars()
            .skip(3)
            .position(|c| c == 'a')
            .expect("bottom row has a bar");
        assert!(
            rows.iter()
                .all(|r| r.chars().nth(3 + tall_col) == Some('a')),
            "{rendered}"
        );
    }

    #[test]
    fn first_series_wins_cell_collisions() {
        let rendered = Chart::new("")
            .size(8, 4)
            .scatter(series("first", &[(1.0, 1.0)]))
            .scatter(series("second", &[(1.0, 1.0)]))
            .line(series("spread", &[(0.0, 0.0), (2.0, 2.0)]))
            .render();
        assert!(!rendered.contains('b') || rendered.contains("b = second"));
        let plot: String = rendered.lines().filter(|l| l.starts_with("  |")).collect();
        assert!(plot.contains('a'), "{rendered}");
    }

    #[test]
    fn scale_bounds_render_in_their_own_notation() {
        assert_eq!(Scale::Linear.bound(4.0), "4");
        assert_eq!(Scale::Linear.bound(4.25), "4.250");
        assert_eq!(Scale::Log2.bound(16.0), "2^16.0");
        assert_eq!(Scale::Log10.bound(2.5), "1e2.5");
    }

    #[test]
    fn sparkline_tracks_amplitude() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "+");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "+++");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(line.chars().next(), Some('.'));
        assert_eq!(line.chars().last(), Some('@'));
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]), "?.@");
        // Deterministic: same input, same bytes.
        assert_eq!(sparkline(&[3.0, 1.0, 4.0]), sparkline(&[3.0, 1.0, 4.0]));
    }
}
