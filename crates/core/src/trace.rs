//! Structured tracing for the sweep engine: per-worker span recording
//! on the *simulated* timeline, exported as Chrome `trace_event` JSON
//! (load the file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//!
//! Two clocks coexist:
//!
//! * **Virtual** events sit on the deterministic simulated timeline —
//!   each configuration's timeline starts at 0 when its task begins and
//!   advances by synthesis time, queue time and (virtualized) backoff
//!   sleeps. Because every model is deterministic and faults are drawn
//!   from a pure function of `(seed, site, config, attempt)`, the
//!   virtual events of a sweep are identical at any `--jobs` count.
//! * **Wall** events record host-side scheduling facts that genuinely
//!   depend on thread interleaving: which worker claimed which
//!   configuration, build-cache hit/miss status (the first worker to
//!   reach a config wins the build), checkpoint writes. Their `ts` is a
//!   global sequence ordinal, not a clock — ordering, not duration.
//!
//! [`Trace::canonical_chrome_json`] keeps only the virtual events and
//! sorts them into a total order, producing byte-identical output for
//! the same seed and configuration list regardless of worker count —
//! the property the golden-trace tests (and the CI trace-determinism
//! job) pin.
//!
//! Recording is thread-local: [`begin_task`] arms the current worker
//! thread for one configuration (its `pid` in the trace); the free
//! functions ([`span`], [`counter`], [`instant`], [`advance_vclock`])
//! are no-ops on unarmed threads, so instrumented code needs no
//! plumbing and costs nothing when tracing is off. Events buffer in the
//! thread-local context and flush into the shared [`Trace`] once per
//! task, keeping the hot path off the global mutex.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Trace lane for engine-level activity (attempts, faults, backoff).
pub const TID_ENGINE: u64 = 0;
/// Trace lane for program builds (synthesis).
pub const TID_BUILD: u64 = 1;
/// Trace lane for command-queue activity (transfers, kernels).
pub const TID_QUEUE: u64 = 2;

/// An argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// A numeric argument (serialized with shortest round-trip form).
    Num(f64),
    /// A boolean argument.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Num(v as f64)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// What kind of `trace_event` an event renders as.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span (`ph:"X"`) with a duration.
    Span {
        /// Span duration, nanoseconds.
        dur_ns: f64,
    },
    /// A counter sample (`ph:"C"`); args carry the series values.
    Counter,
    /// A thread-scoped instant (`ph:"i"`).
    Instant,
}

/// Which clock an event's `ts` belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The deterministic simulated timeline (jobs-invariant).
    Virtual,
    /// Host-side ordering (a global sequence ordinal, scheduler-
    /// dependent); excluded from canonical output.
    Wall,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`"build"`, `"kernel"`, `"attempt"`, ...).
    pub name: String,
    /// Process id in the trace: the configuration's index in its
    /// work-list, so each config gets its own track group.
    pub pid: u64,
    /// Thread id in the trace: the lane ([`TID_ENGINE`] /
    /// [`TID_BUILD`] / [`TID_QUEUE`]); wall events use lane 0.
    pub tid: u64,
    /// Timestamp, nanoseconds on the event's clock (see [`Scope`]).
    pub ts_ns: f64,
    /// Span / counter / instant.
    pub kind: EventKind,
    /// Virtual (deterministic) or wall (scheduler-dependent).
    pub scope: Scope,
    /// Key-value arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// A shared trace sink: armed workers flush their buffered events here;
/// exporters read it once execution finishes.
#[derive(Debug, Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
    wall_seq: AtomicU64,
}

impl Trace {
    /// An empty trace, ready to attach to an engine.
    pub fn new() -> Arc<Trace> {
        Arc::new(Trace::default())
    }

    /// Append one event.
    pub fn push(&self, ev: TraceEvent) {
        self.events.lock().expect("trace mutex").push(ev);
    }

    /// Append a batch of events (one lock round-trip).
    pub fn extend(&self, evs: impl IntoIterator<Item = TraceEvent>) {
        self.events.lock().expect("trace mutex").extend(evs);
    }

    /// Record a wall-scoped instant: `ts` is the next global sequence
    /// ordinal, so wall events order by emission, not by clock.
    pub fn wall_instant(&self, pid: u64, name: &str, args: Vec<(String, ArgValue)>) {
        let seq = self.wall_seq.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            name: name.to_string(),
            pid,
            tid: TID_ENGINE,
            ts_ns: seq as f64,
            kind: EventKind::Instant,
            scope: Scope::Wall,
            args,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace mutex").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every recorded event.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace mutex").clone()
    }

    /// Render every event (virtual and wall) as Chrome `trace_event`
    /// JSON. Event order follows recording order, which depends on the
    /// scheduler — use [`canonical_chrome_json`](Self::canonical_chrome_json)
    /// when byte stability matters.
    pub fn to_chrome_json(&self) -> String {
        render_chrome_json(self.events().iter())
    }

    /// Render only the virtual (deterministic) events, sorted into a
    /// total order: by `(pid, tid, ts)` with the serialized event line
    /// as the final tiebreaker. Same seed + same work-list ⇒ byte-
    /// identical output at any worker count.
    pub fn canonical_chrome_json(&self) -> String {
        let events = self.events();
        let mut lines: Vec<(u64, u64, f64, String)> = events
            .iter()
            .filter(|e| e.scope == Scope::Virtual)
            .map(|e| (e.pid, e.tid, e.ts_ns, render_event(e)))
            .collect();
        lines.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(a.2.total_cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });
        wrap_chrome_json(lines.into_iter().map(|(_, _, _, l)| l))
    }
}

/// Render an iterator of events as a complete Chrome trace JSON
/// document.
fn render_chrome_json<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> String {
    wrap_chrome_json(events.map(render_event))
}

fn wrap_chrome_json(lines: impl Iterator<Item = String>) -> String {
    // Rendered lines run ~100-200 bytes; reserving up front keeps the
    // export from reallocating log2(n) times on big sweeps.
    let mut out = String::with_capacity(lines.size_hint().0 * 160 + 32);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for line in lines {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    }
    out.push_str("\n]}\n");
    out
}

/// Nanoseconds to the microsecond field Chrome expects, with fixed
/// three-decimal formatting (exact for integer-nanosecond inputs below
/// 2^53, which keeps the canonical form byte-stable).
fn us(ns: f64) -> String {
    format!("{:.3}", ns / 1000.0)
}

/// Render one event as a single-line `trace_event` object.
fn render_event(e: &TraceEvent) -> String {
    let mut out = String::with_capacity(160);
    out.push('{');
    let _ = write!(out, "\"name\":\"{}\"", escape(&e.name));
    let cat = match e.scope {
        Scope::Virtual => "virtual",
        Scope::Wall => "wall",
    };
    let _ = write!(out, ",\"cat\":\"{cat}\"");
    match &e.kind {
        EventKind::Span { dur_ns } => {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", us(*dur_ns));
        }
        EventKind::Counter => out.push_str(",\"ph\":\"C\""),
        EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    let _ = write!(
        out,
        ",\"pid\":{},\"tid\":{},\"ts\":{}",
        e.pid,
        e.tid,
        us(e.ts_ns)
    );
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            match v {
                ArgValue::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
                ArgValue::Num(n) => {
                    let _ = write!(out, "{n}");
                }
                ArgValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The thread-local recording context of one in-flight configuration.
struct TaskCtx {
    trace: Arc<Trace>,
    pid: u64,
    clock_ns: f64,
    buf: Vec<TraceEvent>,
}

thread_local! {
    static CTX: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
}

/// Arms the current thread's recorder for one configuration; dropping
/// it flushes the buffered events into the trace and disarms.
pub struct TaskGuard {
    prev: Option<TaskCtx>,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            let finished = std::mem::replace(&mut *c.borrow_mut(), self.prev.take());
            if let Some(ctx) = finished {
                ctx.trace.extend(ctx.buf);
            }
        });
    }
}

/// Arm the current thread to record into `trace` for the configuration
/// at work-list index `pid`. The virtual clock starts at 0; events
/// buffer locally and flush when the returned guard drops. Nested calls
/// stack (the previous context is restored on drop).
pub fn begin_task(trace: Arc<Trace>, pid: u64) -> TaskGuard {
    CTX.with(|c| {
        let prev = c.borrow_mut().replace(TaskCtx {
            trace,
            pid,
            clock_ns: 0.0,
            // A typical task records a handful of engine spans plus one
            // queue span per command; 32 covers the common case without
            // mid-task reallocation.
            buf: Vec::with_capacity(32),
        });
        TaskGuard { prev }
    })
}

/// Is the current thread armed for recording?
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// The current task's virtual clock, nanoseconds (0 when unarmed).
pub fn vclock_ns() -> f64 {
    CTX.with(|c| c.borrow().as_ref().map(|t| t.clock_ns).unwrap_or(0.0))
}

/// Advance the current task's virtual clock (no-op when unarmed).
pub fn advance_vclock(ns: f64) {
    CTX.with(|c| {
        if let Some(t) = c.borrow_mut().as_mut() {
            t.clock_ns += ns;
        }
    });
}

fn record(
    tid: u64,
    name: &str,
    ts_ns: f64,
    kind: EventKind,
    args: impl FnOnce() -> Vec<(String, ArgValue)>,
) {
    CTX.with(|c| {
        if let Some(t) = c.borrow_mut().as_mut() {
            t.buf.push(TraceEvent {
                name: name.to_string(),
                pid: t.pid,
                tid,
                ts_ns,
                kind,
                scope: Scope::Virtual,
                args: args(),
            });
        }
    });
}

/// Build an args vector from `(key, value)` pairs.
pub fn args<const N: usize>(pairs: [(&str, ArgValue); N]) -> Vec<(String, ArgValue)> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// Record a virtual span on lane `tid` (no-op when unarmed).
///
/// `args` is a thunk so unarmed threads — every worker of an untraced
/// sweep — never allocate the key/value vector. Pass `Vec::new` when
/// there are no arguments.
pub fn span(
    tid: u64,
    name: &str,
    ts_ns: f64,
    dur_ns: f64,
    args: impl FnOnce() -> Vec<(String, ArgValue)>,
) {
    record(tid, name, ts_ns, EventKind::Span { dur_ns }, args);
}

/// Record a virtual counter sample on lane `tid` (no-op when unarmed).
/// `args` is lazy; see [`span`].
pub fn counter(tid: u64, name: &str, ts_ns: f64, args: impl FnOnce() -> Vec<(String, ArgValue)>) {
    record(tid, name, ts_ns, EventKind::Counter, args);
}

/// Record a virtual instant on lane `tid` (no-op when unarmed).
/// `args` is lazy; see [`span`].
pub fn instant(tid: u64, name: &str, ts_ns: f64, args: impl FnOnce() -> Vec<(String, ArgValue)>) {
    record(tid, name, ts_ns, EventKind::Instant, args);
}

/// Record a wall-scoped instant for the current task (no-op when
/// unarmed) — sequence-ordered, excluded from canonical output.
/// `args` is lazy; see [`span`].
pub fn wall_instant(name: &str, args: impl FnOnce() -> Vec<(String, ArgValue)>) {
    CTX.with(|c| {
        if let Some(t) = c.borrow().as_ref() {
            t.trace.wall_instant(t.pid, name, args());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_thread_records_nothing() {
        assert!(!is_active());
        assert_eq!(vclock_ns(), 0.0);
        advance_vclock(100.0);
        span(TID_BUILD, "build", 0.0, 10.0, Vec::new);
        assert_eq!(vclock_ns(), 0.0);
    }

    #[test]
    fn guard_flushes_buffered_events_and_restores() {
        let trace = Trace::new();
        {
            let _g = begin_task(trace.clone(), 7);
            assert!(is_active());
            advance_vclock(500.0);
            assert_eq!(vclock_ns(), 500.0);
            span(TID_QUEUE, "kernel", 0.0, 500.0, || {
                args([("aborted", false.into())])
            });
            assert_eq!(trace.len(), 0, "buffered until the guard drops");
        }
        assert!(!is_active());
        assert_eq!(trace.len(), 1);
        let ev = &trace.events()[0];
        assert_eq!(ev.pid, 7);
        assert_eq!(ev.tid, TID_QUEUE);
        assert_eq!(ev.kind, EventKind::Span { dur_ns: 500.0 });
    }

    #[test]
    fn nested_tasks_stack() {
        let trace = Trace::new();
        let _outer = begin_task(trace.clone(), 1);
        advance_vclock(10.0);
        {
            let _inner = begin_task(trace.clone(), 2);
            assert_eq!(vclock_ns(), 0.0, "inner task gets a fresh clock");
            instant(TID_ENGINE, "inner", 0.0, Vec::new);
        }
        assert_eq!(vclock_ns(), 10.0, "outer clock restored");
        assert_eq!(trace.len(), 1, "inner flushed");
    }

    #[test]
    fn chrome_json_renders_all_phases() {
        let trace = Trace::new();
        {
            let _g = begin_task(trace.clone(), 0);
            span(TID_BUILD, "build", 0.0, 2500.0, Vec::new);
            counter(TID_QUEUE, "dram_rows", 2500.0, || {
                args([("hits", 3u64.into()), ("misses", 1u64.into())])
            });
            instant(TID_ENGINE, "fault", 100.0, || {
                args([("code", "timeout".into())])
            });
        }
        trace.wall_instant(0, "schedule", args([("worker", 1u64.into())]));
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\",\"dur\":2.500"), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\""), "{json}");
        assert!(json.contains("\"cat\":\"wall\""), "{json}");
        assert!(json.trim_end().ends_with("]}"), "{json}");
    }

    #[test]
    fn canonical_excludes_wall_and_sorts_totally() {
        let trace = Trace::new();
        // Record pids out of order, as parallel workers would.
        for pid in [2u64, 0, 1] {
            let _g = begin_task(trace.clone(), pid);
            span(TID_BUILD, "build", 0.0, 100.0, Vec::new);
            span(TID_QUEUE, "kernel", 100.0, 50.0, Vec::new);
        }
        trace.wall_instant(0, "schedule", vec![]);
        let canon = trace.canonical_chrome_json();
        assert!(!canon.contains("wall"), "{canon}");
        let pids: Vec<usize> = canon
            .match_indices("\"pid\":")
            .map(|(i, _)| canon[i + 6..i + 7].parse().unwrap())
            .collect();
        let mut sorted = pids.clone();
        sorted.sort_unstable();
        assert_eq!(pids, sorted, "canonical output is pid-ordered");
    }

    #[test]
    fn canonical_is_identical_regardless_of_recording_order() {
        let make = |order: &[u64]| {
            let trace = Trace::new();
            for &pid in order {
                let _g = begin_task(trace.clone(), pid);
                span(TID_BUILD, "build", 0.0, 100.0 + pid as f64, Vec::new);
                trace.wall_instant(pid, "schedule", vec![]);
            }
            trace.canonical_chrome_json()
        };
        assert_eq!(make(&[0, 1, 2, 3]), make(&[3, 1, 0, 2]));
    }

    #[test]
    fn microsecond_formatting_is_exact_for_integer_ns() {
        assert_eq!(us(1234.0), "1.234");
        assert_eq!(us(0.0), "0.000");
        assert_eq!(us(300.0), "0.300");
        assert_eq!(us(2_500_000.0), "2500.000");
    }

    #[test]
    fn names_and_args_are_escaped() {
        let trace = Trace::new();
        {
            let _g = begin_task(trace.clone(), 0);
            instant(TID_ENGINE, "name\"with\\quote", 0.0, || {
                args([("msg", "line1\nline2".into())])
            });
        }
        let json = trace.to_chrome_json();
        assert!(json.contains("name\\\"with\\\\quote"), "{json}");
        assert!(json.contains("line1\\nline2"), "{json}");
    }
}
