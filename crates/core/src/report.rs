//! Report rendering: aligned text tables, CSV, and ASCII log-log charts
//! for the figure-regeneration binaries — plus the sweep degradation
//! summary ([`sweep_summary_table`]) that makes partial (fault-degraded
//! or resumed) sweeps legible at a glance.

use kernelgen::KernelConfig;
use mpcl::CacheStats;
use std::fmt::Write as _;

/// The one-line label report tables use for a configuration (op, vector
/// width, loop mode, unroll, vendor opts) — shared by the sweep point
/// table and the per-config metrics table so rows line up across both.
pub fn config_label(cfg: &KernelConfig) -> String {
    let mut label = format!(
        "{} vec{} {} u{} {:?}",
        cfg.op.name(),
        cfg.vector_width.get(),
        cfg.loop_mode.label(),
        cfg.unroll,
        cfg.vendor
    );
    if let Some(ch) = cfg.channel {
        let _ = write!(label, " ch{}", ch.depth);
    }
    label
}

/// A labelled series of (x, y) points — one line of a paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"aocl-strided"`).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y values only.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }
}

/// A simple aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned monospace text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_text(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Render as aligned monospace text into any [`std::fmt::Write`]
    /// sink — lets callers (the report files, the serve crate's text
    /// endpoints) stream a table straight into a response body.
    pub fn write_text(&self, out: &mut impl std::fmt::Write) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let render = |cells: &[String], out: &mut dyn std::fmt::Write| {
            for (i, c) in cells.iter().enumerate() {
                write!(out, "{:>w$}  ", c, w = width[i])?;
            }
            writeln!(out)
        };
        render(&self.headers, out)?;
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        writeln!(out, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(row, out)?;
        }
        Ok(())
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        out.push_str(
            &self
                .headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|"),
        );
        out.push_str("|\n");
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes fields containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        self.write_csv(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Render as CSV into any [`std::fmt::Write`] sink (see
    /// [`Table::write_text`] for why).
    pub fn write_csv(&self, out: &mut impl std::fmt::Write) -> std::fmt::Result {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

/// What happened to a sweep, counted — input for
/// [`sweep_summary_table`]. The sweep layer fills this from a
/// `SweepResult`; it lives here so the rendering (and its column set)
/// stays a report concern.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepSummary {
    /// Points in the sweep.
    pub points: usize,
    /// Points with a successful measurement.
    pub ok: usize,
    /// Points whose result is an error.
    pub failed: usize,
    /// Points that needed at least one retry.
    pub retried: usize,
    /// Points whose retry budget/deadline ran out while still failing
    /// transiently.
    pub gave_up: u64,
    /// Points answered from a checkpoint instead of executed.
    pub resumed: usize,
    /// Build-cache counters for the sweep.
    pub cache: CacheStats,
    /// Total re-attempts performed.
    pub retries: u64,
    /// Worker panics isolated into error outcomes.
    pub panics: u64,
    /// Faults injected by an attached fault plan.
    pub faults_injected: u64,
}

/// One row of the per-configuration execution-metrics table — where a
/// point's simulated time went (synthesis, transfers, kernel), what the
/// resilience layer did for it, and how DRAM behaved. The sweep layer
/// fills this from successful `SweepResult` points.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMetrics {
    /// Configuration label (see [`config_label`]).
    pub label: String,
    /// Workload-family label (`stream`/`hpcc`; see
    /// [`kernelgen::Op::family`]).
    pub family: &'static str,
    /// Sustained bandwidth, GB/s.
    pub gbps: f64,
    /// Modelled synthesis/compile time, ns.
    pub build_ns: f64,
    /// Total simulated transfer time, ns.
    pub xfer_ns: f64,
    /// Total simulated kernel execution time, ns.
    pub kernel_ns: f64,
    /// Channel/pipe stall time inside the kernel launches, ns (zero for
    /// single-stage kernels).
    pub stall_ns: f64,
    /// Re-attempts the point needed.
    pub retries: u32,
    /// Build-cache status label (`hit`/`miss`/`uncached`).
    pub cache: &'static str,
    /// DRAM row-buffer hit rate, 0..=1.
    pub row_hit_rate: f64,
}

/// Render the per-configuration metrics table
/// (`build_ns`/`xfer_ns`/`kernel_ns`/`retries`/`cache`/row hit-rate).
pub fn config_metrics_table(rows: &[ConfigMetrics]) -> Table {
    let mut t = Table::new(&[
        "config",
        "family",
        "GB/s",
        "build_ns",
        "xfer_ns",
        "kernel_ns",
        "stall_ns",
        "retries",
        "cache",
        "row hit%",
    ]);
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.family.to_string(),
            format!("{:.2}", r.gbps),
            format!("{:.0}", r.build_ns),
            format!("{:.0}", r.xfer_ns),
            format!("{:.0}", r.kernel_ns),
            format!("{:.0}", r.stall_ns),
            r.retries.to_string(),
            r.cache.to_string(),
            format!("{:.1}", r.row_hit_rate * 100.0),
        ]);
    }
    t
}

/// One row of the Pareto-frontier table: a non-dominated configuration
/// with its bandwidth and synthesis-cost proxy (FPGA logic). The DSE
/// layer fills this from the frontier of a search trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoRow {
    /// Configuration label (see [`config_label`]).
    pub label: String,
    /// Sustained bandwidth, GB/s.
    pub gbps: f64,
    /// FPGA logic consumed (the synthesis-cost proxy).
    pub logic: u64,
}

/// Render the bandwidth-vs-logic Pareto frontier (ascending logic, so
/// each row answers "what does the next unit of fabric buy?").
pub fn pareto_table(rows: &[ParetoRow]) -> Table {
    let mut t = Table::new(&["config", "GB/s", "logic"]);
    for r in rows {
        t.row(&[
            r.label.clone(),
            format!("{:.2}", r.gbps),
            r.logic.to_string(),
        ]);
    }
    t
}

/// One-row sweep degradation summary: alongside ok/failed, the
/// retried/gave-up/resumed columns make a partial (fault-degraded or
/// checkpoint-resumed) sweep legible at a glance.
pub fn sweep_summary_table(s: &SweepSummary) -> Table {
    let mut t = Table::new(&[
        "points",
        "ok",
        "failed",
        "retried",
        "gave up",
        "resumed",
        "retries",
        "panics",
        "faults",
        "cache hit/miss",
    ]);
    t.row(&[
        s.points.to_string(),
        s.ok.to_string(),
        s.failed.to_string(),
        s.retried.to_string(),
        s.gave_up.to_string(),
        s.resumed.to_string(),
        s.retries.to_string(),
        s.panics.to_string(),
        s.faults_injected.to_string(),
        format!("{}/{}", s.cache.hits, s.cache.misses),
    ]);
    t
}

/// Render series as an ASCII chart with log-scaled axes (the paper's
/// figures are all log-log or log-linear). Each series gets a marker
/// letter; overlapping cells show the later series.
pub fn ascii_loglog(series: &[Series], width: usize, height: usize) -> String {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        x0 = x0.min(x.log10());
        x1 = x1.max(x.log10());
        y0 = y0.min(y.log10());
        y1 = y1.max(y.log10());
    }
    if (x1 - x0).abs() < 1e-9 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-9 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    let markers = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
    for (si, s) in series.iter().enumerate() {
        let m = markers[si % markers.len()];
        for &(x, y) in &s.points {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let gx = ((x.log10() - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let gy = ((y.log10() - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            grid[height - 1 - gy][gx] = m;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "  y: 1e{:.1} .. 1e{:.1} (log)", y0, y1);
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, "  x: 1e{:.1} .. 1e{:.1} (log)", x0, x1);
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", markers[si % markers.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["size", "GB/s"]);
        t.row(&["1".into(), "2.53".into()]);
        t.row(&["4096".into(), "15.26".into()]);
        let txt = t.to_text();
        assert!(txt.contains("size"));
        assert!(txt.lines().count() == 4);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len(), "aligned columns");
    }

    #[test]
    fn sweep_summary_has_degradation_columns() {
        let t = sweep_summary_table(&SweepSummary {
            points: 20,
            ok: 18,
            failed: 2,
            retried: 4,
            gave_up: 2,
            resumed: 5,
            cache: CacheStats {
                hits: 12,
                misses: 8,
            },
            retries: 6,
            panics: 1,
            faults_injected: 7,
        });
        let txt = t.to_text();
        for col in ["failed", "retried", "gave up", "resumed", "panics"] {
            assert!(txt.contains(col), "missing column {col}: {txt}");
        }
        assert!(txt.contains("12/8"), "{txt}");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn config_label_appends_channel_depth_only_when_present() {
        let mut cfg = KernelConfig::baseline(kernelgen::Op::RandomAccess, 1024);
        assert!(!config_label(&cfg).contains(" ch"));
        cfg.channel = Some(kernelgen::ChannelSpec { depth: 4 });
        let label = config_label(&cfg);
        assert!(label.starts_with("gups "), "{label}");
        assert!(label.ends_with(" ch4"), "{label}");
    }

    #[test]
    fn metrics_table_has_family_and_stall_columns() {
        let t = config_metrics_table(&[ConfigMetrics {
            label: "gups vec1 ndrange u1 None ch4".into(),
            family: "hpcc",
            gbps: 3.5,
            build_ns: 100.0,
            xfer_ns: 200.0,
            kernel_ns: 300.0,
            stall_ns: 42.0,
            retries: 0,
            cache: "miss",
            row_hit_rate: 0.5,
        }]);
        let txt = t.to_text();
        for col in ["family", "stall_ns"] {
            assert!(txt.contains(col), "missing column {col}: {txt}");
        }
        assert!(txt.contains("hpcc"), "{txt}");
        assert!(txt.contains("42"), "{txt}");
    }

    #[test]
    fn pareto_table_lists_frontier_rows() {
        let t = pareto_table(&[
            ParetoRow {
                label: "copy vec1".into(),
                gbps: 3.5,
                logic: 1200,
            },
            ParetoRow {
                label: "copy vec16".into(),
                gbps: 21.0,
                logic: 9800,
            },
        ]);
        let txt = t.to_text();
        assert!(txt.contains("logic"), "{txt}");
        assert!(txt.contains("21.00"), "{txt}");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn markdown_table_shape() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "x|y".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("x\\|y"), "{md}");
    }

    #[test]
    fn writer_renderers_match_string_renderers() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "two".into()]);
        let mut text = String::new();
        t.write_text(&mut text).unwrap();
        assert_eq!(text, t.to_text());
        let mut csv = String::new();
        t.write_csv(&mut csv).unwrap();
        assert_eq!(csv, t.to_csv());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn chart_contains_markers_and_legend() {
        let s = vec![
            Series::new("cpu", vec![(0.001, 0.05), (1.0, 10.0), (100.0, 25.0)]),
            Series::new("gpu", vec![(0.001, 0.14), (1.0, 50.0), (100.0, 204.0)]),
        ];
        let chart = ascii_loglog(&s, 40, 10);
        assert!(chart.contains("a = cpu"));
        assert!(chart.contains("b = gpu"));
        assert!(chart.contains('a'));
    }

    #[test]
    fn chart_handles_empty_input() {
        assert_eq!(ascii_loglog(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn series_helpers() {
        let s = Series::new("x", vec![(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.ys(), vec![2.0, 4.0]);
    }
}
