//! Benchmark configuration: a kernel tuning point plus measurement
//! protocol.

use kernelgen::{DataType, KernelConfig, StreamOp};

/// Where the streams live (§III "Source/destination of streams"):
/// device global memory — the primary measurement — or host memory
/// reached over the PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLocation {
    /// Arrays in device DRAM; measures global-memory bandwidth.
    DeviceGlobal,
    /// Arrays cross the host–device link each repetition; measures the
    /// PCIe-bound end-to-end rate.
    HostOverLink,
}

/// One benchmark run request.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// The kernel tuning point (§III parameters).
    pub kernel: KernelConfig,
    /// Timed repetitions; the best (minimum) time is reported, following
    /// STREAM's convention.
    pub ntimes: u32,
    /// Untimed warm-up launches before the timed ones.
    pub warmup: u32,
    /// Validate the destination array after the timed runs
    /// (STREAM's `checkSTREAMresults`). Skipped for very large arrays
    /// unless forced — validation executes kernels functionally.
    pub validate: bool,
    /// Stream source/destination.
    pub location: StreamLocation,
}

impl BenchConfig {
    /// Arrays above this size skip functional validation by default
    /// (keeps giant-array sweeps fast; the timing model is unaffected).
    pub const AUTO_VALIDATE_LIMIT_BYTES: u64 = 32 << 20;

    /// Standard protocol for a kernel configuration: 1 warm-up + 3 timed
    /// repetitions, device-global streams, validation when affordable.
    pub fn new(kernel: KernelConfig) -> Self {
        let validate = kernel.array_bytes() <= Self::AUTO_VALIDATE_LIMIT_BYTES;
        BenchConfig {
            kernel,
            ntimes: 3,
            warmup: 1,
            validate,
            location: StreamLocation::DeviceGlobal,
        }
    }

    /// Convenience: the paper's baseline kernel (32-bit COPY, contiguous,
    /// no optimizations) at `bytes` per array.
    pub fn copy_of_bytes(bytes: u64) -> Self {
        Self::new(KernelConfig::baseline(
            StreamOp::Copy,
            bytes / DataType::I32.word_bytes(),
        ))
    }

    /// Builder: set repetitions.
    pub fn with_ntimes(mut self, ntimes: u32) -> Self {
        self.ntimes = ntimes.max(1);
        self
    }

    /// Builder: force validation on or off.
    pub fn with_validation(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Builder: measure host-over-link streams instead of device-global.
    pub fn over_link(mut self) -> Self {
        self.location = StreamLocation::HostOverLink;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_validation_by_size() {
        assert!(BenchConfig::copy_of_bytes(4 << 20).validate);
        assert!(!BenchConfig::copy_of_bytes(256 << 20).validate);
    }

    #[test]
    fn builders() {
        let c = BenchConfig::copy_of_bytes(1 << 20)
            .with_ntimes(0)
            .with_validation(false)
            .over_link();
        assert_eq!(c.ntimes, 1, "clamped to at least one repetition");
        assert!(!c.validate);
        assert_eq!(c.location, StreamLocation::HostOverLink);
    }

    #[test]
    fn copy_of_bytes_sizes_words() {
        let c = BenchConfig::copy_of_bytes(4096);
        assert_eq!(c.kernel.n_words, 1024);
        assert_eq!(c.kernel.op, StreamOp::Copy);
    }
}
