//! Automated design-space exploration.
//!
//! The paper motivates MP-STREAM as a tool for "manual or automated
//! design space exploration". This module provides the automated side:
//! four explorers over a [`ParamSpace`], driven by an objective function
//! returning a full [`Measurement`] (typically a device run, but
//! decoupled so the strategies are unit-testable with
//! [`Measurement::synthetic`]). Configurations whose evaluation fails
//! (FPGA synthesis over capacity, invalid combination) carry their error
//! and are remembered as failures — a real sweep wants to know about
//! them.
//!
//! Two entry points: [`explore`] drives an arbitrary objective serially
//! (the search strategies are inherently sequential or unit-test
//! driven), while [`explore_target`] is the strategy layer over the
//! [`Engine`] — exhaustive and random searches fan their fixed
//! candidate lists across the thread pool, and the sequential climbers
//! share the engine's build cache so revisited neighbourhoods skip
//! synthesis.

use crate::config::BenchConfig;
use crate::engine::{Engine, Outcome};
use crate::rng::SplitMix64;
use crate::runner::{Measurement, Runner};
use crate::space::ParamSpace;
use kernelgen::KernelConfig;
use mpcl::ClError;

/// Exploration strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Explorer {
    /// Evaluate every valid configuration.
    Exhaustive,
    /// Uniformly sample up to `budget` configurations (seeded).
    RandomSearch { budget: usize, seed: u64 },
    /// Greedy hill-climbing from a random start: move to the best
    /// single-dimension neighbour until no improvement, with random
    /// restarts while budget remains.
    HillClimb { budget: usize, seed: u64 },
    /// Simulated annealing: a random walk over single-dimension
    /// neighbours that accepts worse moves with probability
    /// `exp(-delta / T)`, `T` cooling geometrically from `t0` to ~0 over
    /// the budget. Escapes the local optima greedy climbing gets stuck
    /// in (e.g. a compute-unit ridge that blocks the path to wide
    /// vectors).
    Anneal { budget: usize, seed: u64, t0: f64 },
}

/// The result of a search. `trace` holds every evaluated [`Outcome`] in
/// visit order (the same vocabulary sweeps use).
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Best-scoring configuration, if any evaluation succeeded.
    pub best: Option<Outcome>,
    /// Every evaluation, in visit order.
    pub trace: Vec<Outcome>,
    /// How many evaluations failed (synthesis errors etc.).
    pub failures: usize,
}

impl DseResult {
    fn from_trace(trace: Vec<Outcome>) -> Self {
        let failures = trace.iter().filter(|o| o.result.is_err()).count();
        // NaN-safe best pick: a NaN bandwidth (a degenerate measurement,
        // e.g. zero timed bytes) must neither panic the comparison nor
        // win it, so NaN scores are filtered out and the survivors are
        // totally ordered by `f64::total_cmp`.
        let best = trace
            .iter()
            .filter_map(|o| o.gbps().filter(|g| !g.is_nan()).map(|g| (o, g)))
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(o, _)| o.clone());
        DseResult {
            best,
            trace,
            failures,
        }
    }
}

/// Run a search over `space`, scoring with `objective` on the calling
/// thread. Higher [`Measurement::gbps`] is better.
pub fn explore(
    space: &ParamSpace,
    strategy: Explorer,
    mut objective: impl FnMut(&KernelConfig) -> Result<Measurement, ClError>,
) -> DseResult {
    let candidates = space.configs();
    if candidates.is_empty() {
        return DseResult {
            best: None,
            trace: Vec::new(),
            failures: 0,
        };
    }
    let trace = match strategy {
        Explorer::Exhaustive => candidates
            .iter()
            .map(|c| Outcome::new(c.clone(), objective(c)))
            .collect(),
        Explorer::RandomSearch { budget, seed } => sample_order(&candidates, budget, seed)
            .into_iter()
            .map(|i| Outcome::new(candidates[i].clone(), objective(&candidates[i])))
            .collect(),
        Explorer::HillClimb { budget, seed } => {
            hill_climb(&candidates, budget, seed, &mut objective)
        }
        Explorer::Anneal { budget, seed, t0 } => {
            anneal(&candidates, budget, seed, t0, &mut objective)
        }
    };
    DseResult::from_trace(trace)
}

/// Run a search over `space` on a standard target through `engine`.
/// Exhaustive and random searches execute across the engine's thread
/// pool (their visit lists don't depend on the scores); hill-climbing
/// and annealing are sequential by nature and run on the calling thread,
/// accelerated by the engine's shared build cache.
pub fn explore_target(
    engine: &Engine,
    target: targets::TargetId,
    space: &ParamSpace,
    strategy: Explorer,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
) -> DseResult {
    match strategy {
        Explorer::Exhaustive => {
            DseResult::from_trace(engine.run_configs(target, space.configs(), protocol))
        }
        Explorer::RandomSearch { budget, seed } => {
            let candidates = space.configs();
            let picked: Vec<KernelConfig> = sample_order(&candidates, budget, seed)
                .into_iter()
                .map(|i| candidates[i].clone())
                .collect();
            DseResult::from_trace(engine.run_configs(target, picked, protocol))
        }
        Explorer::HillClimb { .. } | Explorer::Anneal { .. } => {
            // Sequential climbers still go through the engine's
            // resilient core, so injected faults are retried instead of
            // derailing the walk with spurious dead-ends.
            let runner = Runner::for_target(target)
                .with_cache(std::sync::Arc::clone(engine.cache()))
                .with_faults(engine.fault_plan().cloned());
            explore(space, strategy, |c| {
                engine.run_one_with(&runner, &protocol(c.clone())).result
            })
        }
    }
}

/// The seeded visit order of a random search: a shuffled index prefix.
fn sample_order(candidates: &[KernelConfig], budget: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    rng.shuffle(&mut order);
    order.truncate(budget);
    order
}

/// Neighbourhood for hill-climbing: two configurations are neighbours if
/// they differ in exactly one tuning dimension.
fn neighbours(candidates: &[KernelConfig], of: &KernelConfig) -> Vec<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| differs_in_one_dim(c, of))
        .map(|(i, _)| i)
        .collect()
}

fn differs_in_one_dim(a: &KernelConfig, b: &KernelConfig) -> bool {
    let diffs = [
        a.op != b.op,
        a.n_words != b.n_words || a.dtype != b.dtype,
        a.vector_width != b.vector_width,
        a.pattern != b.pattern,
        a.loop_mode != b.loop_mode,
        a.unroll != b.unroll,
        a.vendor != b.vendor,
    ]
    .iter()
    .filter(|&&d| d)
    .count();
    diffs == 1
}

fn hill_climb(
    candidates: &[KernelConfig],
    budget: usize,
    seed: u64,
    objective: &mut impl FnMut(&KernelConfig) -> Result<Measurement, ClError>,
) -> Vec<Outcome> {
    let mut rng = SplitMix64::new(seed);
    let mut trace: Vec<Outcome> = Vec::new();
    let mut evaluated: Vec<Option<Option<f64>>> = vec![None; candidates.len()];

    let eval = |i: usize,
                trace: &mut Vec<Outcome>,
                evaluated: &mut Vec<Option<Option<f64>>>,
                objective: &mut dyn FnMut(&KernelConfig) -> Result<Measurement, ClError>|
     -> Option<f64> {
        if let Some(cached) = evaluated[i] {
            return cached;
        }
        let outcome = Outcome::new(candidates[i].clone(), objective(&candidates[i]));
        let score = outcome.gbps();
        evaluated[i] = Some(score);
        trace.push(outcome);
        score
    };

    while trace.len() < budget {
        // Random restart.
        let mut current = rng.gen_index(candidates.len());
        let mut current_score = eval(current, &mut trace, &mut evaluated, objective);
        loop {
            if trace.len() >= budget {
                break;
            }
            let ns = neighbours(candidates, &candidates[current]);
            let mut improved = false;
            for n in ns {
                if trace.len() >= budget {
                    break;
                }
                let s = eval(n, &mut trace, &mut evaluated, objective);
                if s.unwrap_or(f64::NEG_INFINITY) > current_score.unwrap_or(f64::NEG_INFINITY) {
                    current = n;
                    current_score = s;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        // All candidates already evaluated? Stop early.
        if evaluated.iter().all(|e| e.is_some()) {
            break;
        }
    }
    trace
}

fn anneal(
    candidates: &[KernelConfig],
    budget: usize,
    seed: u64,
    t0: f64,
    objective: &mut impl FnMut(&KernelConfig) -> Result<Measurement, ClError>,
) -> Vec<Outcome> {
    assert!(t0 > 0.0, "initial temperature must be positive");
    let mut rng = SplitMix64::new(seed);
    let mut trace: Vec<Outcome> = Vec::new();
    let mut cache: Vec<Option<Option<f64>>> = vec![None; candidates.len()];

    let mut eval =
        |i: usize, trace: &mut Vec<Outcome>, cache: &mut Vec<Option<Option<f64>>>| -> Option<f64> {
            if let Some(cached) = cache[i] {
                return cached;
            }
            let outcome = Outcome::new(candidates[i].clone(), objective(&candidates[i]));
            let score = outcome.gbps();
            cache[i] = Some(score);
            trace.push(outcome);
            score
        };

    let mut current = rng.gen_index(candidates.len());
    let mut current_score = eval(current, &mut trace, &mut cache).unwrap_or(f64::NEG_INFINITY);
    // Geometric cooling to ~1% of t0 over the budget.
    let alpha = 0.01f64.powf(1.0 / budget.max(2) as f64);
    let mut temp = t0;

    // The walk revisits cached points without consuming budget, so it
    // needs its own step bound: once frozen at a local optimum every
    // downhill move is rejected and the trace would stop growing.
    let max_steps = budget.saturating_mul(50).max(1000);
    let mut stall = 0usize;
    for _ in 0..max_steps {
        if trace.len() >= budget || cache.iter().all(|e| e.is_some()) {
            break;
        }
        let ns = neighbours(candidates, &candidates[current]);
        if ns.is_empty() || stall > 4 * ns.len().max(1) {
            // Isolated point or frozen walk: random restart (reheat a
            // little so the new region can be explored).
            current = rng.gen_index(candidates.len());
            current_score = eval(current, &mut trace, &mut cache).unwrap_or(f64::NEG_INFINITY);
            temp = (temp * 4.0).min(t0);
            stall = 0;
            continue;
        }
        let next = ns[rng.gen_index(ns.len())];
        let fresh = cache[next].is_none();
        let next_score = eval(next, &mut trace, &mut cache).unwrap_or(f64::NEG_INFINITY);
        let delta = next_score - current_score;
        let accept = delta >= 0.0 || rng.gen_f64() < (delta / temp).exp();
        if accept {
            current = next;
            current_score = next_score;
        }
        stall = if fresh { 0 } else { stall + 1 };
        temp *= alpha;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::LoopMode;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .widths([1, 2, 4, 8, 16])
            .unrolls([1, 2, 4])
            .loop_modes(LoopMode::ALL)
    }

    /// A synthetic objective with a known optimum: prefer wide vectors,
    /// flat loops, unroll 4.
    fn objective(c: &KernelConfig) -> Result<Measurement, ClError> {
        let mut s = c.vector_width.get() as f64;
        if c.loop_mode == LoopMode::SingleWorkItemFlat {
            s *= 2.0;
        }
        s += c.unroll as f64;
        Ok(Measurement::synthetic(s))
    }

    fn score(o: &Outcome) -> Option<f64> {
        o.gbps()
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let r = explore(&space(), Explorer::Exhaustive, objective);
        let best = r.best.expect("has best");
        assert_eq!(best.config.vector_width.get(), 16);
        assert_eq!(best.config.loop_mode, LoopMode::SingleWorkItemFlat);
        assert_eq!(best.config.unroll, 4);
        assert_eq!(r.trace.len(), 45);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn random_search_respects_budget_and_seed() {
        let r1 = explore(
            &space(),
            Explorer::RandomSearch {
                budget: 10,
                seed: 42,
            },
            objective,
        );
        let r2 = explore(
            &space(),
            Explorer::RandomSearch {
                budget: 10,
                seed: 42,
            },
            objective,
        );
        assert_eq!(r1.trace.len(), 10);
        let s1: Vec<_> = r1.trace.iter().map(score).collect();
        let s2: Vec<_> = r2.trace.iter().map(score).collect();
        assert_eq!(s1, s2, "seeded determinism");
    }

    #[test]
    fn hill_climb_reaches_good_configs_with_small_budget() {
        let r = explore(
            &space(),
            Explorer::HillClimb {
                budget: 30,
                seed: 7,
            },
            objective,
        );
        let best = r.best.expect("has best");
        assert!(score(&best).unwrap() >= 20.0, "score {:?}", score(&best));
        assert!(r.trace.len() <= 30);
    }

    #[test]
    fn annealing_reaches_good_configs() {
        let r = explore(
            &space(),
            Explorer::Anneal {
                budget: 40,
                seed: 11,
                t0: 8.0,
            },
            objective,
        );
        let best = r.best.expect("has best");
        assert!(score(&best).unwrap() >= 20.0, "score {:?}", score(&best));
        assert!(r.trace.len() <= 40);
    }

    #[test]
    fn annealing_is_seeded_deterministic() {
        let strat = Explorer::Anneal {
            budget: 25,
            seed: 3,
            t0: 4.0,
        };
        let a = explore(&space(), strat, objective);
        let b = explore(&space(), strat, objective);
        let sa: Vec<_> = a.trace.iter().map(score).collect();
        let sb: Vec<_> = b.trace.iter().map(score).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn annealing_escapes_a_deceptive_ridge() {
        // Objective with a local optimum at narrow vectors + high unroll
        // that greedy search can fall into; annealing's random accepts
        // should find the global at vec16/flat/unroll4 more reliably
        // from the same budget.
        let deceptive = |c: &KernelConfig| -> Result<Measurement, ClError> {
            let w = c.vector_width.get() as f64;
            let mut s = if w <= 2.0 { 10.0 + c.unroll as f64 } else { w };
            if c.loop_mode == LoopMode::SingleWorkItemFlat {
                s *= 2.0;
            }
            Ok(Measurement::synthetic(s))
        };
        let r = explore(
            &space(),
            Explorer::Anneal {
                budget: 45,
                seed: 5,
                t0: 10.0,
            },
            deceptive,
        );
        // Global optimum: vec16 flat => 32+.
        assert!(score(&r.best.expect("best")).unwrap() >= 28.0);
    }

    #[test]
    fn nan_bandwidth_neither_panics_nor_wins() {
        // A degenerate measurement whose bandwidth computes to NaN.
        let nan_measurement = || {
            let mut m = Measurement::synthetic(1.0);
            m.best_wall_ns = f64::NAN;
            assert!(m.gbps().is_nan());
            Ok(m)
        };
        // Regression: the best-pick used `partial_cmp(..).expect(..)`,
        // so one NaN measurement panicked the whole search.
        let r = explore(&space(), Explorer::Exhaustive, |c| {
            if c.vector_width.get() == 16 {
                nan_measurement()
            } else {
                objective(c)
            }
        });
        let best = r.best.expect("finite points still produce a best");
        assert!(score(&best).unwrap().is_finite());
        assert_ne!(best.config.vector_width.get(), 16, "NaN never wins");

        // All-NaN searches have no best rather than a NaN best.
        let all_nan = explore(&space(), Explorer::Exhaustive, |_| nan_measurement());
        assert!(all_nan.best.is_none());
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let r = explore(&space(), Explorer::Exhaustive, |c| {
            if c.unroll == 2 {
                Err(ClError::BuildProgramFailure("synthetic failure".into()))
            } else {
                objective(c)
            }
        });
        assert!(r.failures > 0);
        assert!(r.best.is_some());
        assert_ne!(r.best.unwrap().config.unroll, 2);
    }

    #[test]
    fn empty_space_is_handled() {
        let s = ParamSpace::new().widths([]);
        let r = explore(&s, Explorer::Exhaustive, objective);
        assert!(r.best.is_none());
        assert!(r.trace.is_empty());
    }

    #[test]
    fn neighbour_relation_is_one_dimensional() {
        let cfgs = space().configs();
        let base = &cfgs[0];
        for n in neighbours(&cfgs, base) {
            assert!(differs_in_one_dim(&cfgs[n], base));
        }
    }

    #[test]
    fn explore_target_random_matches_serial_visit_order() {
        use targets::TargetId;
        let space = ParamSpace::new()
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4, 8])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .unrolls([1, 2]);
        let strat = Explorer::RandomSearch { budget: 5, seed: 9 };
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let engine = Engine::with_jobs(4);
        let par = explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let runner = Runner::for_target(TargetId::FpgaAocl);
        let ser = explore(&space, strat, |c| runner.run(&protocol(c.clone())));
        assert_eq!(par.trace.len(), ser.trace.len());
        for (a, b) in par.trace.iter().zip(&ser.trace) {
            assert_eq!(a.config, b.config, "same seeded visit order");
            assert_eq!(a.gbps(), b.gbps());
        }
    }

    #[test]
    fn explore_target_climbers_share_the_engine_cache() {
        use targets::TargetId;
        let space = ParamSpace::new()
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4])
            .loop_modes([LoopMode::SingleWorkItemFlat]);
        let engine = Engine::with_jobs(2);
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let strat = Explorer::HillClimb {
            budget: 12,
            seed: 1,
        };
        explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let first = engine.cache_stats();
        assert!(first.misses > 0);
        explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let delta = engine.cache_stats().since(first);
        assert_eq!(delta.misses, 0, "revisits hit the shared cache");
    }
}
