//! Automated design-space exploration around an open ask/tell
//! [`Strategy`] trait.
//!
//! The paper motivates MP-STREAM as a tool for "manual or automated
//! design space exploration". This module provides the automated side.
//! A strategy is a batch optimizer: [`Strategy::ask`] proposes the next
//! batch of configurations to measure, [`Strategy::tell`] feeds the
//! measured [`Outcome`]s back. The drive loop between the two is owned
//! by this module, which gives every strategy — including the
//! climbers that used to run serially — the same execution substrate a
//! sweep has:
//!
//! * batches execute through the [`Engine`] thread pool at any `--jobs`,
//!   with input-ordered results, so visit order and scores are
//!   byte-identical regardless of the worker count;
//! * batches can be answered from a [`Checkpoint`] and recorded to it
//!   as workers finish, so a killed search resumes mid-walk;
//! * the engine's [`CancelToken`](crate::engine::CancelToken) stops the
//!   loop between (and inside) batches, so serve/cluster cancel works
//!   for iterative searches, not just sweeps.
//!
//! Six strategies ship in-tree: [`ExhaustiveSearch`], [`RandomSearch`],
//! [`HillClimbSearch`], [`AnnealSearch`] (the original four, now batch
//! formulated), plus [`GeneticSearch`] (seeded tournament selection with
//! one-dimension mutation) and [`ModelSearch`] (a ridge-regression
//! surrogate over the architecture-independent features of
//! [`kernelgen::features()`], ranking unevaluated configurations and
//! asking only the top-k each round). The [`Explorer`] enum remains as
//! a set of thin seeded constructors for back-compat.
//!
//! Two evaluation harnesses: [`explore`] drives an arbitrary objective
//! serially (unit-test friendly), [`search_target`] / [`explore_target`]
//! drive a device target through the engine.

use crate::checkpoint::Checkpoint;
use crate::config::BenchConfig;
use crate::engine::{Engine, Outcome, RetryStats};
use crate::report::{config_label, pareto_table, ParetoRow, Table};
use crate::rng::SplitMix64;
use crate::runner::{Measurement, Runner};
use crate::space::ParamSpace;
use crate::sweep::{pareto_front_of_points, ParetoPoint};
use crate::trace;
use kernelgen::KernelConfig;
use mpcl::{CacheStats, ClError, FaultCounters};
use std::collections::HashMap;

/// A batch search strategy over a fixed candidate set.
///
/// The contract:
///
/// * [`ask`](Strategy::ask) proposes configurations that have **not**
///   been told yet, without duplicates within the batch. An empty batch
///   means the strategy is done.
/// * Every asked configuration is evaluated and passed to
///   [`tell`](Strategy::tell) in ask order — except when the budget
///   truncates the final batch or a cancel stops the search, in which
///   case `tell` is simply never called again.
/// * Strategies must be deterministic: the same construction (space,
///   seed) and the same `tell` history produce the same `ask` sequence.
///   The engine returns input-ordered outcomes, so determinism here
///   makes the whole search invariant under `--jobs`.
pub trait Strategy {
    /// Short lower-case name for reports (`"genetic"`, `"model"`, ...).
    fn name(&self) -> &'static str;
    /// Propose the next batch; empty means the search is finished.
    fn ask(&mut self) -> Vec<KernelConfig>;
    /// Record the outcomes of (a prefix of) the last asked batch.
    fn tell(&mut self, outcomes: &[Outcome]);
}

/// Seeded constructors for the built-in strategies.
///
/// This enum predates the [`Strategy`] trait and is kept as a stable,
/// copyable way to name a search; [`Explorer::strategy`] builds the
/// trait object it stands for. New code should construct
/// [`GeneticSearch`], [`ModelSearch`] etc. directly — the enum is not
/// extended to the model-guided strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Explorer {
    /// Evaluate every valid configuration.
    Exhaustive,
    /// Uniformly sample up to `budget` configurations (seeded).
    RandomSearch { budget: usize, seed: u64 },
    /// Steepest-ascent hill climbing from a random start with random
    /// restarts: each round asks the whole unevaluated one-dimension
    /// neighbourhood of the current point as one batch.
    HillClimb { budget: usize, seed: u64 },
    /// Simulated annealing: a random walk over single-dimension
    /// neighbours that accepts worse moves with probability
    /// `exp(-delta / T)`, `T` cooling geometrically from `t0` to ~0 over
    /// the budget. Escapes the local optima greedy climbing gets stuck
    /// in (e.g. a compute-unit ridge that blocks the path to wide
    /// vectors).
    Anneal { budget: usize, seed: u64, t0: f64 },
}

impl Explorer {
    /// Build the [`Strategy`] this variant stands for, over `space`.
    pub fn strategy(&self, space: &ParamSpace) -> Box<dyn Strategy> {
        match *self {
            Explorer::Exhaustive => Box::new(ExhaustiveSearch::new(space)),
            Explorer::RandomSearch { budget, seed } => {
                Box::new(RandomSearch::new(space, budget, seed))
            }
            Explorer::HillClimb { budget: _, seed } => Box::new(HillClimbSearch::new(space, seed)),
            Explorer::Anneal { budget, seed, t0 } => {
                Box::new(AnnealSearch::new(space, budget, seed, t0))
            }
        }
    }

    /// The evaluation budget the variant carries (0 = unbounded).
    pub fn budget(&self) -> usize {
        match *self {
            Explorer::Exhaustive => 0,
            Explorer::RandomSearch { budget, .. }
            | Explorer::HillClimb { budget, .. }
            | Explorer::Anneal { budget, .. } => budget,
        }
    }
}

/// The result of a search. `trace` holds every evaluated [`Outcome`] in
/// visit order (the same vocabulary sweeps use).
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Best-scoring configuration, if any evaluation succeeded.
    pub best: Option<Outcome>,
    /// Every evaluation, in visit order.
    pub trace: Vec<Outcome>,
    /// How many evaluations failed (synthesis errors etc.).
    pub failures: usize,
    /// Points answered from a checkpoint instead of executed.
    pub resumed: usize,
    /// Size of the candidate space the search ran over.
    pub space_size: usize,
    /// Name of the strategy that produced this result.
    pub strategy: String,
    /// True when a cancel token stopped the search early.
    pub cancelled: bool,
    /// Build-cache hits/misses incurred by this search.
    pub cache: CacheStats,
    /// Retry/panic counters incurred by this search.
    pub retry: RetryStats,
    /// Faults injected during this search (zero without a fault plan).
    pub faults: FaultCounters,
}

impl DseResult {
    fn from_trace(trace: Vec<Outcome>) -> Self {
        let failures = trace.iter().filter(|o| o.result.is_err()).count();
        // NaN-safe best pick: a NaN bandwidth (a degenerate measurement,
        // e.g. zero timed bytes) must neither panic the comparison nor
        // win it, so NaN scores are filtered out and the survivors are
        // totally ordered by `f64::total_cmp`.
        let best = trace
            .iter()
            .filter_map(|o| o.gbps().filter(|g| !g.is_nan()).map(|g| (o, g)))
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(o, _)| o.clone());
        DseResult {
            best,
            trace,
            failures,
            resumed: 0,
            space_size: 0,
            strategy: String::new(),
            cancelled: false,
            cache: CacheStats::default(),
            retry: RetryStats::default(),
            faults: FaultCounters::default(),
        }
    }

    /// Number of evaluated points (including checkpoint-answered ones).
    pub fn evaluations(&self) -> usize {
        self.trace.len()
    }

    /// The bandwidth-vs-logic Pareto frontier of the visited points
    /// (epsilon dominance, ascending logic) — empty for targets without
    /// resource reports.
    pub fn pareto_front(&self) -> Vec<ParetoPoint> {
        pareto_front_of_points(&self.trace)
    }

    /// The Pareto frontier rendered as a table (config, GB/s, logic).
    pub fn pareto_table(&self) -> Table {
        let rows: Vec<ParetoRow> = self
            .pareto_front()
            .into_iter()
            .map(|p| ParetoRow {
                label: config_label(&p.config),
                gbps: p.gbps,
                logic: p.logic,
            })
            .collect();
        pareto_table(&rows)
    }
}

/// What one batch evaluation produced, as seen by the drive loop.
struct BatchOutcome {
    outcomes: Vec<Outcome>,
    resumed: usize,
    cancelled: bool,
}

/// The drive loop: ask, evaluate, tell, until the strategy is done or
/// the budget (0 = unbounded) is spent. On cancellation the partial
/// batch is kept in the trace (minus never-run slots) but not told.
fn drive(
    strategy: &mut dyn Strategy,
    budget: usize,
    mut eval_batch: impl FnMut(&[KernelConfig]) -> BatchOutcome,
) -> (Vec<Outcome>, usize, bool) {
    let mut trace: Vec<Outcome> = Vec::new();
    let mut resumed = 0usize;
    // A well-behaved strategy never re-asks a told config, so the round
    // count is bounded by the space size; this guard only protects the
    // loop from a buggy external Strategy impl.
    let mut rounds_left = usize::MAX;
    loop {
        if budget > 0 && trace.len() >= budget {
            break;
        }
        if rounds_left == 0 {
            break;
        }
        let mut batch = strategy.ask();
        if batch.is_empty() {
            break;
        }
        if rounds_left == usize::MAX {
            // First ask reveals a lower bound on the space size; allow
            // generous slack for one-point-per-round strategies.
            rounds_left = 64 * (budget.max(batch.len()).max(1)) + 1024;
        }
        rounds_left -= 1;
        if budget > 0 {
            batch.truncate(budget - trace.len());
        }
        let result = eval_batch(&batch);
        resumed += result.resumed;
        if result.cancelled {
            trace.extend(
                result
                    .outcomes
                    .into_iter()
                    .filter(|o| !matches!(o.result, Err(ClError::Cancelled))),
            );
            return (trace, resumed, true);
        }
        strategy.tell(&result.outcomes);
        trace.extend(result.outcomes);
    }
    (trace, resumed, false)
}

/// Run a search over `space`, scoring with `objective` on the calling
/// thread. Higher [`Measurement::gbps`] is better.
pub fn explore(
    space: &ParamSpace,
    strategy: Explorer,
    mut objective: impl FnMut(&KernelConfig) -> Result<Measurement, ClError>,
) -> DseResult {
    let n = space.configs().len();
    let mut strat = strategy.strategy(space);
    let (trace, _, _) = drive(strat.as_mut(), strategy.budget(), |batch| BatchOutcome {
        outcomes: batch
            .iter()
            .map(|c| Outcome::new(c.clone(), objective(c)))
            .collect(),
        resumed: 0,
        cancelled: false,
    });
    let mut r = DseResult::from_trace(trace);
    r.space_size = n;
    r.strategy = strat.name().to_string();
    r
}

/// Run a search on a standard target through `engine`: every batch —
/// including the climbers' neighbourhood batches — fans across the
/// engine's thread pool, shares its build cache, honours its cancel
/// token, and is optionally answered from / recorded to `checkpoint`.
///
/// `budget` caps the number of evaluated points (0 = unbounded);
/// checkpoint-answered points count against it, which is what makes a
/// resumed search retrace the original visit order deterministically.
pub fn search_target(
    engine: &Engine,
    target: targets::TargetId,
    strategy: &mut dyn Strategy,
    budget: usize,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
    checkpoint: Option<&Checkpoint>,
) -> DseResult {
    let cache0 = engine.cache_stats();
    let retry0 = engine.retry_stats();
    let faults0 = engine.fault_counters();

    let (trace, resumed, cancelled) = drive(strategy, budget, |batch| {
        let work: Vec<BenchConfig> = batch.iter().cloned().map(&protocol).collect();

        // Answer checkpointed points without executing them, keeping
        // the batch order for the slots that do run.
        let mut slots: Vec<Option<Outcome>> = Vec::with_capacity(work.len());
        let mut pending: Vec<BenchConfig> = Vec::new();
        let mut pending_slots: Vec<usize> = Vec::new();
        for (i, bc) in work.iter().enumerate() {
            match checkpoint.and_then(|c| c.lookup(&bc.kernel)) {
                Some(done) => slots.push(Some(done)),
                None => {
                    slots.push(None);
                    pending.push(bc.clone());
                    pending_slots.push(i);
                }
            }
        }
        let resumed = work.len() - pending.len();

        let executed = engine.run_list_observed(
            || Runner::for_target(target),
            &pending,
            |outcome| {
                let Some(ckpt) = checkpoint else { return };
                let ok = match ckpt.record(outcome) {
                    Ok(()) => true,
                    Err(e) => {
                        eprintln!(
                            "warning: checkpoint write to {} failed: {e}",
                            ckpt.path().display()
                        );
                        false
                    }
                };
                // Checkpoint writes happen in completion order, a
                // wall-clock fact — record them in the wall lane so the
                // canonical (virtual) trace stays jobs-invariant.
                if let Some(t) = engine.trace() {
                    t.wall_instant(0, "checkpoint-write", trace::args([("ok", ok.into())]));
                }
            },
        );
        for (slot, outcome) in pending_slots.into_iter().zip(executed) {
            slots[slot] = Some(outcome);
        }
        BatchOutcome {
            outcomes: slots.into_iter().map(|s| s.expect("slot filled")).collect(),
            resumed,
            cancelled: engine
                .cancel_token()
                .is_some_and(crate::engine::CancelToken::is_cancelled),
        }
    });

    let f1 = engine.fault_counters();
    let mut r = DseResult::from_trace(trace);
    r.resumed = resumed;
    r.cancelled = cancelled;
    r.strategy = strategy.name().to_string();
    r.cache = engine.cache_stats().since(cache0);
    r.retry = engine.retry_stats().since(retry0);
    r.faults = FaultCounters {
        build: f1.build - faults0.build,
        timeout: f1.timeout - faults0.timeout,
        device_lost: f1.device_lost - faults0.device_lost,
        bit_flip: f1.bit_flip - faults0.bit_flip,
    };
    r
}

/// Run an [`Explorer`]-named search over `space` on a standard target
/// through `engine` — the back-compat entry point, now a thin wrapper
/// over [`search_target`], so the climbers batch through the thread
/// pool and honour the engine's cancel token like everything else.
pub fn explore_target(
    engine: &Engine,
    target: targets::TargetId,
    space: &ParamSpace,
    strategy: Explorer,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
) -> DseResult {
    let mut strat = strategy.strategy(space);
    let mut r = search_target(
        engine,
        target,
        strat.as_mut(),
        strategy.budget(),
        protocol,
        None,
    );
    r.space_size = space.configs().len();
    r
}

/// The seeded visit order of a random search: a shuffled index prefix.
fn sample_order(n: usize, budget: usize, seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    if budget > 0 {
        order.truncate(budget);
    }
    order
}

/// Neighbourhood for local search: two configurations are neighbours if
/// they differ in exactly one tuning dimension.
fn neighbours(candidates: &[KernelConfig], of: &KernelConfig) -> Vec<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| differs_in_one_dim(c, of))
        .map(|(i, _)| i)
        .collect()
}

fn differs_in_one_dim(a: &KernelConfig, b: &KernelConfig) -> bool {
    let diffs = [
        a.op != b.op,
        a.n_words != b.n_words || a.dtype != b.dtype,
        a.vector_width != b.vector_width,
        a.pattern != b.pattern,
        a.loop_mode != b.loop_mode,
        a.unroll != b.unroll,
        a.vendor != b.vendor,
    ]
    .iter()
    .filter(|&&d| d)
    .count();
    diffs == 1
}

/// Shared per-strategy bookkeeping: the candidate list, the scores told
/// so far, and the key→index map that routes a told [`Outcome`] back to
/// its candidate.
struct Tracker {
    configs: Vec<KernelConfig>,
    /// `None` = not yet told; `Some(score)` with `None` inside = told
    /// but failed (or NaN).
    scores: Vec<Option<Option<f64>>>,
    index_of: HashMap<String, usize>,
    told: usize,
}

impl Tracker {
    fn new(space: &ParamSpace) -> Self {
        let configs = space.configs();
        let index_of = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (crate::checkpoint::config_key(c), i))
            .collect();
        let scores = vec![None; configs.len()];
        Tracker {
            configs,
            scores,
            index_of,
            told: 0,
        }
    }

    fn len(&self) -> usize {
        self.configs.len()
    }

    fn is_fresh(&self, i: usize) -> bool {
        self.scores[i].is_none()
    }

    fn all_told(&self) -> bool {
        self.told == self.configs.len()
    }

    /// Fitness of a told candidate; failures and NaN score `-inf`.
    fn fitness(&self, i: usize) -> f64 {
        self.scores[i]
            .flatten()
            .filter(|g| !g.is_nan())
            .unwrap_or(f64::NEG_INFINITY)
    }

    fn tell(&mut self, outcomes: &[Outcome]) -> Vec<usize> {
        let mut indices = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            let Some(&i) = self.index_of.get(&crate::checkpoint::config_key(&o.config)) else {
                continue;
            };
            if self.scores[i].is_none() {
                self.told += 1;
            }
            self.scores[i] = Some(o.gbps());
            indices.push(i);
        }
        indices
    }
}

/// Every valid configuration, asked as one batch.
pub struct ExhaustiveSearch {
    tracker: Tracker,
    asked: bool,
}

impl ExhaustiveSearch {
    /// Exhaustive search over `space`.
    pub fn new(space: &ParamSpace) -> Self {
        ExhaustiveSearch {
            tracker: Tracker::new(space),
            asked: false,
        }
    }
}

impl Strategy for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        if self.asked {
            return Vec::new();
        }
        self.asked = true;
        self.tracker.configs.clone()
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
    }
}

/// A seeded uniform sample of the space, asked as one batch.
pub struct RandomSearch {
    tracker: Tracker,
    order: Vec<usize>,
    asked: bool,
}

impl RandomSearch {
    /// Random search over `space`: up to `budget` (0 = all) distinct
    /// seeded picks.
    pub fn new(space: &ParamSpace, budget: usize, seed: u64) -> Self {
        let tracker = Tracker::new(space);
        let order = sample_order(tracker.len(), budget, seed);
        RandomSearch {
            tracker,
            order,
            asked: false,
        }
    }
}

impl Strategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        if self.asked {
            return Vec::new();
        }
        self.asked = true;
        self.order
            .iter()
            .map(|&i| self.tracker.configs[i].clone())
            .collect()
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
    }
}

/// Steepest-ascent hill climbing with random restarts. Each round asks
/// the whole unevaluated one-dimension neighbourhood of the current
/// point as a single batch — which is what lets a "sequential" climber
/// use every engine worker — then moves to the best neighbour if it
/// improves, else restarts from a random unevaluated point.
pub struct HillClimbSearch {
    tracker: Tracker,
    rng: SplitMix64,
    current: Option<usize>,
}

impl HillClimbSearch {
    /// Hill climbing over `space` from a seeded random start.
    pub fn new(space: &ParamSpace, seed: u64) -> Self {
        HillClimbSearch {
            tracker: Tracker::new(space),
            rng: SplitMix64::new(seed),
            current: None,
        }
    }

    /// A random not-yet-told candidate, `None` when all are told.
    fn random_fresh(&mut self) -> Option<usize> {
        let fresh: Vec<usize> = (0..self.tracker.len())
            .filter(|&i| self.tracker.is_fresh(i))
            .collect();
        if fresh.is_empty() {
            None
        } else {
            Some(fresh[self.rng.gen_index(fresh.len())])
        }
    }
}

impl Strategy for HillClimbSearch {
    fn name(&self) -> &'static str {
        "hill"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        loop {
            if self.tracker.all_told() {
                return Vec::new();
            }
            let Some(current) = self.current else {
                // (Re)start from a random unevaluated point.
                let Some(i) = self.random_fresh() else {
                    return Vec::new();
                };
                self.current = Some(i);
                return vec![self.tracker.configs[i].clone()];
            };
            let ns = neighbours(&self.tracker.configs, &self.tracker.configs[current]);
            let fresh: Vec<usize> = ns
                .iter()
                .copied()
                .filter(|&i| self.tracker.is_fresh(i))
                .collect();
            if !fresh.is_empty() {
                return fresh
                    .iter()
                    .map(|&i| self.tracker.configs[i].clone())
                    .collect();
            }
            // Whole neighbourhood known: climb on cached scores (each
            // move is strictly uphill, so this terminates), restart when
            // stuck on a local optimum.
            let best = ns
                .iter()
                .copied()
                .max_by(|&a, &b| self.tracker.fitness(a).total_cmp(&self.tracker.fitness(b)));
            match best {
                Some(b) if self.tracker.fitness(b) > self.tracker.fitness(current) => {
                    self.current = Some(b);
                }
                _ => self.current = None,
            }
        }
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
        let Some(current) = self.current else { return };
        // Move to the best told neighbour if it beats the current point;
        // otherwise restart next round.
        let ns = neighbours(&self.tracker.configs, &self.tracker.configs[current]);
        let best = ns
            .into_iter()
            .filter(|&i| !self.tracker.is_fresh(i))
            .max_by(|&a, &b| self.tracker.fitness(a).total_cmp(&self.tracker.fitness(b)));
        match best {
            Some(b) if self.tracker.fitness(b) > self.tracker.fitness(current) => {
                self.current = Some(b)
            }
            Some(_) => self.current = None,
            None => {}
        }
    }
}

/// What an in-flight [`AnnealSearch`] proposal is waiting for.
enum AnnealPending {
    /// A restart landed on a fresh point.
    Restart(usize),
    /// A walk step proposed a fresh neighbour.
    Step(usize),
}

/// Simulated annealing, one point per batch: the walk advances over
/// already-told scores inside [`ask`](Strategy::ask) and pauses each
/// time it needs a fresh evaluation, so every proposed point still runs
/// through the engine (cache, faults, cancel) like any other batch.
pub struct AnnealSearch {
    tracker: Tracker,
    rng: SplitMix64,
    current: Option<usize>,
    pending: Option<AnnealPending>,
    temp: f64,
    t0: f64,
    alpha: f64,
    stall: usize,
    steps_left: usize,
}

impl AnnealSearch {
    /// Annealing over `space` with geometric cooling from `t0` to ~1% of
    /// it across `budget` evaluations.
    pub fn new(space: &ParamSpace, budget: usize, seed: u64, t0: f64) -> Self {
        assert!(t0 > 0.0, "initial temperature must be positive");
        let alpha = 0.01f64.powf(1.0 / budget.max(2) as f64);
        // The walk revisits told points without proposing anything, so
        // it needs its own step bound: once frozen at a local optimum
        // every downhill move is rejected and no fresh point would ever
        // be proposed.
        let steps_left = budget.saturating_mul(50).max(1000);
        AnnealSearch {
            tracker: Tracker::new(space),
            rng: SplitMix64::new(seed),
            current: None,
            pending: None,
            temp: t0,
            t0,
            alpha,
            stall: 0,
            steps_left,
        }
    }

    fn accept(&mut self, next: usize, next_score: f64) {
        let current_score = self
            .current
            .map_or(f64::NEG_INFINITY, |c| self.tracker.fitness(c));
        let delta = next_score - current_score;
        if delta >= 0.0 || self.rng.gen_f64() < (delta / self.temp).exp() {
            self.current = Some(next);
        }
        self.temp *= self.alpha;
    }
}

impl Strategy for AnnealSearch {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        loop {
            if self.tracker.all_told() || self.steps_left == 0 {
                return Vec::new();
            }
            self.steps_left -= 1;
            let Some(current) = self.current else {
                let i = self.rng.gen_index(self.tracker.len());
                if self.tracker.is_fresh(i) {
                    self.pending = Some(AnnealPending::Restart(i));
                    return vec![self.tracker.configs[i].clone()];
                }
                self.current = Some(i);
                continue;
            };
            let ns = neighbours(&self.tracker.configs, &self.tracker.configs[current]);
            if ns.is_empty() || self.stall > 4 * ns.len().max(1) {
                // Isolated point or frozen walk: random restart (reheat
                // a little so the new region can be explored).
                self.temp = (self.temp * 4.0).min(self.t0);
                self.stall = 0;
                let i = self.rng.gen_index(self.tracker.len());
                if self.tracker.is_fresh(i) {
                    self.pending = Some(AnnealPending::Restart(i));
                    return vec![self.tracker.configs[i].clone()];
                }
                self.current = Some(i);
                continue;
            }
            let next = ns[self.rng.gen_index(ns.len())];
            if self.tracker.is_fresh(next) {
                self.pending = Some(AnnealPending::Step(next));
                return vec![self.tracker.configs[next].clone()];
            }
            let score = self.tracker.fitness(next);
            self.accept(next, score);
            self.stall += 1;
        }
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
        match self.pending.take() {
            Some(AnnealPending::Restart(i)) => {
                self.current = Some(i);
                self.stall = 0;
            }
            Some(AnnealPending::Step(next)) => {
                let score = self.tracker.fitness(next);
                self.accept(next, score);
                self.stall = 0;
            }
            None => {}
        }
    }
}

/// Seeded genetic search: tournament selection plus one-dimension
/// mutation over the space's neighbour relation. The population is one
/// ask batch — a generation's unevaluated members run through the
/// engine together — and each generation keeps the elite, breeds
/// children by mutating tournament winners, and admits one random
/// unevaluated immigrant so the search always makes progress.
pub struct GeneticSearch {
    tracker: Tracker,
    rng: SplitMix64,
    population: Vec<usize>,
    pop_size: usize,
    generations_left: usize,
}

impl GeneticSearch {
    /// Genetic search over `space` sized to `budget` evaluations.
    pub fn new(space: &ParamSpace, budget: usize, seed: u64) -> Self {
        let tracker = Tracker::new(space);
        let n = tracker.len();
        let budget = if budget == 0 { n } else { budget };
        // Small populations for small budgets: the initial generation
        // should leave room for at least a couple of bred generations.
        let pop_size = (budget / 3).clamp(2, 16).min(n.max(1));
        let mut rng = SplitMix64::new(seed);
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        order.truncate(pop_size);
        GeneticSearch {
            tracker,
            rng,
            population: order,
            pop_size,
            generations_left: 64 * budget.max(1),
        }
    }

    /// One-dimension mutation: a random neighbour of `i`, preferring
    /// unevaluated neighbours so generations propose new work.
    fn mutate(&mut self, i: usize) -> usize {
        let ns = neighbours(&self.tracker.configs, &self.tracker.configs[i]);
        let fresh: Vec<usize> = ns
            .iter()
            .copied()
            .filter(|&j| self.tracker.is_fresh(j))
            .collect();
        if !fresh.is_empty() {
            fresh[self.rng.gen_index(fresh.len())]
        } else if !ns.is_empty() {
            ns[self.rng.gen_index(ns.len())]
        } else {
            i
        }
    }

    fn tournament(&mut self) -> usize {
        let a = self.population[self.rng.gen_index(self.population.len())];
        let b = self.population[self.rng.gen_index(self.population.len())];
        if self.tracker.fitness(a) >= self.tracker.fitness(b) {
            a
        } else {
            b
        }
    }

    fn next_generation(&mut self) -> Vec<usize> {
        let elite = self
            .population
            .iter()
            .copied()
            .max_by(|&a, &b| self.tracker.fitness(a).total_cmp(&self.tracker.fitness(b)))
            .expect("population is never empty");
        let mut next = vec![elite];
        while next.len() < self.pop_size.saturating_sub(1).max(1) {
            let parent = self.tournament();
            let child = self.mutate(parent);
            next.push(child);
        }
        // Immigration: one random unevaluated candidate per generation
        // keeps the gene pool from collapsing on small budgets.
        let fresh: Vec<usize> = (0..self.tracker.len())
            .filter(|&i| self.tracker.is_fresh(i) && !next.contains(&i))
            .collect();
        if !fresh.is_empty() {
            next.push(fresh[self.rng.gen_index(fresh.len())]);
        }
        next
    }
}

impl Strategy for GeneticSearch {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        loop {
            if self.tracker.all_told() || self.generations_left == 0 {
                return Vec::new();
            }
            let mut seen = std::collections::HashSet::new();
            let fresh: Vec<usize> = self
                .population
                .iter()
                .copied()
                .filter(|&i| self.tracker.is_fresh(i) && seen.insert(i))
                .collect();
            if !fresh.is_empty() {
                return fresh
                    .iter()
                    .map(|&i| self.tracker.configs[i].clone())
                    .collect();
            }
            self.generations_left -= 1;
            self.population = self.next_generation();
        }
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
    }
}

/// Model-guided search: a ridge-regression surrogate over the
/// architecture-independent features of [`kernelgen::features()`]
/// (operational intensity, stride/pattern class, vector width, unroll,
/// loop mode, bytes-per-iteration, ...). The first ask is a seeded
/// random sample; every following round refits the surrogate on all
/// told outcomes (failures score 0, teaching the model to avoid
/// over-capacity corners), ranks the unevaluated candidates by
/// predicted bandwidth, and asks only the top-k.
pub struct ModelSearch {
    tracker: Tracker,
    feats: Vec<Vec<f64>>,
    rng: SplitMix64,
    seed_batch: usize,
    top_k: usize,
    seeded: bool,
    warm: Option<RidgeModel>,
}

impl ModelSearch {
    /// Model-guided search over `space` sized to `budget` evaluations:
    /// roughly a third of the budget seeds the model, the rest is spent
    /// in top-k exploitation rounds.
    pub fn new(space: &ParamSpace, budget: usize, seed: u64) -> Self {
        let tracker = Tracker::new(space);
        let n = tracker.len();
        let budget = if budget == 0 { n } else { budget };
        let seed_batch = (budget / 3).clamp(2, 12).min(n.max(1));
        let top_k = ((budget.saturating_sub(seed_batch)) / 2)
            .clamp(1, 8)
            .min(n.max(1));
        let feats = tracker.configs.iter().map(kernelgen::features).collect();
        ModelSearch {
            tracker,
            feats,
            rng: SplitMix64::new(seed),
            seed_batch,
            top_k,
            seeded: false,
            warm: None,
        }
    }

    /// Warm start from a saved surrogate: the first ask ranks by the
    /// loaded model's predictions instead of random sampling. The
    /// checkpoint has already been dimension-checked at load time.
    pub fn warm_start(mut self, ckpt: &SurrogateCheckpoint) -> Self {
        self.warm = Some(ckpt.model());
        self
    }

    /// Export the surrogate fitted on everything told so far, for a
    /// later run to [`ModelSearch::warm_start`] from.
    pub fn surrogate(&self) -> SurrogateCheckpoint {
        let training: Vec<(usize, f64)> = (0..self.tracker.len())
            .filter_map(|i| {
                self.tracker.scores[i].map(|s| (i, s.filter(|g| g.is_finite()).unwrap_or(0.0)))
            })
            .collect();
        let xs: Vec<&[f64]> = training
            .iter()
            .map(|&(i, _)| self.feats[i].as_slice())
            .collect();
        let ys: Vec<f64> = training.iter().map(|&(_, y)| y).collect();
        let model = RidgeModel::fit(&xs, &ys, 0.1);
        SurrogateCheckpoint {
            feature_dim: kernelgen::FEATURE_DIM,
            mean: if model.mean.len() == kernelgen::FEATURE_DIM {
                model.mean
            } else {
                vec![0.0; kernelgen::FEATURE_DIM]
            },
            scale: if model.scale.len() == kernelgen::FEATURE_DIM {
                model.scale
            } else {
                vec![1.0; kernelgen::FEATURE_DIM]
            },
            weights: if model.weights.len() == kernelgen::FEATURE_DIM {
                model.weights
            } else {
                vec![0.0; kernelgen::FEATURE_DIM]
            },
            intercept: model.intercept,
        }
    }

    /// Fit the ridge surrogate on the told points and predict every
    /// candidate's bandwidth. Failures train as 0 GB/s.
    fn predictions(&self) -> Vec<f64> {
        let training: Vec<(usize, f64)> = (0..self.tracker.len())
            .filter_map(|i| {
                self.tracker.scores[i].map(|s| (i, s.filter(|g| g.is_finite()).unwrap_or(0.0)))
            })
            .collect();
        let xs: Vec<&[f64]> = training
            .iter()
            .map(|&(i, _)| self.feats[i].as_slice())
            .collect();
        let ys: Vec<f64> = training.iter().map(|&(_, y)| y).collect();
        let model = RidgeModel::fit(&xs, &ys, 0.1);
        self.feats.iter().map(|f| model.predict(f)).collect()
    }
}

impl Strategy for ModelSearch {
    fn name(&self) -> &'static str {
        "model"
    }

    fn ask(&mut self) -> Vec<KernelConfig> {
        if self.tracker.all_told() {
            return Vec::new();
        }
        if !self.seeded {
            self.seeded = true;
            // A warm-started search spends its seed batch where the
            // loaded surrogate predicts bandwidth instead of at random.
            if let Some(model) = &self.warm {
                let preds: Vec<f64> = self.feats.iter().map(|f| model.predict(f)).collect();
                let mut ranked: Vec<usize> = (0..self.tracker.len()).collect();
                ranked.sort_by(|&a, &b| preds[b].total_cmp(&preds[a]).then(a.cmp(&b)));
                ranked.truncate(self.seed_batch);
                return ranked
                    .iter()
                    .map(|&i| self.tracker.configs[i].clone())
                    .collect();
            }
            let mut order: Vec<usize> = (0..self.tracker.len()).collect();
            self.rng.shuffle(&mut order);
            order.truncate(self.seed_batch);
            return order
                .iter()
                .map(|&i| self.tracker.configs[i].clone())
                .collect();
        }
        let preds = self.predictions();
        let mut ranked: Vec<usize> = (0..self.tracker.len())
            .filter(|&i| self.tracker.is_fresh(i))
            .collect();
        // Highest predicted bandwidth first; ties break on candidate
        // index so the ranking is fully deterministic.
        ranked.sort_by(|&a, &b| preds[b].total_cmp(&preds[a]).then(a.cmp(&b)));
        ranked.truncate(self.top_k);
        ranked
            .iter()
            .map(|&i| self.tracker.configs[i].clone())
            .collect()
    }

    fn tell(&mut self, outcomes: &[Outcome]) {
        self.tracker.tell(outcomes);
    }
}

/// A fitted ridge regression: standardized features, centered response,
/// solved by Gaussian elimination on the (always SPD) normal equations.
struct RidgeModel {
    mean: Vec<f64>,
    scale: Vec<f64>,
    weights: Vec<f64>,
    intercept: f64,
}

impl RidgeModel {
    fn fit(xs: &[&[f64]], ys: &[f64], lambda: f64) -> RidgeModel {
        let d = xs.first().map_or(0, |x| x.len());
        let m = xs.len();
        let mut mean = vec![0.0; d];
        let mut scale = vec![1.0; d];
        if m == 0 {
            return RidgeModel {
                mean,
                scale,
                weights: vec![0.0; d],
                intercept: 0.0,
            };
        }
        for x in xs {
            for (j, v) in x.iter().enumerate() {
                mean[j] += v;
            }
        }
        for mj in &mut mean {
            *mj /= m as f64;
        }
        for (j, s) in scale.iter_mut().enumerate() {
            let var: f64 = xs.iter().map(|x| (x[j] - mean[j]).powi(2)).sum::<f64>() / m as f64;
            let sd = var.sqrt();
            *s = if sd > 1e-12 { sd } else { 1.0 };
        }
        let ymean = ys.iter().sum::<f64>() / m as f64;

        // Normal equations over standardized features: (Z'Z + λI)w = Z'y.
        let z = |x: &[f64], j: usize| (x[j] - mean[j]) / scale[j];
        let mut a = vec![vec![0.0f64; d + 1]; d]; // augmented [A | b]
        for (j, row) in a.iter_mut().enumerate() {
            for (k, cell) in row.iter_mut().enumerate().take(d) {
                *cell = xs.iter().map(|x| z(x, j) * z(x, k)).sum();
            }
            row[j] += lambda;
            row[d] = xs.iter().zip(ys).map(|(x, &y)| z(x, j) * (y - ymean)).sum();
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..d {
            let pivot = (col..d)
                .max_by(|&p, &q| a[p][col].abs().total_cmp(&a[q][col].abs()))
                .expect("non-empty column range");
            a.swap(col, pivot);
            let diag = a[col][col];
            if diag.abs() < 1e-12 {
                continue; // λ keeps this from happening in practice
            }
            for r in col + 1..d {
                let (top, bottom) = a.split_at_mut(r);
                let pivot_row = &top[col];
                let row = &mut bottom[0];
                let f = row[col] / diag;
                for (cell, &p) in row[col..=d].iter_mut().zip(&pivot_row[col..=d]) {
                    *cell -= f * p;
                }
            }
        }
        let mut weights = vec![0.0f64; d];
        for col in (0..d).rev() {
            let mut acc = a[col][d];
            for k in col + 1..d {
                acc -= a[col][k] * weights[k];
            }
            weights[col] = if a[col][col].abs() < 1e-12 {
                0.0
            } else {
                acc / a[col][col]
            };
        }
        RidgeModel {
            mean,
            scale,
            weights,
            intercept: ymean,
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + x.iter()
                .zip(&self.mean)
                .zip(&self.scale)
                .zip(&self.weights)
                .map(|(((v, m), s), w)| (v - m) / s * w)
                .sum::<f64>()
    }
}

/// A fitted ridge surrogate serialized for reuse across runs: one run's
/// [`ModelSearch`] can export what it learned and a later run can warm
/// start from it instead of random seeding. The file is a single flat
/// JSON object versioned by the feature dimension it was fitted on —
/// loading a checkpoint written by a build with a different
/// [`kernelgen::FEATURE_DIM`] fails loudly instead of silently
/// mis-indexing features (a 19-dim pre-workload-family checkpoint must
/// not steer a 25-dim search).
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateCheckpoint {
    /// Feature dimension the weights were fitted on.
    pub feature_dim: usize,
    /// Per-feature training means.
    pub mean: Vec<f64>,
    /// Per-feature training standard deviations.
    pub scale: Vec<f64>,
    /// Standardized-feature weights.
    pub weights: Vec<f64>,
    /// Centered-response intercept.
    pub intercept: f64,
}

impl SurrogateCheckpoint {
    /// Serialize as one flat JSON object. Vectors are comma-joined into
    /// string fields — the repo's hand-rolled flat parser does not do
    /// nested arrays, and `{v}` formatting round-trips f64 exactly.
    pub fn to_json(&self) -> String {
        let join = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut w = crate::json::JsonLine::new();
        w.u64_field("feature_dim", self.feature_dim as u64)
            .str_field("mean", &join(&self.mean))
            .str_field("scale", &join(&self.scale))
            .str_field("weights", &join(&self.weights))
            .raw_field("intercept", &format!("{}", self.intercept));
        w.finish()
    }

    /// Parse and validate a serialized surrogate. Errors on malformed
    /// input, on vectors that disagree with the recorded dimension, and
    /// — loudly, naming both dimensions — on a checkpoint fitted against
    /// a different [`kernelgen::FEATURE_DIM`] than this build extracts.
    pub fn from_json(s: &str) -> Result<SurrogateCheckpoint, String> {
        let obj = crate::json::parse_flat_object(s.trim())
            .ok_or_else(|| "surrogate checkpoint: not a flat JSON object".to_string())?;
        let dim = obj
            .get("feature_dim")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| "surrogate checkpoint: missing feature_dim".to_string())?
            as usize;
        if dim != kernelgen::FEATURE_DIM {
            return Err(format!(
                "surrogate checkpoint was fitted on {dim}-dim kernel features but this \
                 build extracts {} (FEATURE_DIM changed — e.g. the workload-family \
                 dimensions); refit the model instead of reusing the checkpoint",
                kernelgen::FEATURE_DIM
            ));
        }
        let vec_field = |key: &str| -> Result<Vec<f64>, String> {
            let raw = obj
                .get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("surrogate checkpoint: missing {key}"))?;
            let parsed: Result<Vec<f64>, _> =
                raw.split(',').map(|t| t.trim().parse::<f64>()).collect();
            let v = parsed.map_err(|_| format!("surrogate checkpoint: bad {key} '{raw}'"))?;
            if v.len() != dim {
                return Err(format!(
                    "surrogate checkpoint: {key} has {} entries, feature_dim says {dim}",
                    v.len()
                ));
            }
            Ok(v)
        };
        Ok(SurrogateCheckpoint {
            feature_dim: dim,
            mean: vec_field("mean")?,
            scale: vec_field("scale")?,
            weights: vec_field("weights")?,
            intercept: obj
                .get("intercept")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| "surrogate checkpoint: missing intercept".to_string())?,
        })
    }

    /// Write the checkpoint to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.to_json() + "\n")
            .map_err(|e| format!("surrogate checkpoint {}: {e}", path.display()))
    }

    /// Read and validate a checkpoint from `path`.
    pub fn load(path: &std::path::Path) -> Result<SurrogateCheckpoint, String> {
        let s = std::fs::read_to_string(path)
            .map_err(|e| format!("surrogate checkpoint {}: {e}", path.display()))?;
        SurrogateCheckpoint::from_json(&s)
    }

    /// The ridge model these parameters describe.
    fn model(&self) -> RidgeModel {
        RidgeModel {
            mean: self.mean.clone(),
            scale: self.scale.clone(),
            weights: self.weights.clone(),
            intercept: self.intercept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::LoopMode;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .widths([1, 2, 4, 8, 16])
            .unrolls([1, 2, 4])
            .loop_modes(LoopMode::ALL)
    }

    /// A synthetic objective with a known optimum: prefer wide vectors,
    /// flat loops, unroll 4.
    fn objective(c: &KernelConfig) -> Result<Measurement, ClError> {
        let mut s = c.vector_width.get() as f64;
        if c.loop_mode == LoopMode::SingleWorkItemFlat {
            s *= 2.0;
        }
        s += c.unroll as f64;
        Ok(Measurement::synthetic(s))
    }

    fn score(o: &Outcome) -> Option<f64> {
        o.gbps()
    }

    #[test]
    fn exhaustive_finds_the_optimum() {
        let r = explore(&space(), Explorer::Exhaustive, objective);
        let best = r.best.clone().expect("has best");
        assert_eq!(best.config.vector_width.get(), 16);
        assert_eq!(best.config.loop_mode, LoopMode::SingleWorkItemFlat);
        assert_eq!(best.config.unroll, 4);
        assert_eq!(r.trace.len(), 45);
        assert_eq!(r.failures, 0);
        assert_eq!(r.evaluations(), 45);
        assert_eq!(r.space_size, 45);
        assert_eq!(r.strategy, "grid");
    }

    #[test]
    fn random_search_respects_budget_and_seed() {
        let r1 = explore(
            &space(),
            Explorer::RandomSearch {
                budget: 10,
                seed: 42,
            },
            objective,
        );
        let r2 = explore(
            &space(),
            Explorer::RandomSearch {
                budget: 10,
                seed: 42,
            },
            objective,
        );
        assert_eq!(r1.trace.len(), 10);
        let s1: Vec<_> = r1.trace.iter().map(score).collect();
        let s2: Vec<_> = r2.trace.iter().map(score).collect();
        assert_eq!(s1, s2, "seeded determinism");
    }

    #[test]
    fn hill_climb_reaches_good_configs_with_small_budget() {
        let r = explore(
            &space(),
            Explorer::HillClimb {
                budget: 30,
                seed: 7,
            },
            objective,
        );
        let best = r.best.expect("has best");
        assert!(score(&best).unwrap() >= 20.0, "score {:?}", score(&best));
        assert!(r.trace.len() <= 30);
    }

    #[test]
    fn annealing_reaches_good_configs() {
        let r = explore(
            &space(),
            Explorer::Anneal {
                budget: 40,
                seed: 11,
                t0: 8.0,
            },
            objective,
        );
        let best = r.best.expect("has best");
        assert!(score(&best).unwrap() >= 20.0, "score {:?}", score(&best));
        assert!(r.trace.len() <= 40);
    }

    #[test]
    fn annealing_is_seeded_deterministic() {
        let strat = Explorer::Anneal {
            budget: 25,
            seed: 3,
            t0: 4.0,
        };
        let a = explore(&space(), strat, objective);
        let b = explore(&space(), strat, objective);
        let sa: Vec<_> = a.trace.iter().map(score).collect();
        let sb: Vec<_> = b.trace.iter().map(score).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn annealing_escapes_a_deceptive_ridge() {
        // Objective with a local optimum at narrow vectors + high unroll
        // that greedy search can fall into; annealing's random accepts
        // should find the global at vec16/flat/unroll4 more reliably
        // from the same budget.
        let deceptive = |c: &KernelConfig| -> Result<Measurement, ClError> {
            let w = c.vector_width.get() as f64;
            let mut s = if w <= 2.0 { 10.0 + c.unroll as f64 } else { w };
            if c.loop_mode == LoopMode::SingleWorkItemFlat {
                s *= 2.0;
            }
            Ok(Measurement::synthetic(s))
        };
        let r = explore(
            &space(),
            Explorer::Anneal {
                budget: 45,
                seed: 5,
                t0: 10.0,
            },
            deceptive,
        );
        // Global optimum: vec16 flat => 32+.
        assert!(score(&r.best.expect("best")).unwrap() >= 28.0);
    }

    #[test]
    fn genetic_is_seeded_deterministic_and_respects_budget() {
        let run = || {
            let mut s = GeneticSearch::new(&space(), 15, 99);
            let (trace, _, _) = drive(&mut s, 15, |batch| BatchOutcome {
                outcomes: batch
                    .iter()
                    .map(|c| Outcome::new(c.clone(), objective(c)))
                    .collect(),
                resumed: 0,
                cancelled: false,
            });
            trace
        };
        let a = run();
        let b = run();
        assert!(a.len() <= 15);
        assert!(!a.is_empty());
        assert_eq!(
            a.iter().map(|o| o.config.clone()).collect::<Vec<_>>(),
            b.iter().map(|o| o.config.clone()).collect::<Vec<_>>(),
            "seeded determinism"
        );
        // No config proposed twice.
        let mut keys: Vec<String> = a
            .iter()
            .map(|o| crate::checkpoint::config_key(&o.config))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), a.len(), "no duplicate proposals");
    }

    #[test]
    fn model_search_learns_the_synthetic_optimum() {
        let mut s = ModelSearch::new(&space(), 15, 7);
        let (trace, _, _) = drive(&mut s, 15, |batch| BatchOutcome {
            outcomes: batch
                .iter()
                .map(|c| Outcome::new(c.clone(), objective(c)))
                .collect(),
            resumed: 0,
            cancelled: false,
        });
        assert!(trace.len() <= 15);
        let best = trace
            .iter()
            .filter_map(score)
            .fold(f64::NEG_INFINITY, f64::max);
        // Optimum is 36 (vec16 flat unroll4); the surrogate must get
        // within striking distance on a third of the space.
        assert!(best >= 30.0, "model best {best}");
    }

    #[test]
    fn surrogate_checkpoint_round_trips_and_warm_starts() {
        let mut s = ModelSearch::new(&space(), 15, 7);
        let (_, _, _) = drive(&mut s, 15, |batch| BatchOutcome {
            outcomes: batch
                .iter()
                .map(|c| Outcome::new(c.clone(), objective(c)))
                .collect(),
            resumed: 0,
            cancelled: false,
        });
        let ckpt = s.surrogate();
        assert_eq!(ckpt.feature_dim, kernelgen::FEATURE_DIM);
        let back = SurrogateCheckpoint::from_json(&ckpt.to_json()).expect("round trip");
        assert_eq!(back, ckpt);

        // A warm-started search's first ask is model-ranked, not random
        // — and deterministic regardless of the seed.
        let ask1 = ModelSearch::new(&space(), 15, 1).warm_start(&ckpt).ask();
        let ask2 = ModelSearch::new(&space(), 15, 2).warm_start(&ckpt).ask();
        assert!(!ask1.is_empty());
        assert_eq!(ask1, ask2, "warm start ignores the rng seed");
    }

    #[test]
    fn stale_feature_dim_checkpoints_fail_loudly() {
        // A checkpoint from before the workload-family feature growth:
        // 19 dims. Loading it must be an error that names both sizes,
        // not a silently mis-indexed model.
        let join = |n: usize| {
            (0..n)
                .map(|_| "0".to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let old = format!(
            "{{\"feature_dim\":19,\"mean\":\"{0}\",\"scale\":\"{0}\",\"weights\":\"{0}\",\"intercept\":1.5}}",
            join(19)
        );
        let err = SurrogateCheckpoint::from_json(&old).unwrap_err();
        assert!(err.contains("19-dim"), "{err}");
        assert!(err.contains(&kernelgen::FEATURE_DIM.to_string()), "{err}");
        assert!(err.contains("refit"), "{err}");

        // Matching dim but short vectors is also rejected.
        let torn = format!(
            "{{\"feature_dim\":{dim},\"mean\":\"{short}\",\"scale\":\"{short}\",\"weights\":\"{short}\",\"intercept\":0}}",
            dim = kernelgen::FEATURE_DIM,
            short = join(3)
        );
        assert!(SurrogateCheckpoint::from_json(&torn).is_err());
    }

    #[test]
    fn ridge_model_recovers_a_linear_response() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + 5.0).collect();
        let m = RidgeModel::fit(&refs, &ys, 1e-6);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((m.predict(x) - y).abs() < 0.1, "{} vs {}", m.predict(x), y);
        }
    }

    #[test]
    fn nan_bandwidth_neither_panics_nor_wins() {
        // A degenerate measurement whose bandwidth computes to NaN.
        let nan_measurement = || {
            let mut m = Measurement::synthetic(1.0);
            m.best_wall_ns = f64::NAN;
            assert!(m.gbps().is_nan());
            Ok(m)
        };
        // Regression: the best-pick used `partial_cmp(..).expect(..)`,
        // so one NaN measurement panicked the whole search.
        let r = explore(&space(), Explorer::Exhaustive, |c| {
            if c.vector_width.get() == 16 {
                nan_measurement()
            } else {
                objective(c)
            }
        });
        let best = r.best.expect("finite points still produce a best");
        assert!(score(&best).unwrap().is_finite());
        assert_ne!(best.config.vector_width.get(), 16, "NaN never wins");

        // All-NaN searches have no best rather than a NaN best.
        let all_nan = explore(&space(), Explorer::Exhaustive, |_| nan_measurement());
        assert!(all_nan.best.is_none());
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let r = explore(&space(), Explorer::Exhaustive, |c| {
            if c.unroll == 2 {
                Err(ClError::BuildProgramFailure("synthetic failure".into()))
            } else {
                objective(c)
            }
        });
        assert!(r.failures > 0);
        assert!(r.best.is_some());
        assert_ne!(r.best.unwrap().config.unroll, 2);
    }

    #[test]
    fn empty_space_is_handled() {
        let s = ParamSpace::new().widths([]);
        for strat in [
            Explorer::Exhaustive,
            Explorer::RandomSearch { budget: 5, seed: 1 },
            Explorer::HillClimb { budget: 5, seed: 1 },
        ] {
            let r = explore(&s, strat, objective);
            assert!(r.best.is_none());
            assert!(r.trace.is_empty());
        }
    }

    #[test]
    fn neighbour_relation_is_one_dimensional() {
        let cfgs = space().configs();
        let base = &cfgs[0];
        for n in neighbours(&cfgs, base) {
            assert!(differs_in_one_dim(&cfgs[n], base));
        }
    }

    #[test]
    fn explore_target_random_matches_serial_visit_order() {
        use targets::TargetId;
        let space = ParamSpace::new()
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4, 8])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .unrolls([1, 2]);
        let strat = Explorer::RandomSearch { budget: 5, seed: 9 };
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let engine = Engine::with_jobs(4);
        let par = explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let runner = Runner::for_target(TargetId::FpgaAocl);
        let ser = explore(&space, strat, |c| runner.run(&protocol(c.clone())));
        assert_eq!(par.trace.len(), ser.trace.len());
        for (a, b) in par.trace.iter().zip(&ser.trace) {
            assert_eq!(a.config, b.config, "same seeded visit order");
            assert_eq!(a.gbps(), b.gbps());
        }
    }

    #[test]
    fn explore_target_climbers_share_the_engine_cache() {
        use targets::TargetId;
        let space = ParamSpace::new()
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4])
            .loop_modes([LoopMode::SingleWorkItemFlat]);
        let engine = Engine::with_jobs(2);
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let strat = Explorer::HillClimb {
            budget: 12,
            seed: 1,
        };
        explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let first = engine.cache_stats();
        assert!(first.misses > 0);
        explore_target(&engine, TargetId::FpgaAocl, &space, strat, protocol);
        let delta = engine.cache_stats().since(first);
        assert_eq!(delta.misses, 0, "revisits hit the shared cache");
    }

    #[test]
    fn search_target_stops_on_a_fired_cancel_token() {
        use crate::engine::CancelToken;
        use targets::TargetId;
        let token = CancelToken::new();
        token.cancel();
        let engine = Engine::with_jobs(2).with_cancel(Some(token));
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let sp = ParamSpace::new()
            .sizes_bytes([1 << 16])
            .widths([1, 2, 4, 8, 16])
            .loop_modes([LoopMode::SingleWorkItemFlat]);
        // Regression: the climbers used to run outside the engine, so a
        // fired token could not stop a walk in progress.
        let mut strat = HillClimbSearch::new(&sp, 3);
        let r = search_target(&engine, TargetId::FpgaAocl, &mut strat, 0, protocol, None);
        assert!(r.cancelled, "fired token reported");
        assert!(
            r.trace.is_empty(),
            "cancelled slots never reach the trace: {:?}",
            r.trace.len()
        );
    }
}
