//! Regeneration of every figure in the paper's evaluation (§IV).
//!
//! One function per figure panel; each builds the same parameter sweep
//! the paper ran, executes it on the four simulated targets via the
//! [`Engine`], and returns labelled [`Series`] ready for the report
//! layer. FPGA synthesis failures become notes (and missing points),
//! exactly as a real sweep would record them.
//!
//! Loop management: the paper states Figure 1/2 use the optimal loop
//! form per target. We use NDRange for CPU/GPU and the single-work-item
//! flat loop for both FPGAs (the paper's own Figure 1a/1b levels match
//! the flat-loop rates on SDAccel; its nested-loop discovery is explored
//! separately in Figure 3).

use crate::bandwidth::{fig1_sizes, fig2_sizes, gbps_to_kbps};
use crate::config::BenchConfig;
use crate::engine::{
    default_jobs, Engine, ResiliencePolicy, DEFAULT_FAULT_RETRIES, DEFAULT_FAULT_SEED,
};
use crate::report::Series;
use crate::trace::Trace;
use kernelgen::{
    AccessPattern, AoclOpts, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts,
};
use mpcl::{FaultPlan, FaultSpec};
use std::sync::Arc;
use targets::TargetId;

/// Figure identifiers, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Fig. 1a: bandwidth vs array size.
    Fig1a,
    /// Fig. 1b: bandwidth vs vector width.
    Fig1b,
    /// Fig. 2: contiguity (contiguous vs column-major) vs array size.
    Fig2,
    /// Fig. 3: loop management per target (KB/s).
    Fig3,
    /// Fig. 4a: all four STREAM kernels per target (KB/s).
    Fig4a,
    /// Fig. 4b: AOCL vendor optimizations vs native vectorization.
    Fig4b,
}

impl FigureId {
    /// All six panels.
    pub const ALL: [FigureId; 6] = [
        FigureId::Fig1a,
        FigureId::Fig1b,
        FigureId::Fig2,
        FigureId::Fig3,
        FigureId::Fig4a,
        FigureId::Fig4b,
    ];

    /// Short name used in filenames and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig1a => "fig1a",
            FigureId::Fig1b => "fig1b",
            FigureId::Fig2 => "fig2",
            FigureId::Fig3 => "fig3",
            FigureId::Fig4a => "fig4a",
            FigureId::Fig4b => "fig4b",
        }
    }

    /// Parse a short name.
    pub fn from_name(s: &str) -> Option<FigureId> {
        FigureId::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// A regenerated figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Which panel.
    pub id: FigureId,
    /// Human title.
    pub title: String,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Anything noteworthy (synthesis failures, skipped points).
    pub notes: Vec<String>,
}

/// The loop management each target prefers (used where the paper says
/// "loop-management is optimal for each target").
pub fn optimal_loop(target: TargetId) -> LoopMode {
    if target.is_fpga() {
        LoopMode::SingleWorkItemFlat
    } else {
        LoopMode::NdRange
    }
}

/// 4 MB in bytes — the fixed array size the paper uses once sizes
/// plateau ("we see the bandwidths plateau around 4 MB").
pub const PLATEAU_BYTES: u64 = 4 << 20;

fn copy_kernel(target: TargetId, bytes: u64) -> KernelConfig {
    let mut k = KernelConfig::baseline(StreamOp::Copy, bytes / 4);
    k.loop_mode = optimal_loop(target);
    k
}

/// Run a batch of kernels on one target across the engine's thread
/// pool, in order; `Err` text is a note, `Ok` is GB/s.
fn measure_list(
    engine: &Engine,
    target: TargetId,
    kernels: Vec<KernelConfig>,
    ntimes: u32,
) -> Vec<Result<f64, String>> {
    let work: Vec<BenchConfig> = kernels
        .into_iter()
        .map(|k| BenchConfig::new(k).with_ntimes(ntimes))
        .collect();
    engine
        .run_list(target, &work)
        .into_iter()
        .map(|o| {
            o.result
                .map(|m| {
                    debug_assert!(
                        m.validated != Some(false),
                        "validation failed on {target:?}"
                    );
                    m.gbps()
                })
                .map_err(|e| format!("{}: {e}", target.label()))
        })
        .collect()
}

/// Options controlling sweep sizes (tests use `quick`) and parallelism.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Reduce point counts and repetitions for fast smoke runs.
    pub quick: bool,
    /// Worker threads per figure; `None` picks the default
    /// (`MPSTREAM_JOBS` or the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Inject deterministic faults into every figure's sweep.
    pub faults: Option<FaultSpec>,
    /// Fault-plan seed; `None` uses [`DEFAULT_FAULT_SEED`].
    pub fault_seed: Option<u64>,
    /// Per-config retry budget; `None` uses [`DEFAULT_FAULT_RETRIES`]
    /// when faults are on, else 0.
    pub retries: Option<u32>,
    /// Trace sink shared by every figure's engine (`--trace`).
    pub trace: Option<Arc<Trace>>,
}

impl RunOpts {
    /// Full paper-fidelity sweep.
    pub fn full() -> Self {
        RunOpts {
            quick: false,
            jobs: None,
            faults: None,
            fault_seed: None,
            retries: None,
            trace: None,
        }
    }

    /// Reduced sweep for tests.
    pub fn quick() -> Self {
        RunOpts {
            quick: true,
            ..Self::full()
        }
    }

    /// Builder: set the worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Builder: inject deterministic faults (seeded by
    /// [`Self::with_fault_seed`], else [`DEFAULT_FAULT_SEED`]).
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Builder: set the fault-plan seed.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Builder: set the per-config retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = Some(retries);
        self
    }

    /// Builder: collect structured trace events into `trace`.
    pub fn with_trace(mut self, trace: Arc<Trace>) -> Self {
        self.trace = Some(trace);
        self
    }

    fn engine(&self) -> Engine {
        let plan = self.faults.map(|spec| {
            Arc::new(FaultPlan::new(
                spec,
                self.fault_seed.unwrap_or(DEFAULT_FAULT_SEED),
            ))
        });
        let retries = self.retries.unwrap_or(if plan.is_some() {
            DEFAULT_FAULT_RETRIES
        } else {
            0
        });
        Engine::with_jobs(self.jobs.unwrap_or_else(default_jobs))
            .with_policy(ResiliencePolicy::retrying(retries))
            .with_faults(plan)
            .with_trace(self.trace.clone())
    }

    fn ntimes(&self) -> u32 {
        if self.quick {
            1
        } else {
            3
        }
    }

    fn thin<T: Copy>(&self, xs: Vec<T>) -> Vec<T> {
        if self.quick {
            xs.into_iter().step_by(3).collect()
        } else {
            xs
        }
    }
}

/// Regenerate one figure.
pub fn run_figure(id: FigureId, opts: RunOpts) -> Figure {
    match id {
        FigureId::Fig1a => fig1a(opts),
        FigureId::Fig1b => fig1b(opts),
        FigureId::Fig2 => fig2(opts),
        FigureId::Fig3 => fig3(opts),
        FigureId::Fig4a => fig4a(opts),
        FigureId::Fig4b => fig4b(opts),
    }
}

/// Figure 1a: COPY bandwidth vs array size on all four targets.
pub fn fig1a(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let sizes = opts.thin(fig1_sizes());
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for target in TargetId::ALL {
        let kernels = sizes
            .iter()
            .map(|&bytes| copy_kernel(target, bytes))
            .collect();
        let mut pts = Vec::new();
        for (&bytes, r) in sizes
            .iter()
            .zip(measure_list(&engine, target, kernels, opts.ntimes()))
        {
            match r {
                Ok(gbps) => pts.push((bytes as f64 / 1e6, gbps)),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(target.label(), pts));
    }
    Figure {
        id: FigureId::Fig1a,
        title: "Memory bandwidth for COPY with varying array sizes".into(),
        x_label: "Array size (MB)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 1b: COPY bandwidth vs vector width at 4 MB arrays.
pub fn fig1b(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let widths: Vec<u32> = if opts.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for target in TargetId::ALL {
        let kernels = widths
            .iter()
            .map(|&w| {
                let mut k = copy_kernel(target, PLATEAU_BYTES);
                k.vector_width = VectorWidth::new(w).expect("allowed width");
                k
            })
            .collect();
        let mut pts = Vec::new();
        for (&w, r) in widths
            .iter()
            .zip(measure_list(&engine, target, kernels, opts.ntimes()))
        {
            match r {
                Ok(gbps) => pts.push((w as f64, gbps)),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(target.label(), pts));
    }
    Figure {
        id: FigureId::Fig1b,
        title: "COPY bandwidth vs vector width (memory coalescing)".into(),
        x_label: "Vector Width (words)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 2: contiguous vs column-major ("strided") access across sizes.
pub fn fig2(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (pattern, suffix) in [
        (AccessPattern::Contiguous, "contig"),
        (AccessPattern::ColMajor { cols: None }, "strided"),
    ] {
        for target in TargetId::ALL {
            // The paper's FPGA series stop at 64 MB; CPU/GPU go to ~1 GB.
            let sizes = opts.thin(if target.is_fpga() {
                fig1_sizes()
            } else {
                fig2_sizes()
            });
            let kernels = sizes
                .iter()
                .map(|&bytes| {
                    let mut k = copy_kernel(target, bytes);
                    k.pattern = pattern;
                    k
                })
                .collect();
            let mut pts = Vec::new();
            for (&bytes, r) in
                sizes
                    .iter()
                    .zip(measure_list(&engine, target, kernels, opts.ntimes()))
            {
                match r {
                    Ok(gbps) => pts.push((bytes as f64 / 1e6, gbps)),
                    Err(e) => notes.push(e),
                }
            }
            series.push(Series::new(format!("{}-{suffix}", target.label()), pts));
        }
    }
    Figure {
        id: FigureId::Fig2,
        title: "COPY bandwidth with varying array sizes and contiguity".into(),
        x_label: "Array size (MB) [column-major strided]".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 3: the three loop managements on each target (KB/s).
pub fn fig3(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let mut series = Vec::new();
    let mut notes = Vec::new();
    // Batch per target (each batch shares one device across the pool),
    // then regroup the cells into one series per loop mode.
    let cells: Vec<Vec<Result<f64, String>>> = TargetId::ALL
        .into_iter()
        .map(|target| {
            let kernels = LoopMode::ALL
                .into_iter()
                .map(|mode| {
                    let mut k = copy_kernel(target, PLATEAU_BYTES);
                    k.loop_mode = mode;
                    k
                })
                .collect();
            measure_list(&engine, target, kernels, opts.ntimes())
        })
        .collect();
    for (j, mode) in LoopMode::ALL.into_iter().enumerate() {
        let mut pts = Vec::new();
        for (i, row) in cells.iter().enumerate() {
            match &row[j] {
                Ok(gbps) => pts.push((i as f64 + 1.0, gbps_to_kbps(*gbps))),
                Err(e) => notes.push(e.clone()),
            }
        }
        series.push(Series::new(mode.label(), pts));
    }
    Figure {
        id: FigureId::Fig3,
        title: "Effect of loop management on all four targets (4 MB)".into(),
        x_label: "Target (1=aocl 2=sdaccel 3=cpu 4=gpu)".into(),
        y_label: "Global Memory B'width (KB/s)".into(),
        series,
        notes,
    }
}

/// Figure 4a: all four STREAM kernels on all targets (KB/s).
pub fn fig4a(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let mut series = Vec::new();
    let mut notes = Vec::new();
    let cells: Vec<Vec<Result<f64, String>>> = TargetId::ALL
        .into_iter()
        .map(|target| {
            let kernels = StreamOp::ALL
                .into_iter()
                .map(|op| {
                    let mut k = copy_kernel(target, PLATEAU_BYTES);
                    k.op = op;
                    k
                })
                .collect();
            measure_list(&engine, target, kernels, opts.ntimes())
        })
        .collect();
    for (j, op) in StreamOp::ALL.into_iter().enumerate() {
        let mut pts = Vec::new();
        for (i, row) in cells.iter().enumerate() {
            match &row[j] {
                Ok(gbps) => pts.push((i as f64 + 1.0, gbps_to_kbps(*gbps))),
                Err(e) => notes.push(e.clone()),
            }
        }
        series.push(Series::new(op.name(), pts));
    }
    Figure {
        id: FigureId::Fig4a,
        title: "All four STREAM kernels on all targets (4 MB)".into(),
        x_label: "Target (1=aocl 2=sdaccel 3=cpu 4=gpu)".into(),
        y_label: "Global Memory B'width (KB/s)".into(),
        series,
        notes,
    }
}

/// Figure 4b: AOCL-specific replication vs native vectorization, on the
/// AOCL target, N in {1, 2, 4, 8, 16}.
pub fn fig4b(opts: RunOpts) -> Figure {
    let engine = opts.engine();
    let ns: Vec<u32> = if opts.quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let target = TargetId::FpgaAocl;
    let mut notes = Vec::new();

    // Three kernels per N — native vectorization, num_simd_work_items
    // (requires NDRange + reqd work-group size), num_compute_units — in
    // one engine batch.
    let mut kernels = Vec::with_capacity(3 * ns.len());
    for &n in &ns {
        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.vector_width = VectorWidth::new(n).expect("allowed");
        kernels.push(k);

        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.loop_mode = LoopMode::NdRange;
        k.reqd_work_group_size = true;
        k.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: n,
            num_compute_units: 1,
        });
        kernels.push(k);

        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 1,
            num_compute_units: n,
        });
        kernels.push(k);
    }
    let results = measure_list(&engine, target, kernels, opts.ntimes());

    let mut vec_pts = Vec::new();
    let mut simd_pts = Vec::new();
    let mut cu_pts = Vec::new();
    for (chunk, &n) in results.chunks(3).zip(&ns) {
        for (r, (pts, label)) in chunk.iter().zip([
            (&mut vec_pts, "vec"),
            (&mut simd_pts, "simd"),
            (&mut cu_pts, "cu"),
        ]) {
            match r {
                Ok(g) => pts.push((n as f64, *g)),
                Err(e) => notes.push(format!("{label}{n}: {e}")),
            }
        }
    }

    Figure {
        id: FigureId::Fig4b,
        title: "AOCL optimizations vs native vectorization".into(),
        x_label: "N (vector width | SIMD work-items | compute units)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series: vec![
            Series::new("vector-size", vec_pts),
            Series::new("num-simd-work-items", simd_pts),
            Series::new("num-compute-units", cu_pts),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_round_trip() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::from_name(id.name()), Some(id));
        }
        assert_eq!(FigureId::from_name("fig9"), None);
    }

    #[test]
    fn fig1a_quick_has_four_series_rising() {
        let f = fig1a(RunOpts::quick());
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert!(!s.points.is_empty(), "{}", s.label);
            let ys = s.ys();
            assert!(
                ys.last().unwrap() > ys.first().unwrap(),
                "{} should rise: {ys:?}",
                s.label
            );
        }
        assert!(f.notes.is_empty(), "{:?}", f.notes);
    }

    #[test]
    fn fig3_quick_fpga_prefers_single_work_item() {
        let f = fig3(RunOpts::quick());
        let find = |label: &str| {
            f.series
                .iter()
                .find(|s| s.label == label)
                .expect("series")
                .points
                .clone()
        };
        let nd = find("ndrange-kernel");
        let flat = find("kernel-loop-flat");
        let nested = find("kernel-loop-nested");
        // x = 1 is aocl, x = 2 sdaccel, 3 cpu, 4 gpu.
        assert!(flat[0].1 > nd[0].1, "aocl prefers the loop form");
        assert!(nested[1].1 > flat[1].1, "sdaccel prefers the nested form");
        assert!(nd[2].1 > flat[2].1, "cpu prefers ndrange");
        assert!(
            nd[3].1 > 100.0 * flat[3].1,
            "gpu collapses on one work-item"
        );
    }

    #[test]
    fn fig1b_quick_with_faults_and_retries_matches_fault_free() {
        let clean = fig1b(RunOpts::quick().with_jobs(2));
        let spec = FaultSpec::parse("build=0.2,timeout=0.1,lost=0.05,bitflip=0.05").unwrap();
        let faulty = fig1b(
            RunOpts::quick()
                .with_jobs(2)
                .with_faults(spec)
                .with_fault_seed(42)
                .with_retries(10),
        );
        assert!(faulty.notes.is_empty(), "{:?}", faulty.notes);
        for (a, b) in clean.series.iter().zip(&faulty.series) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.points, b.points, "{}", a.label);
        }
    }

    #[test]
    fn fig4b_quick_native_vectorization_wins_at_16() {
        let f = fig4b(RunOpts::quick());
        let last = |label: &str| {
            f.series
                .iter()
                .find(|s| s.label == label)
                .expect("series")
                .points
                .last()
                .copied()
        };
        let v = last("vector-size").expect("vec point");
        let cu = last("num-compute-units").expect("cu point");
        assert!(v.1 > cu.1, "native vec {v:?} beats CU replication {cu:?}");
    }
}
