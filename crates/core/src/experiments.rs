//! Regeneration of every figure in the paper's evaluation (§IV).
//!
//! One function per figure panel; each builds the same parameter sweep
//! the paper ran, executes it on the four simulated targets via the
//! [`Runner`], and returns labelled [`Series`] ready for the report
//! layer. FPGA synthesis failures become notes (and missing points),
//! exactly as a real sweep would record them.
//!
//! Loop management: the paper states Figure 1/2 use the optimal loop
//! form per target. We use NDRange for CPU/GPU and the single-work-item
//! flat loop for both FPGAs (the paper's own Figure 1a/1b levels match
//! the flat-loop rates on SDAccel; its nested-loop discovery is explored
//! separately in Figure 3).

use crate::bandwidth::{fig1_sizes, fig2_sizes, gbps_to_kbps};
use crate::config::BenchConfig;
use crate::report::Series;
use crate::runner::Runner;
use kernelgen::{
    AccessPattern, AoclOpts, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts,
};
use targets::TargetId;

/// Figure identifiers, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureId {
    /// Fig. 1a: bandwidth vs array size.
    Fig1a,
    /// Fig. 1b: bandwidth vs vector width.
    Fig1b,
    /// Fig. 2: contiguity (contiguous vs column-major) vs array size.
    Fig2,
    /// Fig. 3: loop management per target (KB/s).
    Fig3,
    /// Fig. 4a: all four STREAM kernels per target (KB/s).
    Fig4a,
    /// Fig. 4b: AOCL vendor optimizations vs native vectorization.
    Fig4b,
}

impl FigureId {
    /// All six panels.
    pub const ALL: [FigureId; 6] = [
        FigureId::Fig1a,
        FigureId::Fig1b,
        FigureId::Fig2,
        FigureId::Fig3,
        FigureId::Fig4a,
        FigureId::Fig4b,
    ];

    /// Short name used in filenames and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            FigureId::Fig1a => "fig1a",
            FigureId::Fig1b => "fig1b",
            FigureId::Fig2 => "fig2",
            FigureId::Fig3 => "fig3",
            FigureId::Fig4a => "fig4a",
            FigureId::Fig4b => "fig4b",
        }
    }

    /// Parse a short name.
    pub fn from_name(s: &str) -> Option<FigureId> {
        FigureId::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// A regenerated figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Which panel.
    pub id: FigureId,
    /// Human title.
    pub title: String,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
    /// The measured series.
    pub series: Vec<Series>,
    /// Anything noteworthy (synthesis failures, skipped points).
    pub notes: Vec<String>,
}

/// The loop management each target prefers (used where the paper says
/// "loop-management is optimal for each target").
pub fn optimal_loop(target: TargetId) -> LoopMode {
    if target.is_fpga() {
        LoopMode::SingleWorkItemFlat
    } else {
        LoopMode::NdRange
    }
}

/// 4 MB in bytes — the fixed array size the paper uses once sizes
/// plateau ("we see the bandwidths plateau around 4 MB").
pub const PLATEAU_BYTES: u64 = 4 << 20;

fn copy_kernel(target: TargetId, bytes: u64) -> KernelConfig {
    let mut k = KernelConfig::baseline(StreamOp::Copy, bytes / 4);
    k.loop_mode = optimal_loop(target);
    k
}

/// Run one kernel on one target; `Err` text is a note, `Ok` is GB/s.
fn measure(target: TargetId, kernel: KernelConfig, ntimes: u32) -> Result<f64, String> {
    let bc = BenchConfig::new(kernel).with_ntimes(ntimes);
    Runner::for_target(target)
        .run(&bc)
        .map(|m| {
            debug_assert!(m.validated != Some(false), "validation failed on {target:?}");
            m.gbps()
        })
        .map_err(|e| format!("{}: {e}", target.label()))
}

/// Options controlling sweep sizes (tests use `quick`).
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Reduce point counts and repetitions for fast smoke runs.
    pub quick: bool,
}

impl RunOpts {
    /// Full paper-fidelity sweep.
    pub fn full() -> Self {
        RunOpts { quick: false }
    }

    /// Reduced sweep for tests.
    pub fn quick() -> Self {
        RunOpts { quick: true }
    }

    fn ntimes(&self) -> u32 {
        if self.quick {
            1
        } else {
            3
        }
    }

    fn thin<T: Copy>(&self, xs: Vec<T>) -> Vec<T> {
        if self.quick {
            xs.into_iter().step_by(3).collect()
        } else {
            xs
        }
    }
}

/// Regenerate one figure.
pub fn run_figure(id: FigureId, opts: RunOpts) -> Figure {
    match id {
        FigureId::Fig1a => fig1a(opts),
        FigureId::Fig1b => fig1b(opts),
        FigureId::Fig2 => fig2(opts),
        FigureId::Fig3 => fig3(opts),
        FigureId::Fig4a => fig4a(opts),
        FigureId::Fig4b => fig4b(opts),
    }
}

/// Figure 1a: COPY bandwidth vs array size on all four targets.
pub fn fig1a(opts: RunOpts) -> Figure {
    let sizes = opts.thin(fig1_sizes());
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for target in TargetId::ALL {
        let mut pts = Vec::new();
        for &bytes in &sizes {
            match measure(target, copy_kernel(target, bytes), opts.ntimes()) {
                Ok(gbps) => pts.push((bytes as f64 / 1e6, gbps)),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(target.label(), pts));
    }
    Figure {
        id: FigureId::Fig1a,
        title: "Memory bandwidth for COPY with varying array sizes".into(),
        x_label: "Array size (MB)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 1b: COPY bandwidth vs vector width at 4 MB arrays.
pub fn fig1b(opts: RunOpts) -> Figure {
    let widths: Vec<u32> = if opts.quick { vec![1, 4, 16] } else { vec![1, 2, 4, 8, 16] };
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for target in TargetId::ALL {
        let mut pts = Vec::new();
        for &w in &widths {
            let mut k = copy_kernel(target, PLATEAU_BYTES);
            k.vector_width = VectorWidth::new(w).expect("allowed width");
            match measure(target, k, opts.ntimes()) {
                Ok(gbps) => pts.push((w as f64, gbps)),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(target.label(), pts));
    }
    Figure {
        id: FigureId::Fig1b,
        title: "COPY bandwidth vs vector width (memory coalescing)".into(),
        x_label: "Vector Width (words)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 2: contiguous vs column-major ("strided") access across sizes.
pub fn fig2(opts: RunOpts) -> Figure {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (pattern, suffix) in [
        (AccessPattern::Contiguous, "contig"),
        (AccessPattern::ColMajor { cols: None }, "strided"),
    ] {
        for target in TargetId::ALL {
            // The paper's FPGA series stop at 64 MB; CPU/GPU go to ~1 GB.
            let sizes = opts.thin(if target.is_fpga() { fig1_sizes() } else { fig2_sizes() });
            let mut pts = Vec::new();
            for &bytes in &sizes {
                let mut k = copy_kernel(target, bytes);
                k.pattern = pattern;
                match measure(target, k, opts.ntimes()) {
                    Ok(gbps) => pts.push((bytes as f64 / 1e6, gbps)),
                    Err(e) => notes.push(e),
                }
            }
            series.push(Series::new(format!("{}-{suffix}", target.label()), pts));
        }
    }
    Figure {
        id: FigureId::Fig2,
        title: "COPY bandwidth with varying array sizes and contiguity".into(),
        x_label: "Array size (MB) [column-major strided]".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series,
        notes,
    }
}

/// Figure 3: the three loop managements on each target (KB/s).
pub fn fig3(opts: RunOpts) -> Figure {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for mode in LoopMode::ALL {
        let mut pts = Vec::new();
        for (i, target) in TargetId::ALL.into_iter().enumerate() {
            let mut k = copy_kernel(target, PLATEAU_BYTES);
            k.loop_mode = mode;
            match measure(target, k, opts.ntimes()) {
                Ok(gbps) => pts.push((i as f64 + 1.0, gbps_to_kbps(gbps))),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(mode.label(), pts));
    }
    Figure {
        id: FigureId::Fig3,
        title: "Effect of loop management on all four targets (4 MB)".into(),
        x_label: "Target (1=aocl 2=sdaccel 3=cpu 4=gpu)".into(),
        y_label: "Global Memory B'width (KB/s)".into(),
        series,
        notes,
    }
}

/// Figure 4a: all four STREAM kernels on all targets (KB/s).
pub fn fig4a(opts: RunOpts) -> Figure {
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for op in StreamOp::ALL {
        let mut pts = Vec::new();
        for (i, target) in TargetId::ALL.into_iter().enumerate() {
            let mut k = copy_kernel(target, PLATEAU_BYTES);
            k.op = op;
            match measure(target, k, opts.ntimes()) {
                Ok(gbps) => pts.push((i as f64 + 1.0, gbps_to_kbps(gbps))),
                Err(e) => notes.push(e),
            }
        }
        series.push(Series::new(op.name(), pts));
    }
    Figure {
        id: FigureId::Fig4a,
        title: "All four STREAM kernels on all targets (4 MB)".into(),
        x_label: "Target (1=aocl 2=sdaccel 3=cpu 4=gpu)".into(),
        y_label: "Global Memory B'width (KB/s)".into(),
        series,
        notes,
    }
}

/// Figure 4b: AOCL-specific replication vs native vectorization, on the
/// AOCL target, N in {1, 2, 4, 8, 16}.
pub fn fig4b(opts: RunOpts) -> Figure {
    let ns: Vec<u32> = if opts.quick { vec![1, 4, 16] } else { vec![1, 2, 4, 8, 16] };
    let target = TargetId::FpgaAocl;
    let mut notes = Vec::new();

    let mut vec_pts = Vec::new();
    let mut simd_pts = Vec::new();
    let mut cu_pts = Vec::new();
    for &n in &ns {
        // Native vectorization (single-work-item flat loop).
        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.vector_width = VectorWidth::new(n).expect("allowed");
        match measure(target, k, opts.ntimes()) {
            Ok(g) => vec_pts.push((n as f64, g)),
            Err(e) => notes.push(format!("vec{n}: {e}")),
        }

        // num_simd_work_items (requires NDRange + reqd work-group size).
        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.loop_mode = LoopMode::NdRange;
        k.reqd_work_group_size = true;
        k.vendor = VendorOpts::Aocl(AoclOpts { num_simd_work_items: n, num_compute_units: 1 });
        match measure(target, k, opts.ntimes()) {
            Ok(g) => simd_pts.push((n as f64, g)),
            Err(e) => notes.push(format!("simd{n}: {e}")),
        }

        // num_compute_units.
        let mut k = copy_kernel(target, PLATEAU_BYTES);
        k.vendor = VendorOpts::Aocl(AoclOpts { num_simd_work_items: 1, num_compute_units: n });
        match measure(target, k, opts.ntimes()) {
            Ok(g) => cu_pts.push((n as f64, g)),
            Err(e) => notes.push(format!("cu{n}: {e}")),
        }
    }

    Figure {
        id: FigureId::Fig4b,
        title: "AOCL optimizations vs native vectorization".into(),
        x_label: "N (vector width | SIMD work-items | compute units)".into(),
        y_label: "Global Memory B'width (GB/s)".into(),
        series: vec![
            Series::new("vector-size", vec_pts),
            Series::new("num-simd-work-items", simd_pts),
            Series::new("num-compute-units", cu_pts),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_round_trip() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::from_name(id.name()), Some(id));
        }
        assert_eq!(FigureId::from_name("fig9"), None);
    }

    #[test]
    fn fig1a_quick_has_four_series_rising() {
        let f = fig1a(RunOpts::quick());
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert!(!s.points.is_empty(), "{}", s.label);
            let ys = s.ys();
            assert!(
                ys.last().unwrap() > ys.first().unwrap(),
                "{} should rise: {ys:?}",
                s.label
            );
        }
        assert!(f.notes.is_empty(), "{:?}", f.notes);
    }

    #[test]
    fn fig3_quick_fpga_prefers_single_work_item() {
        let f = fig3(RunOpts::quick());
        let find = |label: &str| {
            f.series.iter().find(|s| s.label == label).expect("series").points.clone()
        };
        let nd = find("ndrange-kernel");
        let flat = find("kernel-loop-flat");
        let nested = find("kernel-loop-nested");
        // x = 1 is aocl, x = 2 sdaccel, 3 cpu, 4 gpu.
        assert!(flat[0].1 > nd[0].1, "aocl prefers the loop form");
        assert!(nested[1].1 > flat[1].1, "sdaccel prefers the nested form");
        assert!(nd[2].1 > flat[2].1, "cpu prefers ndrange");
        assert!(nd[3].1 > 100.0 * flat[3].1, "gpu collapses on one work-item");
    }

    #[test]
    fn fig4b_quick_native_vectorization_wins_at_16() {
        let f = fig4b(RunOpts::quick());
        let last = |label: &str| {
            f.series.iter().find(|s| s.label == label).expect("series").points.last().copied()
        };
        let v = last("vector-size").expect("vec point");
        let cu = last("num-compute-units").expect("cu point");
        assert!(v.1 > cu.1, "native vec {v:?} beats CU replication {cu:?}");
    }
}
