//! Command-line front end for the benchmark — the equivalent of the
//! original MP-STREAM's command-line tool, factored as a library so the
//! argument grammar and execution are unit-testable. The `mpstream`
//! binary in the workspace root is a thin wrapper.

use crate::checkpoint::Checkpoint;
use crate::config::BenchConfig;
use crate::engine::{
    default_jobs, env_fault_seed, env_fault_spec, env_retries, Engine, ResiliencePolicy,
    DEFAULT_FAULT_RETRIES, DEFAULT_FAULT_SEED,
};
use crate::report::Table;
use crate::runner::Runner;
use crate::space::ParamSpace;
use crate::sweep::{sweep_space, sweep_space_checkpointed};
use crate::trace::Trace;
use kernelgen::{
    AccessPattern, AoclOpts, ChannelSpec, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth,
    VendorOpts,
};
use mpcl::{FaultPlan, FaultSpec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use targets::TargetId;

/// What the request asks for: a one-shot benchmark run, a sweep over
/// vector widths and unroll factors, or an automated search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliMode {
    /// Run each requested kernel once at the given tuning point.
    Run,
    /// Sweep the cartesian product of `--vectors` x `--unrolls`.
    Sweep,
    /// Search the same product (all loop modes) with a `--strategy`
    /// instead of exhaustively, reporting best-config and Pareto front.
    Dse,
}

/// The search strategy a `dse` request names (`--strategy`). Each maps
/// to one of the [`crate::dse::Strategy`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DseStrategy {
    /// Exhaustive grid — every point, like a sweep.
    Grid,
    /// Seeded uniform random sample.
    Random,
    /// Steepest-ascent hill climbing with random restarts.
    Hill,
    /// Simulated annealing.
    Anneal,
    /// Genetic search (tournament selection + one-dim mutation).
    Genetic,
    /// Surrogate-model search (ridge regression over kernel features).
    Model,
}

impl DseStrategy {
    /// The `--strategy` spelling of this variant.
    pub fn label(&self) -> &'static str {
        match self {
            DseStrategy::Grid => "grid",
            DseStrategy::Random => "random",
            DseStrategy::Hill => "hill",
            DseStrategy::Anneal => "anneal",
            DseStrategy::Genetic => "genetic",
            DseStrategy::Model => "model",
        }
    }

    /// Parse a `--strategy` value.
    pub fn from_label(s: &str) -> Option<DseStrategy> {
        Some(match s {
            "grid" => DseStrategy::Grid,
            "random" => DseStrategy::Random,
            "hill" => DseStrategy::Hill,
            "anneal" => DseStrategy::Anneal,
            "genetic" => DseStrategy::Genetic,
            "model" => DseStrategy::Model,
            _ => return None,
        })
    }
}

/// The `--dse-seed` default: searches are deterministic even when no
/// seed is given. (42 is also the seed the CI smoke job's quality bound
/// is pinned against.)
pub const DEFAULT_DSE_SEED: u64 = 42;

/// A parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
pub struct CliRequest {
    /// Run or sweep (the `sweep` subcommand).
    pub mode: CliMode,
    /// Target to run on.
    pub target: TargetId,
    /// Kernels to run (default: all four).
    pub ops: Vec<StreamOp>,
    /// Array size in bytes.
    pub size_bytes: u64,
    /// Element type.
    pub dtype: DataType,
    /// Vector width.
    pub width: u32,
    /// Loop management.
    pub loop_mode: LoopMode,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Unroll factor.
    pub unroll: u32,
    /// Producer→consumer channel depth (`--channel-depth`); `None` keeps
    /// the classic single-stage kernels.
    pub channel_depth: Option<u32>,
    /// AOCL replication (SIMD, CUs).
    pub aocl: Option<(u32, u32)>,
    /// Timed repetitions.
    pub ntimes: u32,
    /// Worker threads for multi-kernel runs; `None` picks the default
    /// (`MPSTREAM_JOBS` or the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Skip functional validation.
    pub no_validate: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Append a deterministic ASCII chart to sweep/dse reports.
    pub chart: bool,
    /// Print the generated OpenCL kernel source instead of running.
    pub show_kernel: bool,
    /// Vector widths swept in sweep mode.
    pub widths: Vec<u32>,
    /// Unroll factors swept in sweep mode.
    pub unrolls: Vec<u32>,
    /// Fault-injection spec (`--faults`; falls back to `MPSTREAM_FAULTS`).
    pub faults: Option<FaultSpec>,
    /// Fault-plan seed (`--fault-seed`; falls back to
    /// `MPSTREAM_FAULT_SEED`, then [`DEFAULT_FAULT_SEED`]).
    pub fault_seed: Option<u64>,
    /// Per-config retry budget (`--retries`; falls back to
    /// `MPSTREAM_RETRIES`, then [`DEFAULT_FAULT_RETRIES`] when faults are
    /// enabled, else 0).
    pub retries: Option<u32>,
    /// Per-config deadline bounding retries, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Search strategy for the `dse` subcommand.
    pub strategy: DseStrategy,
    /// Evaluation budget for the `dse` subcommand (`None` picks a
    /// strategy-appropriate default; see [`dse_budget`]).
    pub budget: Option<usize>,
    /// Seed for the `dse` search (default [`DEFAULT_DSE_SEED`]).
    pub dse_seed: Option<u64>,
    /// Record finished sweep points to this JSONL checkpoint file.
    pub checkpoint: Option<PathBuf>,
    /// Skip sweep points already present in `--checkpoint`.
    pub resume: bool,
    /// Write a Chrome `trace_event` JSON trace of the run here.
    pub trace: Option<PathBuf>,
}

impl Default for CliRequest {
    fn default() -> Self {
        CliRequest {
            mode: CliMode::Run,
            target: TargetId::Cpu,
            ops: StreamOp::ALL.to_vec(),
            size_bytes: 4 << 20,
            dtype: DataType::I32,
            width: 1,
            loop_mode: LoopMode::NdRange,
            pattern: AccessPattern::Contiguous,
            unroll: 1,
            channel_depth: None,
            aocl: None,
            ntimes: 5,
            jobs: None,
            no_validate: false,
            csv: false,
            chart: false,
            show_kernel: false,
            widths: vec![1, 2, 4, 8, 16],
            unrolls: vec![1],
            faults: None,
            fault_seed: None,
            retries: None,
            deadline_ms: None,
            strategy: DseStrategy::Model,
            budget: None,
            dse_seed: None,
            checkpoint: None,
            resume: false,
            trace: None,
        }
    }
}

/// The usage string printed on `--help` or a parse error.
pub const USAGE: &str = "\
usage: mpstream [sweep|dse|bench-self] [options]
  sweep                             sweep --vectors x --unrolls instead of
                                    running each kernel once
  dse                               search the sweep space (all loop modes)
                                    with --strategy instead of exhaustively,
                                    reporting the best config and the
                                    bandwidth-vs-logic Pareto front
  bench-self                        benchmark the simulator itself (fast vs
                                    reference slow path points/sec; see
                                    mpstream bench-self --help)
  --target <aocl|sdaccel|cpu|gpu>   device to run on (default cpu)
  --kernel <name>                   kernel (repeatable; default the four
                                    STREAM ops). Names: copy, scale, add,
                                    triad, gups, ptrans, dgemm
  --ops <a,b,..>                    comma-separated kernel list — same
                                    names as --kernel (e.g. gups,ptrans)
  --size <N[K|M|G]>                 bytes per array (default 4M)
  --dtype <int|double>              element type (default int)
  --vector <1|2|4|8|16>             vectorization width (default 1)
  --loop <ndrange|flat|nested>      loop management (default ndrange;
                                    FPGAs default to flat)
  --pattern <contig|colmajor|strideN>  access pattern (default contig)
  --unroll <N>                      unroll factor (default 1)
  --channel-depth <N>               split each kernel into a producer ->
                                    consumer pair joined by a channel
                                    (AOCL) / pipe (SDAccel) of N elements;
                                    AOCL fuses depth 0 back to one stage,
                                    SDAccel requires a power of two
  --simd <N>                        AOCL num_simd_work_items
  --compute-units <N>               AOCL num_compute_units
  --ntimes <N>                      timed repetitions (default 5)
  --jobs <N>                        worker threads for multi-kernel runs
                                    (default: MPSTREAM_JOBS env var, else
                                    the machine's available parallelism)
  --no-validate                     skip STREAM-style result validation
  --csv                             CSV output
  --chart                           sweep/dse mode: append an ASCII chart
                                    (bandwidth by vector width, or search
                                    convergence) to the report
  --show-kernel                     print the generated OpenCL kernel
  --list-devices                    list the simulated platforms
  --vectors <a,b,..>                sweep mode: vector widths to sweep
                                    (default 1,2,4,8,16)
  --unrolls <a,b,..>                sweep mode: unroll factors to sweep
                                    (default 1)
  --faults <spec>                   inject deterministic faults, e.g.
                                    build=0.2,timeout=0.1,lost=0.05,bitflip=0.01
                                    (default: MPSTREAM_FAULTS env var)
  --fault-seed <N>                  fault-plan seed, decimal or 0x-hex
                                    (default: MPSTREAM_FAULT_SEED, else 0x5EED)
  --retries <N>                     per-config retry budget for transient
                                    faults (default: MPSTREAM_RETRIES, else 3
                                    when faults are on, else 0)
  --deadline-ms <N>                 per-config deadline bounding retries
  --strategy <name>                 dse mode: grid|random|hill|anneal|
                                    genetic|model (default model)
  --budget <N>                      dse mode: evaluation budget (default:
                                    the whole space for grid, else
                                    ~a tenth of it)
  --dse-seed <N>                    dse mode: search seed, decimal or
                                    0x-hex (default 42)
  --checkpoint <path>               sweep/dse mode: record finished points
                                    to a JSONL file as workers complete
  --resume                          sweep/dse mode: skip points already in
                                    the --checkpoint file
  --trace <file>                    write a Chrome trace_event JSON trace
                                    (open with chrome://tracing or Perfetto;
                                    MPSTREAM_TRACE_CANONICAL=1 writes the
                                    canonical jobs-invariant form)
  --help                            this text";

/// Parse a size argument like `4M`, `512K`, `1G`, `8192`.
pub fn parse_size(s: &str) -> Result<u64, String> {
    let (num, mult) = match s.char_indices().last() {
        Some((i, 'K')) | Some((i, 'k')) => (&s[..i], 1u64 << 10),
        Some((i, 'M')) | Some((i, 'm')) => (&s[..i], 1u64 << 20),
        Some((i, 'G')) | Some((i, 'g')) => (&s[..i], 1u64 << 30),
        _ => (s, 1),
    };
    // Allow decimal MB-style values like 0.25M.
    if let Ok(f) = num.parse::<f64>() {
        if f > 0.0 {
            return Ok(if mult == 1 {
                f.round() as u64
            } else {
                (f * mult as f64).round() as u64
            });
        }
    }
    Err(format!("invalid size '{s}' (try 4M, 512K, 1G){}", ""))
}

/// Parse a comma-separated list of positive integers (`--vectors`,
/// `--unrolls`).
fn parse_u32_list(v: &str, flag: &str) -> Result<Vec<u32>, String> {
    let parsed: Result<Vec<u32>, _> = v.split(',').map(|t| t.trim().parse::<u32>()).collect();
    match parsed {
        Ok(list) if !list.is_empty() && list.iter().all(|&n| n > 0) => Ok(list),
        _ => Err(format!(
            "invalid {flag} '{v}' (comma-separated positive integers)"
        )),
    }
}

/// Parse a u64 that may be written in decimal or `0x`-prefixed hex.
fn parse_u64(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Parse the full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Option<CliRequest>, String> {
    let mut req = CliRequest::default();
    let mut ops: Vec<StreamOp> = Vec::new();
    let mut loop_set = false;
    let mut strategy_set = false;
    // The optional leading subcommand.
    let args = match args.first().map(String::as_str) {
        Some("sweep") => {
            req.mode = CliMode::Sweep;
            &args[1..]
        }
        Some("dse") => {
            req.mode = CliMode::Dse;
            &args[1..]
        }
        _ => args,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--list-devices" => {
                req.show_kernel = false;
                req.ops.clear();
                // Marker handled by the binary via `ops.is_empty()` is
                // too subtle; use an explicit sentinel instead.
                return Ok(Some(CliRequest { ntimes: 0, ..req }));
            }
            "--target" => {
                let v = need(&mut it, "--target")?;
                req.target =
                    TargetId::from_label(&v).ok_or_else(|| format!("unknown target '{v}'"))?;
            }
            "--kernel" => {
                let v = need(&mut it, "--kernel")?;
                ops.push(StreamOp::parse(&v)?);
            }
            "--ops" => {
                let v = need(&mut it, "--ops")?;
                for name in v.split(',') {
                    ops.push(StreamOp::parse(name.trim())?);
                }
            }
            "--size" => req.size_bytes = parse_size(&need(&mut it, "--size")?)?,
            "--dtype" => {
                req.dtype = match need(&mut it, "--dtype")?.as_str() {
                    "int" | "i32" => DataType::I32,
                    "double" | "f64" => DataType::F64,
                    other => return Err(format!("unknown dtype '{other}'")),
                }
            }
            "--vector" => {
                req.width = need(&mut it, "--vector")?
                    .parse()
                    .map_err(|_| "invalid --vector".to_string())?;
            }
            "--loop" => {
                loop_set = true;
                req.loop_mode = match need(&mut it, "--loop")?.as_str() {
                    "ndrange" => LoopMode::NdRange,
                    "flat" => LoopMode::SingleWorkItemFlat,
                    "nested" => LoopMode::SingleWorkItemNested,
                    other => return Err(format!("unknown loop mode '{other}'")),
                };
            }
            "--pattern" => {
                let v = need(&mut it, "--pattern")?;
                req.pattern = if v == "contig" {
                    AccessPattern::Contiguous
                } else if v == "colmajor" {
                    AccessPattern::ColMajor { cols: None }
                } else if let Some(n) = v.strip_prefix("stride") {
                    AccessPattern::Strided {
                        stride: n.parse().map_err(|_| format!("bad stride in '{v}'"))?,
                    }
                } else {
                    return Err(format!("unknown pattern '{v}'"));
                };
            }
            "--unroll" => {
                req.unroll = need(&mut it, "--unroll")?
                    .parse()
                    .map_err(|_| "invalid --unroll".to_string())?;
            }
            "--channel-depth" => {
                req.channel_depth = Some(
                    need(&mut it, "--channel-depth")?
                        .parse()
                        .map_err(|_| "invalid --channel-depth".to_string())?,
                );
            }
            "--simd" => {
                let n = need(&mut it, "--simd")?
                    .parse()
                    .map_err(|_| "invalid --simd".to_string())?;
                let (_, cu) = req.aocl.unwrap_or((1, 1));
                req.aocl = Some((n, cu));
            }
            "--compute-units" => {
                let n = need(&mut it, "--compute-units")?
                    .parse()
                    .map_err(|_| "invalid --compute-units".to_string())?;
                let (simd, _) = req.aocl.unwrap_or((1, 1));
                req.aocl = Some((simd, n));
            }
            "--ntimes" => {
                req.ntimes = need(&mut it, "--ntimes")?
                    .parse()
                    .map_err(|_| "invalid --ntimes".to_string())?;
            }
            "--jobs" => {
                let n: usize = need(&mut it, "--jobs")?
                    .parse()
                    .map_err(|_| "invalid --jobs".to_string())?;
                if n == 0 {
                    return Err("--jobs needs at least 1".to_string());
                }
                req.jobs = Some(n);
            }
            "--no-validate" => req.no_validate = true,
            "--csv" => req.csv = true,
            "--chart" => req.chart = true,
            "--show-kernel" => req.show_kernel = true,
            "--vectors" => req.widths = parse_u32_list(&need(&mut it, "--vectors")?, "--vectors")?,
            "--unrolls" => req.unrolls = parse_u32_list(&need(&mut it, "--unrolls")?, "--unrolls")?,
            "--faults" => req.faults = Some(FaultSpec::parse(&need(&mut it, "--faults")?)?),
            "--fault-seed" => {
                let v = need(&mut it, "--fault-seed")?;
                req.fault_seed =
                    Some(parse_u64(&v).ok_or_else(|| format!("invalid --fault-seed '{v}'"))?);
            }
            "--retries" => {
                req.retries = Some(
                    need(&mut it, "--retries")?
                        .parse()
                        .map_err(|_| "invalid --retries".to_string())?,
                );
            }
            "--deadline-ms" => {
                let v = need(&mut it, "--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| "invalid --deadline-ms".to_string())?;
                if ms == 0 {
                    return Err("--deadline-ms needs at least 1".to_string());
                }
                req.deadline_ms = Some(ms);
            }
            "--strategy" => {
                let v = need(&mut it, "--strategy")?;
                req.strategy =
                    DseStrategy::from_label(&v).ok_or_else(|| format!("unknown strategy '{v}'"))?;
                strategy_set = true;
            }
            "--budget" => {
                let n: usize = need(&mut it, "--budget")?
                    .parse()
                    .map_err(|_| "invalid --budget".to_string())?;
                if n == 0 {
                    return Err("--budget needs at least 1".to_string());
                }
                req.budget = Some(n);
            }
            "--dse-seed" => {
                let v = need(&mut it, "--dse-seed")?;
                req.dse_seed =
                    Some(parse_u64(&v).ok_or_else(|| format!("invalid --dse-seed '{v}'"))?);
            }
            "--checkpoint" => req.checkpoint = Some(PathBuf::from(need(&mut it, "--checkpoint")?)),
            "--resume" => req.resume = true,
            "--trace" => req.trace = Some(PathBuf::from(need(&mut it, "--trace")?)),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !ops.is_empty() {
        req.ops = ops;
    }
    if req.resume && req.checkpoint.is_none() {
        return Err("--resume needs --checkpoint <path>".to_string());
    }
    if req.checkpoint.is_some() && !matches!(req.mode, CliMode::Sweep | CliMode::Dse) {
        return Err(
            "--checkpoint/--resume only apply to the sweep and dse subcommands".to_string(),
        );
    }
    if (strategy_set || req.budget.is_some() || req.dse_seed.is_some()) && req.mode != CliMode::Dse
    {
        return Err("--strategy/--budget/--dse-seed only apply to the dse subcommand".to_string());
    }
    if req.chart && !matches!(req.mode, CliMode::Sweep | CliMode::Dse) {
        return Err("--chart only applies to the sweep and dse subcommands".to_string());
    }
    // FPGAs default to their sensible loop form unless told otherwise.
    if !loop_set && req.target.is_fpga() {
        req.loop_mode = LoopMode::SingleWorkItemFlat;
    }
    Ok(Some(req))
}

/// Resolve the fault plan and resilience policy for a request: explicit
/// flags win, then the `MPSTREAM_FAULTS` / `MPSTREAM_FAULT_SEED` /
/// `MPSTREAM_RETRIES` environment, then defaults (retries default to
/// [`DEFAULT_FAULT_RETRIES`] only when faults are enabled — a fault-free
/// run has nothing transient to retry).
pub fn resilience(req: &CliRequest) -> (Option<Arc<FaultPlan>>, ResiliencePolicy) {
    let spec = req.faults.or_else(env_fault_spec);
    let plan = spec.map(|s| {
        let seed = req
            .fault_seed
            .or_else(env_fault_seed)
            .unwrap_or(DEFAULT_FAULT_SEED);
        Arc::new(FaultPlan::new(s, seed))
    });
    let retries = req
        .retries
        .or_else(env_retries)
        .unwrap_or(if plan.is_some() {
            DEFAULT_FAULT_RETRIES
        } else {
            0
        });
    let mut policy = ResiliencePolicy::retrying(retries);
    if let Some(ms) = req.deadline_ms {
        policy = policy.with_deadline(Duration::from_millis(ms));
    }
    (plan, policy)
}

/// The trace sink a request asks for: an armed [`Trace`] when `--trace`
/// was given, else `None` (tracing is then a no-op throughout).
fn trace_sink(req: &CliRequest) -> Option<Arc<Trace>> {
    req.trace.as_ref().map(|_| Trace::new())
}

/// Write the collected trace where `--trace` pointed. With
/// `MPSTREAM_TRACE_CANONICAL=1` in the environment the canonical form
/// (virtual lanes only, sorted) is written instead — byte-identical
/// across `--jobs` counts, which is what the CI determinism job diffs.
fn write_trace(req: &CliRequest, trace: Option<&Arc<Trace>>) -> Result<(), String> {
    let (Some(path), Some(t)) = (req.trace.as_ref(), trace) else {
        return Ok(());
    };
    let canonical = crate::env::flag_enabled("MPSTREAM_TRACE_CANONICAL");
    let json = if canonical {
        t.canonical_chrome_json()
    } else {
        t.to_chrome_json()
    };
    std::fs::write(path, json).map_err(|e| format!("trace {}: {e}", path.display()))
}

/// Build the kernel configuration for one op of the request.
pub fn kernel_config(req: &CliRequest, op: StreamOp) -> Result<KernelConfig, String> {
    let mut cfg = KernelConfig::baseline(op, req.size_bytes / req.dtype.word_bytes());
    cfg.dtype = req.dtype;
    cfg.vector_width = VectorWidth::new(req.width)?;
    cfg.loop_mode = req.loop_mode;
    cfg.pattern = req.pattern;
    cfg.unroll = req.unroll;
    cfg.channel = req.channel_depth.map(|depth| ChannelSpec { depth });
    if let Some((simd, cu)) = req.aocl {
        cfg.reqd_work_group_size = simd > 1;
        cfg.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: simd,
            num_compute_units: cu,
        });
    }
    Ok(cfg)
}

/// Execute a request and render the report (the binary prints this).
pub fn execute(req: &CliRequest) -> Result<String, String> {
    if req.show_kernel {
        let cfg = kernel_config(req, req.ops.first().copied().unwrap_or(StreamOp::Copy))?;
        return Ok(kernelgen::generate_source(&cfg));
    }
    if req.mode == CliMode::Sweep {
        return execute_sweep(req);
    }
    if req.mode == CliMode::Dse {
        return execute_dse(req);
    }

    let info = Runner::for_target(req.target).device().info().clone();
    let mut table = Table::new(&["kernel", "bytes/iter", "best GB/s", "avg ms", "valid"]);
    let mut failures = Vec::new();

    let mut work = Vec::with_capacity(req.ops.len());
    for &op in &req.ops {
        let cfg = kernel_config(req, op)?;
        work.push(bench_protocol(req, cfg));
    }

    // One kernel per work item, fanned across the engine's pool; the
    // outcomes come back in request order regardless of --jobs.
    let trace = trace_sink(req);
    let engine = build_engine(req, trace.clone());
    for (op, outcome) in req.ops.iter().zip(engine.run_list(req.target, &work)) {
        match outcome.result {
            Ok(m) => {
                table.row(&[
                    op.name().to_string(),
                    m.bytes_moved.to_string(),
                    format!("{:.3}", m.gbps()),
                    format!("{:.4}", m.avg_wall_ns / 1e6),
                    m.validated
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "skipped".into()),
                ]);
            }
            Err(e) => failures.push(format!("{}: {e}", op.name())),
        }
    }

    let mut out = format!(
        "MP-STREAM on {} (peak {:.1} GB/s)\narray size {} bytes x {:?}, {} repetitions\n\n",
        info.name, info.peak_gbps, req.size_bytes, req.dtype, req.ntimes
    );
    out.push_str(&if req.csv {
        table.to_csv()
    } else {
        table.to_text()
    });
    for f in failures {
        out.push_str(&format!("FAILED {f}\n"));
    }
    write_trace(req, trace.as_ref())?;
    Ok(out)
}

/// The parameter space a sweep request covers: the cartesian product of
/// the requested ops, `--vectors` and `--unrolls` at the fixed
/// size/dtype/loop/pattern. Shared by the offline CLI sweep and the
/// serve daemon so a submitted job sees exactly the points the CLI
/// would.
pub fn sweep_param_space(req: &CliRequest) -> ParamSpace {
    ParamSpace::new()
        .ops(req.ops.iter().copied())
        .sizes_bytes([req.size_bytes])
        .dtypes([req.dtype])
        .widths(req.widths.iter().copied())
        .patterns([req.pattern])
        .loop_modes([req.loop_mode])
        .unrolls(req.unrolls.iter().copied())
        .channel_depths([req.channel_depth])
}

/// The measurement protocol (repetitions, validation) a request applies
/// to one configuration.
pub fn bench_protocol(req: &CliRequest, cfg: KernelConfig) -> BenchConfig {
    BenchConfig::new(cfg)
        .with_ntimes(req.ntimes)
        .with_validation(
            !req.no_validate && req.size_bytes <= BenchConfig::AUTO_VALIDATE_LIMIT_BYTES,
        )
}

/// Build the execution engine a request asks for: `--jobs` workers, the
/// resolved resilience policy and fault plan, and the given trace sink.
pub fn build_engine(req: &CliRequest, trace: Option<Arc<Trace>>) -> Engine {
    let (plan, policy) = resilience(req);
    Engine::with_jobs(req.jobs.unwrap_or_else(default_jobs))
        .with_policy(policy)
        .with_faults(plan)
        .with_trace(trace)
}

/// Run the sweep a request describes on an already-built engine,
/// recording points to `ckpt` as workers complete when one is given.
/// Factored out of [`execute`] so the serve daemon can run the same
/// sweep (same space, same protocol) against its own per-job checkpoint
/// and cancel token.
pub fn run_sweep(
    engine: &Engine,
    req: &CliRequest,
    ckpt: Option<&Checkpoint>,
) -> crate::sweep::SweepResult {
    let space = sweep_param_space(req);
    let protocol = |cfg: KernelConfig| bench_protocol(req, cfg);
    match ckpt {
        Some(ckpt) => sweep_space_checkpointed(engine, req.target, &space, protocol, ckpt),
        None => sweep_space(engine, req.target, &space, protocol),
    }
}

/// Render the sweep report text for a result — the exact bytes the
/// offline `mpstream sweep` prints, so a served job's fetched report can
/// be compared byte-for-byte against a local run.
pub fn render_sweep_report(req: &CliRequest, result: &crate::sweep::SweepResult) -> String {
    let info = Runner::for_target(req.target).device().info().clone();
    let mut out = format!(
        "MP-STREAM sweep on {} ({} points, {} bytes x {:?}, {} repetitions)\n\n",
        info.name,
        result.points.len(),
        req.size_bytes,
        req.dtype,
        req.ntimes
    );
    out.push_str(&if req.csv {
        result.table().to_csv()
    } else {
        result.table().to_text()
    });
    out.push('\n');
    out.push_str(&result.summary().to_text());
    if let Some(best) = result.best() {
        let k = &best.config;
        if let Some(gbps) = best.gbps() {
            out.push_str(&format!(
                "\nbest: {} v{} u{} -> {:.2} GB/s\n",
                k.op.name(),
                k.vector_width.get(),
                k.unroll,
                gbps
            ));
        }
    }
    // Per-config execution metrics last: tests that compare the point
    // table across fault plans truncate at the summary, and the cache
    // column here is a scheduling fact that may differ across runs.
    out.push('\n');
    out.push_str(&if req.csv {
        result.metrics_table().to_csv()
    } else {
        result.metrics_table().to_text()
    });
    if req.chart {
        out.push('\n');
        out.push_str(&sweep_chart(result));
    }
    out
}

/// The `--chart` panel of a sweep report: best sustained bandwidth per
/// vector width, one series per kernel — the same projection the
/// paper's bandwidth figures plot. Built from the result's point list
/// (deterministic at any `--jobs`), never from wall clocks, so the
/// rendering is byte-stable across runs.
pub fn sweep_chart(result: &crate::sweep::SweepResult) -> String {
    use std::collections::BTreeMap;
    let mut per_op: BTreeMap<&'static str, BTreeMap<u32, f64>> = BTreeMap::new();
    for o in &result.points {
        if let Ok(m) = &o.result {
            let best = per_op
                .entry(o.config.op.name())
                .or_default()
                .entry(o.config.vector_width.get())
                .or_insert(f64::NEG_INFINITY);
            *best = best.max(m.gbps());
        }
    }
    let mut chart = crate::chart::Chart::new("best GB/s by vector width")
        .size(64, 12)
        .x_scale(crate::chart::Scale::Log2)
        .y_scale(crate::chart::Scale::Log10)
        .x_label("vector width")
        .y_label("GB/s");
    for (op, widths) in per_op {
        let points: Vec<(f64, f64)> = widths.into_iter().map(|(w, g)| (f64::from(w), g)).collect();
        chart = chart.line(crate::report::Series::new(op, points));
    }
    chart.render()
}

/// The `--chart` panel of a DSE report: the search convergence curve —
/// best bandwidth found so far, by evaluation index in strategy visit
/// order (deterministic for a fixed seed at any `--jobs`).
pub fn dse_chart(result: &crate::dse::DseResult) -> String {
    let mut best = f64::NEG_INFINITY;
    let mut points = Vec::new();
    for (i, p) in result.trace.iter().enumerate() {
        if let Ok(m) = &p.result {
            best = best.max(m.gbps());
        }
        if best.is_finite() {
            points.push(((i + 1) as f64, best));
        }
    }
    crate::chart::Chart::new("search convergence: best GB/s by evaluation")
        .size(64, 12)
        .y_scale(crate::chart::Scale::Log10)
        .x_label("evaluation")
        .y_label("best GB/s")
        .line(crate::report::Series::new("best-so-far", points))
        .render()
}

/// Execute a sweep request: the cartesian product of the requested ops,
/// `--vectors` and `--unrolls` at the fixed size/dtype/loop/pattern,
/// fanned across the engine's pool — optionally checkpointed so a killed
/// sweep can `--resume` without redoing finished points.
fn execute_sweep(req: &CliRequest) -> Result<String, String> {
    let trace = trace_sink(req);
    let engine = build_engine(req, trace.clone());
    let result = match &req.checkpoint {
        Some(path) => {
            let ckpt = if req.resume {
                Checkpoint::resume(path)
            } else {
                Checkpoint::create(path)
            }
            .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
            run_sweep(&engine, req, Some(&ckpt))
        }
        None => run_sweep(&engine, req, None),
    };
    let out = render_sweep_report(req, &result);
    write_trace(req, trace.as_ref())?;
    Ok(out)
}

/// The parameter space a `dse` request searches: the sweep product, but
/// over **all three** loop modes — loop management is one of the
/// dimensions a search is supposed to settle, not an input.
pub fn dse_param_space(req: &CliRequest) -> ParamSpace {
    sweep_param_space(req).loop_modes(LoopMode::ALL)
}

/// The resolved evaluation budget of a `dse` request over a space of
/// `space_len` valid points: an explicit `--budget` wins (capped at the
/// space), grid always covers everything, and the other strategies
/// default to a tenth of the space (at least 4 points).
pub fn dse_budget(req: &CliRequest, space_len: usize) -> usize {
    match (req.budget, req.strategy) {
        (Some(b), _) => b.min(space_len),
        (None, DseStrategy::Grid) => space_len,
        (None, _) => (space_len / 10).max(4).min(space_len),
    }
}

/// Build the [`crate::dse::Strategy`] a request names, over `space`.
pub fn build_strategy(req: &CliRequest, space: &ParamSpace) -> Box<dyn crate::dse::Strategy> {
    use crate::dse::{
        AnnealSearch, ExhaustiveSearch, GeneticSearch, HillClimbSearch, ModelSearch, RandomSearch,
    };
    let seed = req.dse_seed.unwrap_or(DEFAULT_DSE_SEED);
    let budget = dse_budget(req, space.configs().len());
    match req.strategy {
        DseStrategy::Grid => Box::new(ExhaustiveSearch::new(space)),
        DseStrategy::Random => Box::new(RandomSearch::new(space, budget, seed)),
        DseStrategy::Hill => Box::new(HillClimbSearch::new(space, seed)),
        DseStrategy::Anneal => Box::new(AnnealSearch::new(space, budget, seed, 8.0)),
        DseStrategy::Genetic => Box::new(GeneticSearch::new(space, budget, seed)),
        DseStrategy::Model => Box::new(ModelSearch::new(space, budget, seed)),
    }
}

/// Run the search a `dse` request describes on an already-built engine,
/// recording points to `ckpt` when one is given. Factored out of
/// [`execute`] so the serve daemon can run the same search (same space,
/// same strategy, same seed) against its own per-job checkpoint and
/// cancel token.
pub fn run_dse(
    engine: &Engine,
    req: &CliRequest,
    ckpt: Option<&Checkpoint>,
) -> crate::dse::DseResult {
    let space = dse_param_space(req);
    let n = space.configs().len();
    let mut strategy = build_strategy(req, &space);
    let mut result = crate::dse::search_target(
        engine,
        req.target,
        strategy.as_mut(),
        dse_budget(req, n),
        |cfg| bench_protocol(req, cfg),
        ckpt,
    );
    result.space_size = n;
    result
}

/// Render the DSE report text for a result — the exact bytes the offline
/// `mpstream dse` prints, byte-identical at any `--jobs`, so a served
/// job's fetched report can be compared against a local run.
pub fn render_dse_report(req: &CliRequest, result: &crate::dse::DseResult) -> String {
    let info = Runner::for_target(req.target).device().info().clone();
    let mut out = format!(
        "MP-STREAM dse on {} ({} strategy, evaluated {} of {} points, {} bytes x {:?}, {} repetitions)\n",
        info.name,
        result.strategy,
        result.evaluations(),
        result.space_size,
        req.size_bytes,
        req.dtype,
        req.ntimes
    );
    if result.resumed > 0 || result.failures > 0 || result.cancelled {
        out.push_str(&format!(
            "{} resumed, {} failed{}\n",
            result.resumed,
            result.failures,
            if result.cancelled { ", cancelled" } else { "" }
        ));
    }
    out.push('\n');

    let mut t = Table::new(&["config", "GB/s", "logic", "retries", "note"]);
    for p in &result.trace {
        let cfg = crate::report::config_label(&p.config);
        let retries = p.retries.to_string();
        match &p.result {
            Ok(m) => t.row(&[
                cfg,
                format!("{:.2}", m.gbps()),
                m.resources
                    .map(|r| r.logic.to_string())
                    .unwrap_or_else(|| "-".into()),
                retries,
                String::new(),
            ]),
            Err(e) => {
                let mut note = e.to_string().replace('\n', " | ");
                note.truncate(90);
                t.row(&[cfg, "-".into(), "-".into(), retries, note])
            }
        };
    }
    out.push_str(&if req.csv { t.to_csv() } else { t.to_text() });

    if let Some(best) = &result.best {
        if let Some(gbps) = best.gbps() {
            let k = &best.config;
            out.push_str(&format!(
                "\nbest: {} v{} u{} -> {:.2} GB/s\n",
                k.op.name(),
                k.vector_width.get(),
                k.unroll,
                gbps
            ));
        }
    }

    let pareto = result.pareto_table();
    if !pareto.is_empty() {
        out.push_str("\npareto front (bandwidth vs logic):\n");
        out.push_str(&if req.csv {
            pareto.to_csv()
        } else {
            pareto.to_text()
        });
    }
    if req.chart {
        out.push('\n');
        out.push_str(&dse_chart(result));
    }
    out
}

/// Execute a `dse` request: build the strategy, drive it through the
/// engine batch by batch, optionally checkpointed so a killed search can
/// `--resume` along the same visit order.
fn execute_dse(req: &CliRequest) -> Result<String, String> {
    let trace = trace_sink(req);
    let engine = build_engine(req, trace.clone());
    let result = match &req.checkpoint {
        Some(path) => {
            let ckpt = if req.resume {
                Checkpoint::resume(path)
            } else {
                Checkpoint::create(path)
            }
            .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
            run_dse(&engine, req, Some(&ckpt))
        }
        None => run_dse(&engine, req, None),
    };
    let out = render_dse_report(req, &result);
    write_trace(req, trace.as_ref())?;
    Ok(out)
}

/// Render the device listing for `--list-devices`.
pub fn list_devices() -> String {
    let mut t = Table::new(&["platform", "device", "type", "peak GB/s", "global mem"]);
    for p in targets::standard_platforms() {
        for d in p.devices() {
            let i = d.info();
            t.row(&[
                p.name().to_string(),
                i.name.clone(),
                format!("{:?}", i.device_type),
                format!("{:.1}", i.peak_gbps),
                format!("{} GiB", i.global_mem_bytes >> 30),
            ]);
        }
    }
    t.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<CliRequest>, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4M").unwrap(), 4 << 20);
        assert_eq!(parse_size("512K").unwrap(), 512 << 10);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert_eq!(parse_size("8192").unwrap(), 8192);
        assert_eq!(parse_size("0.25M").unwrap(), 256 << 10);
        assert!(parse_size("x").is_err());
        assert!(parse_size("-4M").is_err());
    }

    #[test]
    fn defaults() {
        let r = parse(&[]).unwrap().unwrap();
        assert_eq!(r.target, TargetId::Cpu);
        assert_eq!(r.ops.len(), 4);
        assert_eq!(r.size_bytes, 4 << 20);
    }

    #[test]
    fn full_flag_set() {
        let r = parse(&[
            "--target",
            "aocl",
            "--kernel",
            "triad",
            "--size",
            "16M",
            "--dtype",
            "double",
            "--vector",
            "8",
            "--loop",
            "nested",
            "--pattern",
            "stride4",
            "--unroll",
            "2",
            "--simd",
            "2",
            "--compute-units",
            "4",
            "--ntimes",
            "7",
            "--no-validate",
            "--csv",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(r.target, TargetId::FpgaAocl);
        assert_eq!(r.ops, vec![StreamOp::Triad]);
        assert_eq!(r.size_bytes, 16 << 20);
        assert_eq!(r.dtype, DataType::F64);
        assert_eq!(r.width, 8);
        assert_eq!(r.loop_mode, LoopMode::SingleWorkItemNested);
        assert_eq!(r.pattern, AccessPattern::Strided { stride: 4 });
        assert_eq!(r.aocl, Some((2, 4)));
        assert_eq!(r.ntimes, 7);
        assert!(r.no_validate && r.csv);
    }

    #[test]
    fn fpga_defaults_to_flat_loop() {
        let r = parse(&["--target", "sdaccel"]).unwrap().unwrap();
        assert_eq!(r.loop_mode, LoopMode::SingleWorkItemFlat);
        let r = parse(&["--target", "sdaccel", "--loop", "ndrange"])
            .unwrap()
            .unwrap();
        assert_eq!(r.loop_mode, LoopMode::NdRange);
    }

    #[test]
    fn chart_flag_is_sweep_and_dse_only() {
        assert!(parse(&["sweep", "--chart"]).unwrap().unwrap().chart);
        assert!(parse(&["dse", "--chart"]).unwrap().unwrap().chart);
        assert!(parse(&["--chart"]).is_err(), "run mode has no chart");
    }

    #[test]
    fn chart_report_is_identical_across_jobs_and_appends_a_chart() {
        let args = [
            "sweep",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--vectors",
            "1,4",
            "--chart",
        ];
        let mut serial = parse(&args).unwrap().unwrap();
        serial.jobs = Some(1);
        let mut wide = parse(&args).unwrap().unwrap();
        wide.jobs = Some(4);
        let a = execute(&serial).unwrap();
        let b = execute(&wide).unwrap();
        assert_eq!(a, b, "--chart output must be jobs-invariant");
        assert!(a.contains("best GB/s by vector width"), "{a}");
        assert!(a.contains("x: 2^0.0 .. 2^2.0 (log2)"), "{a}");
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().unwrap().jobs, None);
        assert_eq!(parse(&["--jobs", "2"]).unwrap().unwrap().jobs, Some(2));
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn execute_is_identical_across_jobs() {
        let mut serial = parse(&["--size", "64K", "--ntimes", "1", "--jobs", "1"])
            .unwrap()
            .unwrap();
        serial.ops = StreamOp::ALL.to_vec();
        let parallel = CliRequest {
            jobs: Some(4),
            ..serial.clone()
        };
        assert_eq!(execute(&serial).unwrap(), execute(&parallel).unwrap());
    }

    #[test]
    fn help_returns_none() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
    }

    #[test]
    fn unknown_flags_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--target", "tpu"]).is_err());
        assert!(parse(&["--kernel", "fma"]).is_err());
        assert!(parse(&["--target"]).is_err(), "missing value");
    }

    #[test]
    fn ops_flag_parses_family_names_and_lists_valid_ones_on_error() {
        let r = parse(&["--ops", "gups,ptrans,dgemm"]).unwrap().unwrap();
        assert_eq!(
            r.ops,
            vec![
                StreamOp::RandomAccess,
                StreamOp::Ptrans,
                StreamOp::DgemmLite
            ]
        );
        // --kernel speaks the same vocabulary.
        let r = parse(&["--kernel", "gups"]).unwrap().unwrap();
        assert_eq!(r.ops, vec![StreamOp::RandomAccess]);
        // An unknown name fails, naming every valid op.
        let err = parse(&["--ops", "copy,warp"]).unwrap_err();
        for name in ["copy", "scale", "add", "triad", "gups", "ptrans", "dgemm"] {
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn channel_depth_flag_reaches_the_kernel_config() {
        let r = parse(&["--ops", "triad", "--channel-depth", "4"])
            .unwrap()
            .unwrap();
        assert_eq!(r.channel_depth, Some(4));
        let cfg = kernel_config(&r, StreamOp::Triad).unwrap();
        assert_eq!(cfg.channel, Some(ChannelSpec { depth: 4 }));
        assert!(parse(&["--channel-depth", "deep"]).is_err());
        // Default stays single-stage.
        assert_eq!(parse(&[]).unwrap().unwrap().channel_depth, None);
    }

    #[test]
    fn execute_runs_hpcc_kernels_with_channels() {
        let r = parse(&[
            "--ops",
            "gups,ptrans,dgemm",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--channel-depth",
            "8",
        ])
        .unwrap()
        .unwrap();
        let out = execute(&r).expect("runs");
        for name in ["gups", "ptrans", "dgemm"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("true"), "validated: {out}");
        assert!(!out.contains("false"), "all valid: {out}");
    }

    #[test]
    fn execute_runs_all_kernels_and_reports() {
        let mut r = parse(&["--size", "64K", "--ntimes", "1"]).unwrap().unwrap();
        r.ops = vec![StreamOp::Copy, StreamOp::Triad];
        let out = execute(&r).expect("runs");
        assert!(out.contains("copy"), "{out}");
        assert!(out.contains("triad"));
        assert!(out.contains("true"), "validated: {out}");
    }

    #[test]
    fn execute_reports_synthesis_failures() {
        let mut r = parse(&["--target", "aocl", "--vector", "16", "--unroll", "16"])
            .unwrap()
            .unwrap();
        r.ops = vec![StreamOp::Copy];
        let out = execute(&r).expect("report produced");
        assert!(out.contains("FAILED copy"), "{out}");
    }

    #[test]
    fn show_kernel_prints_source() {
        let r = parse(&["--show-kernel", "--kernel", "scale"])
            .unwrap()
            .unwrap();
        let out = execute(&r).expect("source");
        assert!(out.contains("__kernel void mp_scale"));
    }

    #[test]
    fn list_devices_names_all_platforms() {
        let out = list_devices();
        for name in ["Intel", "NVIDIA", "Altera", "Xilinx"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn sweep_subcommand_parses_dimensions_and_resilience_flags() {
        let r = parse(&[
            "sweep",
            "--kernel",
            "triad",
            "--vectors",
            "1,4,16",
            "--unrolls",
            "1,2",
            "--faults",
            "build=0.2,timeout=0.1",
            "--fault-seed",
            "0x5EED",
            "--retries",
            "5",
            "--deadline-ms",
            "250",
            "--checkpoint",
            "/tmp/ck.jsonl",
            "--resume",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(r.mode, CliMode::Sweep);
        assert_eq!(r.widths, vec![1, 4, 16]);
        assert_eq!(r.unrolls, vec![1, 2]);
        let spec = r.faults.expect("spec parsed");
        assert_eq!(spec.build, 0.2);
        assert_eq!(spec.timeout, 0.1);
        assert_eq!(r.fault_seed, Some(0x5EED));
        assert_eq!(r.retries, Some(5));
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.checkpoint, Some(PathBuf::from("/tmp/ck.jsonl")));
        assert!(r.resume);
    }

    #[test]
    fn sweep_flag_validation() {
        assert!(parse(&["sweep", "--vectors", ""]).is_err());
        assert!(parse(&["sweep", "--vectors", "1,0"]).is_err());
        assert!(parse(&["sweep", "--unrolls", "x"]).is_err());
        assert!(parse(&["sweep", "--faults", "build=2.0"]).is_err());
        assert!(parse(&["sweep", "--fault-seed", "zebra"]).is_err());
        assert!(parse(&["sweep", "--deadline-ms", "0"]).is_err());
        // --resume without a checkpoint path is meaningless.
        assert!(parse(&["sweep", "--resume"]).is_err());
        // Checkpointing only exists in sweep mode.
        assert!(parse(&["--checkpoint", "/tmp/ck.jsonl"]).is_err());
    }

    #[test]
    fn resilience_defaults_follow_fault_presence() {
        // Env-aware on purpose: the CI fault-injection job runs this
        // suite with MPSTREAM_FAULTS/MPSTREAM_RETRIES set, which is
        // exactly the fallback chain under test.
        let bare = parse(&[]).unwrap().unwrap();
        let (plan, policy) = resilience(&bare);
        match env_fault_spec() {
            None => {
                assert!(plan.is_none());
                assert_eq!(policy.max_retries, env_retries().unwrap_or(0));
            }
            Some(spec) => {
                let plan = plan.expect("env spec builds a plan");
                assert_eq!(plan.spec(), spec);
                assert_eq!(plan.seed(), env_fault_seed().unwrap_or(DEFAULT_FAULT_SEED));
            }
        }

        let faulty = parse(&["--faults", "build=0.3"]).unwrap().unwrap();
        let (plan, policy) = resilience(&faulty);
        let plan = plan.expect("plan built");
        assert_eq!(plan.spec().build, 0.3, "explicit spec beats env");
        assert_eq!(plan.seed(), env_fault_seed().unwrap_or(DEFAULT_FAULT_SEED));
        assert_eq!(
            policy.max_retries,
            env_retries().unwrap_or(DEFAULT_FAULT_RETRIES)
        );

        // Explicit flags always win, environment or not.
        let tuned = parse(&[
            "--faults",
            "build=0.3",
            "--fault-seed",
            "7",
            "--retries",
            "0",
        ])
        .unwrap()
        .unwrap();
        let (plan, policy) = resilience(&tuned);
        assert_eq!(plan.expect("plan built").seed(), 7);
        assert_eq!(policy.max_retries, 0);
        assert_eq!(policy.per_config_deadline, None);
    }

    #[test]
    fn dse_subcommand_parses_strategy_flags() {
        let r = parse(&[
            "dse",
            "--target",
            "aocl",
            "--strategy",
            "genetic",
            "--budget",
            "12",
            "--dse-seed",
            "0x5EED",
            "--checkpoint",
            "/tmp/dse.jsonl",
            "--resume",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(r.mode, CliMode::Dse);
        assert_eq!(r.strategy, DseStrategy::Genetic);
        assert_eq!(r.budget, Some(12));
        assert_eq!(r.dse_seed, Some(0x5EED));
        assert_eq!(r.checkpoint, Some(PathBuf::from("/tmp/dse.jsonl")));
        assert!(r.resume);
        // Default strategy is the surrogate model.
        let d = parse(&["dse"]).unwrap().unwrap();
        assert_eq!(d.strategy, DseStrategy::Model);
        assert_eq!(d.budget, None);
    }

    #[test]
    fn dse_flag_validation() {
        assert!(parse(&["dse", "--strategy", "simplex"]).is_err());
        assert!(parse(&["dse", "--budget", "0"]).is_err());
        assert!(parse(&["dse", "--dse-seed", "zebra"]).is_err());
        // dse-only flags are rejected outside the dse subcommand.
        assert!(parse(&["--strategy", "model"]).is_err());
        assert!(parse(&["sweep", "--budget", "5"]).is_err());
        assert!(parse(&["--dse-seed", "1"]).is_err());
        // But checkpointing works for dse like it does for sweep.
        assert!(parse(&["dse", "--checkpoint", "/tmp/ck.jsonl"]).is_ok());
    }

    #[test]
    fn dse_space_covers_all_loop_modes_and_budget_defaults() {
        let r = parse(&[
            "dse",
            "--target",
            "aocl",
            "--kernel",
            "copy",
            "--kernel",
            "triad",
            "--vectors",
            "1,2,4,8,16",
            "--unrolls",
            "1,2,4",
        ])
        .unwrap()
        .unwrap();
        let n = dse_param_space(&r).configs().len();
        assert_eq!(n, 90, "2 ops x 5 widths x 3 unrolls x 3 loop modes");
        assert_eq!(dse_budget(&r, n), 9, "default budget is a tenth");
        let grid = CliRequest {
            strategy: DseStrategy::Grid,
            ..r.clone()
        };
        assert_eq!(dse_budget(&grid, n), n, "grid covers everything");
        let capped = CliRequest {
            budget: Some(1000),
            ..r
        };
        assert_eq!(dse_budget(&capped, n), n, "budget capped at the space");
    }

    #[test]
    fn execute_dse_reports_best_and_pareto() {
        let r = parse(&[
            "dse",
            "--target",
            "aocl",
            "--kernel",
            "copy",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--strategy",
            "model",
            "--budget",
            "10",
            "--jobs",
            "2",
        ])
        .unwrap()
        .unwrap();
        let out = execute(&r).expect("dse runs");
        assert!(out.contains("dse on"), "{out}");
        assert!(out.contains("model strategy"), "{out}");
        assert!(out.contains("of 15 points"), "{out}");
        assert!(out.contains("best: copy"), "{out}");
        assert!(out.contains("pareto front"), "{out}");
    }

    #[test]
    fn execute_dse_is_identical_across_jobs() {
        let base = parse(&[
            "dse",
            "--target",
            "sdaccel",
            "--kernel",
            "triad",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--strategy",
            "genetic",
            "--budget",
            "12",
            "--dse-seed",
            "7",
            "--jobs",
            "1",
        ])
        .unwrap()
        .unwrap();
        let serial = execute(&base).unwrap();
        let parallel = execute(&CliRequest {
            jobs: Some(8),
            ..base
        })
        .unwrap();
        assert_eq!(serial, parallel, "visit order and report jobs-invariant");
    }

    #[test]
    fn execute_sweep_reports_points_and_summary() {
        let r = parse(&[
            "sweep",
            "--kernel",
            "copy",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--vectors",
            "1,2",
            "--jobs",
            "1",
        ])
        .unwrap()
        .unwrap();
        let out = execute(&r).expect("sweep runs");
        assert!(out.contains("sweep on"), "{out}");
        assert!(out.contains("2 points"), "{out}");
        assert!(out.contains("retried"), "summary rendered: {out}");
        assert!(out.contains("best: copy"), "{out}");
    }

    #[test]
    fn execute_sweep_with_faults_matches_fault_free_run() {
        let base = parse(&[
            "sweep",
            "--kernel",
            "triad",
            "--size",
            "64K",
            "--ntimes",
            "1",
            "--vectors",
            "1,2,4",
            "--jobs",
            "2",
        ])
        .unwrap()
        .unwrap();
        let clean = execute(&base).expect("fault-free sweep");
        let faulty = CliRequest {
            faults: Some(FaultSpec::parse("build=0.2,timeout=0.1,lost=0.05,bitflip=0.05").unwrap()),
            fault_seed: Some(42),
            retries: Some(10),
            ..base
        };
        let out = execute(&faulty).expect("faulty sweep");
        // Same measurements survive the injected faults; only the summary
        // counters differ.
        let table_of = |s: &str| {
            s.lines()
                .take_while(|l| !l.contains("retried"))
                .filter(|l| l.contains("triad"))
                .map(|l| {
                    // Drop the per-point retries column (second-to-last).
                    let cells: Vec<&str> = l.split_whitespace().collect();
                    cells[..cells.len() - 1].join(" ")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(table_of(&clean), table_of(&out));
    }
}
