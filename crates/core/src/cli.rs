//! Command-line front end for the benchmark — the equivalent of the
//! original MP-STREAM's command-line tool, factored as a library so the
//! argument grammar and execution are unit-testable. The `mpstream`
//! binary in the workspace root is a thin wrapper.

use crate::config::BenchConfig;
use crate::engine::{default_jobs, Engine};
use crate::report::Table;
use crate::runner::Runner;
use kernelgen::{
    AccessPattern, AoclOpts, DataType, KernelConfig, LoopMode, StreamOp, VectorWidth, VendorOpts,
};
use targets::TargetId;

/// A parsed command-line request.
#[derive(Debug, Clone, PartialEq)]
pub struct CliRequest {
    /// Target to run on.
    pub target: TargetId,
    /// Kernels to run (default: all four).
    pub ops: Vec<StreamOp>,
    /// Array size in bytes.
    pub size_bytes: u64,
    /// Element type.
    pub dtype: DataType,
    /// Vector width.
    pub width: u32,
    /// Loop management.
    pub loop_mode: LoopMode,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Unroll factor.
    pub unroll: u32,
    /// AOCL replication (SIMD, CUs).
    pub aocl: Option<(u32, u32)>,
    /// Timed repetitions.
    pub ntimes: u32,
    /// Worker threads for multi-kernel runs; `None` picks the default
    /// (`MPSTREAM_JOBS` or the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Skip functional validation.
    pub no_validate: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Print the generated OpenCL kernel source instead of running.
    pub show_kernel: bool,
}

impl Default for CliRequest {
    fn default() -> Self {
        CliRequest {
            target: TargetId::Cpu,
            ops: StreamOp::ALL.to_vec(),
            size_bytes: 4 << 20,
            dtype: DataType::I32,
            width: 1,
            loop_mode: LoopMode::NdRange,
            pattern: AccessPattern::Contiguous,
            unroll: 1,
            aocl: None,
            ntimes: 5,
            jobs: None,
            no_validate: false,
            csv: false,
            show_kernel: false,
        }
    }
}

/// The usage string printed on `--help` or a parse error.
pub const USAGE: &str = "\
usage: mpstream [options]
  --target <aocl|sdaccel|cpu|gpu>   device to run on (default cpu)
  --kernel <copy|scale|add|triad>   kernel (repeatable; default all four)
  --size <N[K|M|G]>                 bytes per array (default 4M)
  --dtype <int|double>              element type (default int)
  --vector <1|2|4|8|16>             vectorization width (default 1)
  --loop <ndrange|flat|nested>      loop management (default ndrange;
                                    FPGAs default to flat)
  --pattern <contig|colmajor|strideN>  access pattern (default contig)
  --unroll <N>                      unroll factor (default 1)
  --simd <N>                        AOCL num_simd_work_items
  --compute-units <N>               AOCL num_compute_units
  --ntimes <N>                      timed repetitions (default 5)
  --jobs <N>                        worker threads for multi-kernel runs
                                    (default: MPSTREAM_JOBS env var, else
                                    the machine's available parallelism)
  --no-validate                     skip STREAM-style result validation
  --csv                             CSV output
  --show-kernel                     print the generated OpenCL kernel
  --list-devices                    list the simulated platforms
  --help                            this text";

/// Parse a size argument like `4M`, `512K`, `1G`, `8192`.
pub fn parse_size(s: &str) -> Result<u64, String> {
    let (num, mult) = match s.char_indices().last() {
        Some((i, 'K')) | Some((i, 'k')) => (&s[..i], 1u64 << 10),
        Some((i, 'M')) | Some((i, 'm')) => (&s[..i], 1u64 << 20),
        Some((i, 'G')) | Some((i, 'g')) => (&s[..i], 1u64 << 30),
        _ => (s, 1),
    };
    // Allow decimal MB-style values like 0.25M.
    if let Ok(f) = num.parse::<f64>() {
        if f > 0.0 {
            return Ok(if mult == 1 {
                f.round() as u64
            } else {
                (f * mult as f64).round() as u64
            });
        }
    }
    Err(format!("invalid size '{s}' (try 4M, 512K, 1G){}", ""))
}

/// Parse the full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Option<CliRequest>, String> {
    let mut req = CliRequest::default();
    let mut ops: Vec<StreamOp> = Vec::new();
    let mut loop_set = false;
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--list-devices" => {
                req.show_kernel = false;
                req.ops.clear();
                // Marker handled by the binary via `ops.is_empty()` is
                // too subtle; use an explicit sentinel instead.
                return Ok(Some(CliRequest { ntimes: 0, ..req }));
            }
            "--target" => {
                let v = need(&mut it, "--target")?;
                req.target =
                    TargetId::from_label(&v).ok_or_else(|| format!("unknown target '{v}'"))?;
            }
            "--kernel" => {
                let v = need(&mut it, "--kernel")?;
                let op = match v.as_str() {
                    "copy" => StreamOp::Copy,
                    "scale" => StreamOp::Scale,
                    "add" => StreamOp::Add,
                    "triad" => StreamOp::Triad,
                    other => return Err(format!("unknown kernel '{other}'")),
                };
                ops.push(op);
            }
            "--size" => req.size_bytes = parse_size(&need(&mut it, "--size")?)?,
            "--dtype" => {
                req.dtype = match need(&mut it, "--dtype")?.as_str() {
                    "int" | "i32" => DataType::I32,
                    "double" | "f64" => DataType::F64,
                    other => return Err(format!("unknown dtype '{other}'")),
                }
            }
            "--vector" => {
                req.width = need(&mut it, "--vector")?
                    .parse()
                    .map_err(|_| "invalid --vector".to_string())?;
            }
            "--loop" => {
                loop_set = true;
                req.loop_mode = match need(&mut it, "--loop")?.as_str() {
                    "ndrange" => LoopMode::NdRange,
                    "flat" => LoopMode::SingleWorkItemFlat,
                    "nested" => LoopMode::SingleWorkItemNested,
                    other => return Err(format!("unknown loop mode '{other}'")),
                };
            }
            "--pattern" => {
                let v = need(&mut it, "--pattern")?;
                req.pattern = if v == "contig" {
                    AccessPattern::Contiguous
                } else if v == "colmajor" {
                    AccessPattern::ColMajor { cols: None }
                } else if let Some(n) = v.strip_prefix("stride") {
                    AccessPattern::Strided {
                        stride: n.parse().map_err(|_| format!("bad stride in '{v}'"))?,
                    }
                } else {
                    return Err(format!("unknown pattern '{v}'"));
                };
            }
            "--unroll" => {
                req.unroll = need(&mut it, "--unroll")?
                    .parse()
                    .map_err(|_| "invalid --unroll".to_string())?;
            }
            "--simd" => {
                let n = need(&mut it, "--simd")?
                    .parse()
                    .map_err(|_| "invalid --simd".to_string())?;
                let (_, cu) = req.aocl.unwrap_or((1, 1));
                req.aocl = Some((n, cu));
            }
            "--compute-units" => {
                let n = need(&mut it, "--compute-units")?
                    .parse()
                    .map_err(|_| "invalid --compute-units".to_string())?;
                let (simd, _) = req.aocl.unwrap_or((1, 1));
                req.aocl = Some((simd, n));
            }
            "--ntimes" => {
                req.ntimes = need(&mut it, "--ntimes")?
                    .parse()
                    .map_err(|_| "invalid --ntimes".to_string())?;
            }
            "--jobs" => {
                let n: usize = need(&mut it, "--jobs")?
                    .parse()
                    .map_err(|_| "invalid --jobs".to_string())?;
                if n == 0 {
                    return Err("--jobs needs at least 1".to_string());
                }
                req.jobs = Some(n);
            }
            "--no-validate" => req.no_validate = true,
            "--csv" => req.csv = true,
            "--show-kernel" => req.show_kernel = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if !ops.is_empty() {
        req.ops = ops;
    }
    // FPGAs default to their sensible loop form unless told otherwise.
    if !loop_set && req.target.is_fpga() {
        req.loop_mode = LoopMode::SingleWorkItemFlat;
    }
    Ok(Some(req))
}

/// Build the kernel configuration for one op of the request.
pub fn kernel_config(req: &CliRequest, op: StreamOp) -> Result<KernelConfig, String> {
    let mut cfg = KernelConfig::baseline(op, req.size_bytes / req.dtype.word_bytes());
    cfg.dtype = req.dtype;
    cfg.vector_width = VectorWidth::new(req.width)?;
    cfg.loop_mode = req.loop_mode;
    cfg.pattern = req.pattern;
    cfg.unroll = req.unroll;
    if let Some((simd, cu)) = req.aocl {
        cfg.reqd_work_group_size = simd > 1;
        cfg.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: simd,
            num_compute_units: cu,
        });
    }
    Ok(cfg)
}

/// Execute a request and render the report (the binary prints this).
pub fn execute(req: &CliRequest) -> Result<String, String> {
    if req.show_kernel {
        let cfg = kernel_config(req, req.ops.first().copied().unwrap_or(StreamOp::Copy))?;
        return Ok(kernelgen::generate_source(&cfg));
    }

    let info = Runner::for_target(req.target).device().info().clone();
    let mut table = Table::new(&["kernel", "bytes/iter", "best GB/s", "avg ms", "valid"]);
    let mut failures = Vec::new();

    let mut work = Vec::with_capacity(req.ops.len());
    for &op in &req.ops {
        let cfg = kernel_config(req, op)?;
        work.push(
            BenchConfig::new(cfg)
                .with_ntimes(req.ntimes)
                .with_validation(
                    !req.no_validate && req.size_bytes <= BenchConfig::AUTO_VALIDATE_LIMIT_BYTES,
                ),
        );
    }

    // One kernel per work item, fanned across the engine's pool; the
    // outcomes come back in request order regardless of --jobs.
    let engine = Engine::with_jobs(req.jobs.unwrap_or_else(default_jobs));
    for (op, outcome) in req.ops.iter().zip(engine.run_list(req.target, &work)) {
        match outcome.result {
            Ok(m) => {
                table.row(&[
                    op.name().to_string(),
                    m.bytes_moved.to_string(),
                    format!("{:.3}", m.gbps()),
                    format!("{:.4}", m.avg_wall_ns / 1e6),
                    m.validated
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "skipped".into()),
                ]);
            }
            Err(e) => failures.push(format!("{}: {e}", op.name())),
        }
    }

    let mut out = format!(
        "MP-STREAM on {} (peak {:.1} GB/s)\narray size {} bytes x {:?}, {} repetitions\n\n",
        info.name, info.peak_gbps, req.size_bytes, req.dtype, req.ntimes
    );
    out.push_str(&if req.csv {
        table.to_csv()
    } else {
        table.to_text()
    });
    for f in failures {
        out.push_str(&format!("FAILED {f}\n"));
    }
    Ok(out)
}

/// Render the device listing for `--list-devices`.
pub fn list_devices() -> String {
    let mut t = Table::new(&["platform", "device", "type", "peak GB/s", "global mem"]);
    for p in targets::standard_platforms() {
        for d in p.devices() {
            let i = d.info();
            t.row(&[
                p.name().to_string(),
                i.name.clone(),
                format!("{:?}", i.device_type),
                format!("{:.1}", i.peak_gbps),
                format!("{} GiB", i.global_mem_bytes >> 30),
            ]);
        }
    }
    t.to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<CliRequest>, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4M").unwrap(), 4 << 20);
        assert_eq!(parse_size("512K").unwrap(), 512 << 10);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert_eq!(parse_size("8192").unwrap(), 8192);
        assert_eq!(parse_size("0.25M").unwrap(), 256 << 10);
        assert!(parse_size("x").is_err());
        assert!(parse_size("-4M").is_err());
    }

    #[test]
    fn defaults() {
        let r = parse(&[]).unwrap().unwrap();
        assert_eq!(r.target, TargetId::Cpu);
        assert_eq!(r.ops.len(), 4);
        assert_eq!(r.size_bytes, 4 << 20);
    }

    #[test]
    fn full_flag_set() {
        let r = parse(&[
            "--target",
            "aocl",
            "--kernel",
            "triad",
            "--size",
            "16M",
            "--dtype",
            "double",
            "--vector",
            "8",
            "--loop",
            "nested",
            "--pattern",
            "stride4",
            "--unroll",
            "2",
            "--simd",
            "2",
            "--compute-units",
            "4",
            "--ntimes",
            "7",
            "--no-validate",
            "--csv",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(r.target, TargetId::FpgaAocl);
        assert_eq!(r.ops, vec![StreamOp::Triad]);
        assert_eq!(r.size_bytes, 16 << 20);
        assert_eq!(r.dtype, DataType::F64);
        assert_eq!(r.width, 8);
        assert_eq!(r.loop_mode, LoopMode::SingleWorkItemNested);
        assert_eq!(r.pattern, AccessPattern::Strided { stride: 4 });
        assert_eq!(r.aocl, Some((2, 4)));
        assert_eq!(r.ntimes, 7);
        assert!(r.no_validate && r.csv);
    }

    #[test]
    fn fpga_defaults_to_flat_loop() {
        let r = parse(&["--target", "sdaccel"]).unwrap().unwrap();
        assert_eq!(r.loop_mode, LoopMode::SingleWorkItemFlat);
        let r = parse(&["--target", "sdaccel", "--loop", "ndrange"])
            .unwrap()
            .unwrap();
        assert_eq!(r.loop_mode, LoopMode::NdRange);
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).unwrap().unwrap().jobs, None);
        assert_eq!(parse(&["--jobs", "2"]).unwrap().unwrap().jobs, Some(2));
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn execute_is_identical_across_jobs() {
        let mut serial = parse(&["--size", "64K", "--ntimes", "1", "--jobs", "1"])
            .unwrap()
            .unwrap();
        serial.ops = StreamOp::ALL.to_vec();
        let parallel = CliRequest {
            jobs: Some(4),
            ..serial.clone()
        };
        assert_eq!(execute(&serial).unwrap(), execute(&parallel).unwrap());
    }

    #[test]
    fn help_returns_none() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
    }

    #[test]
    fn unknown_flags_error() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--target", "tpu"]).is_err());
        assert!(parse(&["--kernel", "fma"]).is_err());
        assert!(parse(&["--target"]).is_err(), "missing value");
    }

    #[test]
    fn execute_runs_all_kernels_and_reports() {
        let mut r = parse(&["--size", "64K", "--ntimes", "1"]).unwrap().unwrap();
        r.ops = vec![StreamOp::Copy, StreamOp::Triad];
        let out = execute(&r).expect("runs");
        assert!(out.contains("copy"), "{out}");
        assert!(out.contains("triad"));
        assert!(out.contains("true"), "validated: {out}");
    }

    #[test]
    fn execute_reports_synthesis_failures() {
        let mut r = parse(&["--target", "aocl", "--vector", "16", "--unroll", "16"])
            .unwrap()
            .unwrap();
        r.ops = vec![StreamOp::Copy];
        let out = execute(&r).expect("report produced");
        assert!(out.contains("FAILED copy"), "{out}");
    }

    #[test]
    fn show_kernel_prints_source() {
        let r = parse(&["--show-kernel", "--kernel", "scale"])
            .unwrap()
            .unwrap();
        let out = execute(&r).expect("source");
        assert!(out.contains("__kernel void mp_scale"));
    }

    #[test]
    fn list_devices_names_all_platforms() {
        let out = list_devices();
        for name in ["Intel", "NVIDIA", "Altera", "Xilinx"] {
            assert!(out.contains(name), "{out}");
        }
    }
}
