//! # mpstream-core — the MP-STREAM benchmark
//!
//! The paper's contribution re-assembled: a STREAM-style benchmark whose
//! point is a *tunable design space* for sustained memory bandwidth on
//! heterogeneous devices. This crate drives the mpcl runtime and the four
//! device models:
//!
//! * [`config`] — [`config::BenchConfig`]: a kernel tuning point plus the
//!   measurement protocol (repetitions, warm-up, validation, stream
//!   source/destination);
//! * [`runner`] — executes a configuration on a device the way the
//!   paper's host code does (init, transfer, N timed launches, best-of,
//!   STREAM-style result validation) and produces a
//!   [`runner::Measurement`];
//! * [`space`] — [`space::ParamSpace`]: cartesian sweeps over the tuning
//!   dimensions of §III;
//! * [`engine`] — the parallel execution engine: a work-list of
//!   configurations fanned across a thread pool with a shared
//!   build-artifact cache, returning deterministic-order
//!   [`engine::Outcome`]s;
//! * [`dse`] — automated design-space exploration: an open ask/tell
//!   [`dse::Strategy`] trait with exhaustive, random, hill-climbing,
//!   annealing, genetic and surrogate-model search, every batch
//!   executing through the engine;
//! * [`report`] — tables, CSV and ASCII log-log charts for the harness;
//! * [`chart`] — the general deterministic ASCII chart renderer
//!   (line/scatter/bar, linear/log2/log10 axes) behind `--chart`
//!   reports, `mpstream watch` and the golden figure charts;
//! * [`paperdata`] — the paper's plotted data points (transcribed from
//!   the figures) plus shape checks used by EXPERIMENTS.md;
//! * [`experiments`] — one entry point per figure (1a, 1b, 2, 3, 4a, 4b)
//!   that regenerates it on the simulated targets.

pub mod bandwidth;
pub mod bench_self;
pub mod chart;
pub mod checkpoint;
pub mod cli;
pub mod config;
pub mod dse;
pub mod engine;
pub mod env;
pub mod experiments;
pub mod extensions;
pub mod json;
pub mod paperdata;
pub mod report;
pub mod rng;
pub mod runner;
pub mod space;
pub mod sweep;
pub mod trace;

pub use bandwidth::{gbps_to_kbps, mb_label};
pub use chart::{sparkline, Chart, Scale};
pub use checkpoint::Checkpoint;
pub use config::{BenchConfig, StreamLocation};
pub use dse::{
    explore, explore_target, search_target, AnnealSearch, DseResult, ExhaustiveSearch, Explorer,
    GeneticSearch, HillClimbSearch, ModelSearch, RandomSearch, Strategy, SurrogateCheckpoint,
};
pub use engine::{default_jobs, CancelToken, Engine, Outcome, ResiliencePolicy, RetryStats};
pub use experiments::{run_figure, Figure, FigureId, RunOpts};
pub use extensions::{all_extensions, ExtensionReport};
pub use report::{ascii_loglog, sweep_summary_table, Series, SweepSummary, Table};
pub use rng::SplitMix64;
pub use runner::{Measurement, Runner};
pub use space::ParamSpace;
pub use sweep::{
    pareto_front, pareto_front_of_points, run_space, sweep_space, sweep_space_checkpointed,
    ParetoPoint, SweepResult,
};
pub use trace::Trace;
