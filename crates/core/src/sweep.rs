//! Sweep execution and multi-objective analysis.
//!
//! A sweep is a thin strategy layer over the [`Engine`]:
//! [`sweep_space`] expands a [`ParamSpace`] into a work-list, hands it to
//! the engine's thread pool, and wraps the ordered [`Outcome`]s — plus
//! the build-cache counters for this sweep — in a [`SweepResult`].
//! [`run_space`] keeps the original one-runner entry point as a shim.
//! [`sweep_space_checkpointed`] records every completed point to a
//! [`Checkpoint`] as workers finish, and skips points the checkpoint
//! already holds — the `--checkpoint`/`--resume` workflow.
//! [`pareto_front`] then extracts the bandwidth-vs-resources Pareto
//! frontier — the set a designer actually chooses from, since on an FPGA
//! the benchmark kernel shares the fabric with the application.

use crate::checkpoint::Checkpoint;
use crate::config::BenchConfig;
use crate::engine::{Engine, Outcome, RetryStats};
use crate::report::{
    config_label, config_metrics_table, sweep_summary_table, ConfigMetrics, SweepSummary, Table,
};
use crate::runner::{Measurement, Runner};
use crate::space::ParamSpace;
use crate::trace;
use kernelgen::KernelConfig;
use mpcl::{CacheStats, FaultCounters};

/// The result of sweeping a space on one device.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every point, in the space's deterministic order.
    pub points: Vec<Outcome>,
    /// Build-cache hits/misses incurred by this sweep.
    pub cache: CacheStats,
    /// Retry/panic counters incurred by this sweep.
    pub retry: RetryStats,
    /// Faults injected during this sweep (zero without a fault plan).
    pub faults: FaultCounters,
    /// Points answered from a checkpoint instead of executed.
    pub resumed: usize,
}

impl SweepResult {
    /// Successful points only.
    pub fn ok_points(&self) -> impl Iterator<Item = (&KernelConfig, &Measurement)> {
        self.points
            .iter()
            .filter_map(|p| p.result.as_ref().ok().map(|m| (&p.config, m)))
    }

    /// Number of failed points (synthesis errors etc.).
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.result.is_err()).count()
    }

    /// Number of points that needed at least one retry.
    pub fn retried_points(&self) -> usize {
        self.points.iter().filter(|p| p.retries > 0).count()
    }

    /// One-row degradation summary (ok / failed / retried / gave-up /
    /// resumed plus cache and fault counters) — see
    /// [`sweep_summary_table`].
    pub fn summary(&self) -> Table {
        sweep_summary_table(&SweepSummary {
            points: self.points.len(),
            ok: self.points.len() - self.failures(),
            failed: self.failures(),
            retried: self.retried_points(),
            gave_up: self.retry.gave_up,
            resumed: self.resumed,
            cache: self.cache,
            retries: self.retry.retries,
            panics: self.retry.panics_isolated,
            faults_injected: self.faults.total(),
        })
    }

    /// The best configuration by bandwidth, if any succeeded. NaN
    /// bandwidths (degenerate measurements) are excluded rather than
    /// compared, so they can neither panic nor win.
    pub fn best(&self) -> Option<&Outcome> {
        self.points
            .iter()
            .filter_map(|p| p.gbps().filter(|g| !g.is_nan()).map(|g| (p, g)))
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(p, _)| p)
    }

    /// Render a summary table (config, GB/s or failure, fmax, logic,
    /// retries taken, note).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&["config", "GB/s", "fmax MHz", "logic", "retries", "note"]);
        for p in &self.points {
            let cfg = config_label(&p.config);
            let retries = p.retries.to_string();
            match &p.result {
                Ok(m) => t.row(&[
                    cfg,
                    format!("{:.2}", m.gbps()),
                    m.fmax_mhz
                        .map(|f| format!("{f:.0}"))
                        .unwrap_or_else(|| "-".into()),
                    m.resources
                        .map(|r| r.logic.to_string())
                        .unwrap_or_else(|| "-".into()),
                    retries,
                    String::new(),
                ]),
                Err(e) => {
                    let mut note = e.to_string().replace('\n', " | ");
                    note.truncate(90);
                    t.row(&[cfg, "-".into(), "-".into(), "-".into(), retries, note])
                }
            };
        }
        t
    }

    /// Render the per-configuration execution-metrics table: where each
    /// successful point's simulated time went (build, transfers,
    /// kernel), the retries it needed, its build-cache status and its
    /// DRAM row-buffer hit rate. Failed points are omitted — their
    /// failure reason lives in [`SweepResult::table`].
    pub fn metrics_table(&self) -> Table {
        let rows: Vec<ConfigMetrics> = self
            .points
            .iter()
            .filter_map(|p| {
                let m = p.result.as_ref().ok()?;
                Some(ConfigMetrics {
                    label: config_label(&p.config),
                    family: p.config.op.family(),
                    gbps: m.gbps(),
                    build_ns: m.build_ns,
                    xfer_ns: m.xfer_ns,
                    kernel_ns: m.kernel_ns,
                    stall_ns: m.stall_ns,
                    retries: p.retries,
                    cache: m.cache.label(),
                    row_hit_rate: m.row_hit_rate(),
                })
            })
            .collect();
        config_metrics_table(&rows)
    }
}

/// Execute every configuration of `space` on `target` across the
/// engine's thread pool. `protocol` customizes the measurement
/// (repetitions, validation). Point order follows
/// [`ParamSpace::configs`] regardless of the worker count.
pub fn sweep_space(
    engine: &Engine,
    target: targets::TargetId,
    space: &ParamSpace,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
) -> SweepResult {
    let (cache0, retry0, faults0) = snapshots(engine);
    let points = engine.run_configs(target, space.configs(), protocol);
    finish(engine, points, cache0, retry0, faults0, 0)
}

/// Like [`sweep_space`], but recording every completed point to
/// `checkpoint` as workers finish, and answering points the checkpoint
/// already holds without executing them (their count lands in
/// [`SweepResult::resumed`]). Point order still follows
/// [`ParamSpace::configs`].
pub fn sweep_space_checkpointed(
    engine: &Engine,
    target: targets::TargetId,
    space: &ParamSpace,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
    checkpoint: &Checkpoint,
) -> SweepResult {
    let (cache0, retry0, faults0) = snapshots(engine);
    let all: Vec<BenchConfig> = space.configs().into_iter().map(protocol).collect();

    // Split into already-checkpointed and still-to-run, remembering
    // where each pending config sits in the full ordering.
    let mut slots: Vec<Option<Outcome>> = Vec::with_capacity(all.len());
    let mut pending: Vec<BenchConfig> = Vec::new();
    let mut pending_slots: Vec<usize> = Vec::new();
    for (i, bc) in all.iter().enumerate() {
        match checkpoint.lookup(&bc.kernel) {
            Some(done) => slots.push(Some(done)),
            None => {
                slots.push(None);
                pending.push(bc.clone());
                pending_slots.push(i);
            }
        }
    }
    let resumed = all.len() - pending.len();

    let executed = engine.run_list_observed(
        || Runner::for_target(target),
        &pending,
        |outcome| {
            let ok = match checkpoint.record(outcome) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!(
                        "warning: checkpoint write to {} failed: {e}",
                        checkpoint.path().display()
                    );
                    false
                }
            };
            // Checkpoint writes happen in completion order, a wall-clock
            // fact — record them in the wall lane so the canonical
            // (virtual) trace stays jobs-invariant.
            if let Some(t) = engine.trace() {
                t.wall_instant(0, "checkpoint-write", trace::args([("ok", ok.into())]));
            }
        },
    );
    for (slot, outcome) in pending_slots.into_iter().zip(executed) {
        slots[slot] = Some(outcome);
    }
    let points = slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();
    finish(engine, points, cache0, retry0, faults0, resumed)
}

fn snapshots(engine: &Engine) -> (CacheStats, RetryStats, FaultCounters) {
    (
        engine.cache_stats(),
        engine.retry_stats(),
        engine.fault_counters(),
    )
}

fn finish(
    engine: &Engine,
    points: Vec<Outcome>,
    cache0: CacheStats,
    retry0: RetryStats,
    faults0: FaultCounters,
    resumed: usize,
) -> SweepResult {
    let f1 = engine.fault_counters();
    SweepResult {
        points,
        cache: engine.cache_stats().since(cache0),
        retry: engine.retry_stats().since(retry0),
        faults: FaultCounters {
            build: f1.build - faults0.build,
            timeout: f1.timeout - faults0.timeout,
            device_lost: f1.device_lost - faults0.device_lost,
            bit_flip: f1.bit_flip - faults0.bit_flip,
        },
        resumed,
    }
}

/// Execute every configuration of `space` on `runner`'s device, serially
/// on the calling thread. This is the original single-runner entry
/// point, now a shim over the engine; prefer [`sweep_space`] for
/// parallel sweeps.
pub fn run_space(
    runner: &Runner,
    space: &ParamSpace,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
) -> SweepResult {
    let engine = Engine::with_jobs(1);
    let (cache0, retry0, faults0) = snapshots(&engine);
    let work: Vec<BenchConfig> = space.configs().into_iter().map(protocol).collect();
    let points = engine.run_list_with(|| runner.clone(), &work);
    finish(&engine, points, cache0, retry0, faults0, 0)
}

/// A point on the bandwidth-vs-logic Pareto frontier.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: KernelConfig,
    /// Achieved bandwidth, GB/s.
    pub gbps: f64,
    /// FPGA logic consumed.
    pub logic: u64,
}

/// Extract the Pareto frontier (maximize bandwidth, minimize logic) from
/// a sweep, with epsilon dominance: a costlier point must be at least
/// 0.5 % faster to join the frontier, so DRAM-bound plateaus don't admit
/// ever-larger designs with microscopically different rates. Points
/// without resource reports (non-FPGA devices) are skipped. The result
/// is sorted by ascending logic.
pub fn pareto_front(sweep: &SweepResult) -> Vec<ParetoPoint> {
    pareto_front_of_points(&sweep.points)
}

/// [`pareto_front`] over a bare outcome list — shared with the DSE
/// layer, whose visit-ordered trace is not a [`SweepResult`].
pub fn pareto_front_of_points(points: &[Outcome]) -> Vec<ParetoPoint> {
    let mut candidates: Vec<ParetoPoint> = points
        .iter()
        .filter_map(|p| {
            let gbps = p.gbps()?;
            let logic = p.logic()?;
            Some(ParetoPoint {
                config: p.config.clone(),
                gbps,
                logic,
            })
        })
        .collect();
    candidates.sort_by(|a, b| a.logic.cmp(&b.logic).then(b.gbps.total_cmp(&a.gbps)));

    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_gbps = f64::NEG_INFINITY;
    for c in candidates {
        // Sorted by logic: a point joins the front iff it meaningfully
        // beats every cheaper (or equal-cost) point's bandwidth.
        if c.gbps > best_gbps * 1.005 {
            best_gbps = c.gbps;
            front.push(c);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{LoopMode, StreamOp};
    use targets::TargetId;

    fn small_space() -> ParamSpace {
        ParamSpace::new()
            .ops([StreamOp::Copy])
            .sizes_bytes([1 << 20])
            .widths([1, 4, 16])
            .loop_modes([LoopMode::SingleWorkItemFlat])
            .unrolls([1, 4])
    }

    fn sweep() -> SweepResult {
        run_space(
            &Runner::for_target(TargetId::FpgaAocl),
            &small_space(),
            |k| BenchConfig::new(k).with_ntimes(1).with_validation(false),
        )
    }

    #[test]
    fn sweep_covers_the_whole_space() {
        let s = sweep();
        assert_eq!(s.points.len(), 6);
        assert!(s.failures() <= 1, "at most the 16x4 point may overflow");
        let best = s.best().expect("some point succeeded");
        assert!(
            best.config.vector_width.get() >= 4,
            "wide vectors win on the FPGA"
        );
    }

    #[test]
    fn sweep_space_matches_run_space_and_counts_cache() {
        let engine = Engine::with_jobs(2);
        let protocol = |k: KernelConfig| BenchConfig::new(k).with_ntimes(1).with_validation(false);
        let a = sweep_space(&engine, TargetId::FpgaAocl, &small_space(), protocol);
        let b = sweep();
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.config, y.config);
            assert_eq!(x.gbps(), y.gbps());
        }
        assert_eq!(
            a.cache.misses as usize,
            a.points.len(),
            "fresh engine builds all"
        );
        let again = sweep_space(&engine, TargetId::FpgaAocl, &small_space(), protocol);
        assert_eq!(again.cache.misses, 0, "second sweep fully cached");
        assert_eq!(again.cache.hits as usize, again.points.len());
    }

    #[test]
    fn pareto_front_is_monotone() {
        let front = pareto_front(&sweep());
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].logic > w[0].logic, "ascending logic");
            assert!(w[1].gbps > w[0].gbps, "strictly better bandwidth");
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let s = sweep();
        let front = pareto_front(&s);
        // Every successful point must be dominated by or on the front.
        for (cfg, m) in s.ok_points() {
            let logic = m.resources.expect("fpga").logic;
            let dominated_or_on = front
                .iter()
                .any(|f| f.logic <= logic && f.gbps >= m.gbps() * 0.995);
            assert!(
                dominated_or_on,
                "point {:?} escapes the front",
                cfg.vector_width
            );
        }
    }

    #[test]
    fn table_lists_failures_with_reason() {
        let space = small_space().unrolls([16]); // 16x16 will overflow
        let s = run_space(&Runner::for_target(TargetId::FpgaAocl), &space, |k| {
            BenchConfig::new(k).with_ntimes(1).with_validation(false)
        });
        let txt = s.table().to_text();
        assert!(txt.contains("does not fit") || s.failures() == 0, "{txt}");
    }
}
