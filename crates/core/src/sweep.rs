//! Sweep execution and multi-objective analysis.
//!
//! [`run_space`] executes every configuration of a [`ParamSpace`] on one
//! device and collects outcomes (including synthesis failures, which are
//! first-class results of an FPGA sweep). [`pareto_front`] then extracts
//! the bandwidth-vs-resources Pareto frontier — the set a designer
//! actually chooses from, since on an FPGA the benchmark kernel shares
//! the fabric with the application.

use crate::config::BenchConfig;
use crate::report::Table;
use crate::runner::{Measurement, Runner};
use crate::space::ParamSpace;
use kernelgen::KernelConfig;
use mpcl::ClError;

/// One sweep point's outcome.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The configuration.
    pub config: KernelConfig,
    /// Measurement, or the error (typically a synthesis failure).
    pub outcome: Result<Measurement, ClError>,
}

impl SweepPoint {
    /// Bandwidth if the run succeeded.
    pub fn gbps(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|m| m.gbps())
    }

    /// FPGA logic usage if reported.
    pub fn logic(&self) -> Option<u64> {
        self.outcome.as_ref().ok().and_then(|m| m.resources).map(|r| r.logic)
    }
}

/// The result of sweeping a space on one device.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every point, in the space's deterministic order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Successful points only.
    pub fn ok_points(&self) -> impl Iterator<Item = (&KernelConfig, &Measurement)> {
        self.points.iter().filter_map(|p| p.outcome.as_ref().ok().map(|m| (&p.config, m)))
    }

    /// Number of failed points (synthesis errors etc.).
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }

    /// The best configuration by bandwidth, if any succeeded.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.gbps().is_some())
            .max_by(|a, b| a.gbps().partial_cmp(&b.gbps()).expect("finite"))
    }

    /// Render a summary table (config, GB/s or failure, fmax, logic).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&["config", "GB/s", "fmax MHz", "logic", "note"]);
        for p in &self.points {
            let cfg = format!(
                "{} vec{} {} u{} {:?}",
                p.config.op.name(),
                p.config.vector_width.get(),
                p.config.loop_mode.label(),
                p.config.unroll,
                p.config.vendor
            );
            match &p.outcome {
                Ok(m) => t.row(&[
                    cfg,
                    format!("{:.2}", m.gbps()),
                    m.fmax_mhz.map(|f| format!("{f:.0}")).unwrap_or_else(|| "-".into()),
                    m.resources.map(|r| r.logic.to_string()).unwrap_or_else(|| "-".into()),
                    String::new(),
                ]),
                Err(e) => {
                    let mut note = e.to_string().replace('\n', " | ");
                    note.truncate(90);
                    t.row(&[cfg, "-".into(), "-".into(), "-".into(), note])
                }
            };
        }
        t
    }
}

/// Execute every configuration of `space` on `runner`'s device.
/// `protocol` customizes the measurement (repetitions, validation).
pub fn run_space(
    runner: &Runner,
    space: &ParamSpace,
    protocol: impl Fn(KernelConfig) -> BenchConfig,
) -> SweepResult {
    let points = space
        .configs()
        .into_iter()
        .map(|config| {
            let outcome = runner.run(&protocol(config.clone()));
            SweepPoint { config, outcome }
        })
        .collect();
    SweepResult { points }
}

/// A point on the bandwidth-vs-logic Pareto frontier.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The configuration.
    pub config: KernelConfig,
    /// Achieved bandwidth, GB/s.
    pub gbps: f64,
    /// FPGA logic consumed.
    pub logic: u64,
}

/// Extract the Pareto frontier (maximize bandwidth, minimize logic) from
/// a sweep, with epsilon dominance: a costlier point must be at least
/// 0.5 % faster to join the frontier, so DRAM-bound plateaus don't admit
/// ever-larger designs with microscopically different rates. Points
/// without resource reports (non-FPGA devices) are skipped. The result
/// is sorted by ascending logic.
pub fn pareto_front(sweep: &SweepResult) -> Vec<ParetoPoint> {
    let mut candidates: Vec<ParetoPoint> = sweep
        .points
        .iter()
        .filter_map(|p| {
            let gbps = p.gbps()?;
            let logic = p.logic()?;
            Some(ParetoPoint { config: p.config.clone(), gbps, logic })
        })
        .collect();
    candidates.sort_by(|a, b| a.logic.cmp(&b.logic).then(b.gbps.partial_cmp(&a.gbps).expect("finite")));

    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_gbps = f64::NEG_INFINITY;
    for c in candidates {
        // Sorted by logic: a point joins the front iff it meaningfully
        // beats every cheaper (or equal-cost) point's bandwidth.
        if c.gbps > best_gbps * 1.005 {
            best_gbps = c.gbps;
            front.push(c);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{LoopMode, StreamOp};
    use targets::TargetId;

    fn small_space() -> ParamSpace {
        ParamSpace {
            ops: vec![StreamOp::Copy],
            sizes_bytes: vec![1 << 20],
            widths: vec![1, 4, 16],
            loop_modes: vec![LoopMode::SingleWorkItemFlat],
            unrolls: vec![1, 4],
            ..Default::default()
        }
    }

    fn sweep() -> SweepResult {
        run_space(&Runner::for_target(TargetId::FpgaAocl), &small_space(), |k| {
            BenchConfig::new(k).with_ntimes(1).with_validation(false)
        })
    }

    #[test]
    fn sweep_covers_the_whole_space() {
        let s = sweep();
        assert_eq!(s.points.len(), 6);
        assert!(s.failures() <= 1, "at most the 16x4 point may overflow");
        let best = s.best().expect("some point succeeded");
        assert!(best.config.vector_width.get() >= 4, "wide vectors win on the FPGA");
    }

    #[test]
    fn pareto_front_is_monotone() {
        let front = pareto_front(&sweep());
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].logic > w[0].logic, "ascending logic");
            assert!(w[1].gbps > w[0].gbps, "strictly better bandwidth");
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let s = sweep();
        let front = pareto_front(&s);
        // Every successful point must be dominated by or on the front.
        for (cfg, m) in s.ok_points() {
            let logic = m.resources.expect("fpga").logic;
            let dominated_or_on = front
                .iter()
                .any(|f| f.logic <= logic && f.gbps >= m.gbps() * 0.995);
            assert!(dominated_or_on, "point {:?} escapes the front", cfg.vector_width);
        }
    }

    #[test]
    fn table_lists_failures_with_reason() {
        let mut space = small_space();
        space.unrolls = vec![16]; // 16x16 will overflow
        let s = run_space(&Runner::for_target(TargetId::FpgaAocl), &space, |k| {
            BenchConfig::new(k).with_ntimes(1).with_validation(false)
        });
        let txt = s.table().to_text();
        assert!(txt.contains("does not fit") || s.failures() == 0, "{txt}");
    }
}
