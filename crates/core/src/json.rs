//! Minimal flat-JSON machinery shared by the persistence and serving
//! layers.
//!
//! No external serialization crate exists in-tree, so everything that
//! speaks JSON — the sweep [`Checkpoint`](crate::checkpoint::Checkpoint)
//! format, the `mpstream serve` wire protocol and its job journal —
//! shares this one deliberately small dialect: **single-line flat
//! objects** whose values are strings or raw scalars (numbers, bools,
//! `null`). Lists are carried as comma-joined strings. That shape is
//! expressive enough for every record the workspace writes, and small
//! enough that the parser can be exhaustively property-tested.
//!
//! [`compact_jsonl`] is the shared append-log compaction: JSONL files in
//! this workspace are append-only (crash-safe by construction — a
//! `kill -9` can at worst tear the final line), so long-lived stores
//! accumulate duplicate records for re-run keys plus at most one torn
//! tail. Compaction rewrites the file keeping only the last record per
//! key, dropping corrupt lines, via a temp-file-and-rename so a crash
//! mid-compaction never loses the original.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// One value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A non-string scalar, kept raw: number, `true`/`false`, `null`.
    Raw(String),
}

impl JsonValue {
    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Raw(_) => None,
        }
    }

    /// The raw scalar text, if this is a non-string value.
    pub fn as_raw(&self) -> Option<&str> {
        match self {
            JsonValue::Raw(s) => Some(s),
            JsonValue::Str(_) => None,
        }
    }

    /// Parse a raw scalar as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_raw()?.parse().ok()
    }

    /// Parse a raw scalar as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_raw()?.parse().ok()
    }

    /// Parse a raw scalar as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_raw()? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }
}

/// A parsed flat object: field name to value.
pub type JsonObject = HashMap<String, JsonValue>;

/// Incremental writer for one flat JSON object (a single line).
#[derive(Debug)]
pub struct JsonLine {
    out: String,
}

impl Default for JsonLine {
    fn default() -> Self {
        JsonLine::new()
    }
}

impl JsonLine {
    /// Start an object.
    pub fn new() -> Self {
        JsonLine { out: "{".into() }
    }

    fn sep(&mut self) {
        if self.out.len() > 1 {
            self.out.push(',');
        }
    }

    /// Append a string-valued field (escaped).
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":\"");
        self.out.push_str(&escape(value));
        self.out.push('"');
        self
    }

    /// Append a field whose value is already valid JSON (number, bool,
    /// `null`).
    pub fn raw_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\":");
        self.out.push_str(value);
        self
    }

    /// Append an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw_field(key, &value.to_string())
    }

    /// Close the object and return the line.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a single-line flat JSON object (string/scalar values only — the
/// only shape this workspace writes). Returns `None` on any
/// malformation, which callers treat as a torn or foreign record.
pub fn parse_flat_object(line: &str) -> Option<JsonObject> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            '"' => {}
            _ => return None,
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = if chars.peek() == Some(&'"') {
            JsonValue::Str(parse_string(&mut chars)?)
        } else {
            let mut raw = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' || c == '}' {
                    break;
                }
                raw.push(c);
                chars.next();
            }
            let raw = raw.trim().to_string();
            if raw.is_empty() {
                return None;
            }
            JsonValue::Raw(raw)
        };
        fields.insert(key, value);
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map_while(|_| chars.next()).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// What [`compact_jsonl`] did to a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Records surviving compaction.
    pub kept: usize,
    /// Older duplicates dropped (a newer record for the same key won).
    pub superseded: usize,
    /// Unparseable lines dropped (torn tail, foreign garbage).
    pub corrupt: usize,
}

/// Rewrite the JSONL file at `path` keeping only the **last** record per
/// key, in first-appearance order. `key_of` extracts each record's key
/// from its parsed fields; lines that fail to parse, or whose key is
/// `None`, are dropped (counted in [`CompactStats::corrupt`]). Surviving
/// lines are preserved byte-exactly. The rewrite goes through a sibling
/// temp file and an atomic rename, so a crash mid-compaction leaves the
/// original intact. A missing file is a no-op.
pub fn compact_jsonl(
    path: &Path,
    key_of: impl Fn(&JsonObject) -> Option<String>,
) -> std::io::Result<CompactStats> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CompactStats::default()),
        Err(e) => return Err(e),
    };
    let mut stats = CompactStats::default();
    // Key -> slot index; slots hold the latest line for each key at the
    // position the key first appeared, so compaction is deterministic
    // and stable.
    let mut slot_of: HashMap<String, usize> = HashMap::new();
    let mut slots: Vec<String> = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let key = parse_flat_object(&line).and_then(|fields| key_of(&fields));
        match key {
            None => stats.corrupt += 1,
            Some(key) => match slot_of.get(&key) {
                Some(&i) => {
                    slots[i] = line;
                    stats.superseded += 1;
                }
                None => {
                    slot_of.insert(key, slots.len());
                    slots.push(line);
                }
            },
        }
    }
    stats.kept = slots.len();

    let tmp = path.with_extension("compact-tmp");
    {
        let mut out = File::create(&tmp)?;
        for line in &slots {
            writeln!(out, "{line}")?;
        }
        out.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_parser_rejects_garbage() {
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"a\":1").is_none());
        assert!(parse_flat_object("{\"a\"}").is_none());
        assert!(parse_flat_object("{\"a\":1} trailing").is_none());
        let ok = parse_flat_object("{\"a\": 1, \"b\":\"x\", \"c\":null}").unwrap();
        assert_eq!(ok["a"], JsonValue::Raw("1".into()));
        assert_eq!(ok["b"], JsonValue::Str("x".into()));
        assert_eq!(ok["c"], JsonValue::Raw("null".into()));
    }

    #[test]
    fn escape_round_trips_control_chars() {
        let nasty = "a\"b\\c\nd\te\r\u{1}end";
        let line = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let parsed = parse_flat_object(&line).unwrap();
        assert_eq!(parsed["k"], JsonValue::Str(nasty.into()));
    }

    #[test]
    fn value_accessors() {
        let o = parse_flat_object("{\"n\":42,\"f\":1.5,\"b\":true,\"s\":\"x\"}").unwrap();
        assert_eq!(o["n"].as_u64(), Some(42));
        assert_eq!(o["f"].as_f64(), Some(1.5));
        assert_eq!(o["b"].as_bool(), Some(true));
        assert_eq!(o["s"].as_str(), Some("x"));
        assert_eq!(o["s"].as_u64(), None);
        assert_eq!(o["n"].as_str(), None);
    }

    #[test]
    fn json_line_builds_objects() {
        let mut w = JsonLine::new();
        w.str_field("a", "x\"y")
            .u64_field("n", 7)
            .raw_field("z", "null");
        let line = w.finish();
        let back = parse_flat_object(&line).unwrap();
        assert_eq!(back["a"], JsonValue::Str("x\"y".into()));
        assert_eq!(back["n"].as_u64(), Some(7));
        assert_eq!(back["z"], JsonValue::Raw("null".into()));
    }

    #[test]
    fn compact_keeps_last_record_per_key_and_drops_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "mpstream-json-compact-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "{\"k\":\"a\",\"v\":1}\n{\"k\":\"b\",\"v\":2}\n{\"k\":\"a\",\"v\":3}\n{\"k\":\"half",
        )
        .unwrap();
        let stats = compact_jsonl(&path, |o| Some(o.get("k")?.as_str()?.to_string())).unwrap();
        assert_eq!(
            stats,
            CompactStats {
                kept: 2,
                superseded: 1,
                corrupt: 1
            }
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"k\":\"a\",\"v\":3}\n{\"k\":\"b\",\"v\":2}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_missing_file_is_noop() {
        let path = std::env::temp_dir().join("mpstream-json-compact-missing.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            compact_jsonl(&path, |_| None).unwrap(),
            CompactStats::default()
        );
        assert!(!path.exists());
    }
}
