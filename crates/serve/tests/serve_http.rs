//! Seeded fuzz / property tests for the serve daemon's HTTP parser:
//! malformed request lines, oversized headers, truncated bodies, random
//! byte soup, and pipelined request streams. The invariants under test:
//!
//! * `parse_request` never panics, whatever the bytes;
//! * every failure maps to 400/431/413 (or an I/O error with no status),
//!   never a success with inconsistent fields;
//! * a strict prefix of a valid request never parses as complete;
//! * over a real socket, garbage gets an error response (or a close)
//!   and the connection pool survives to serve the next client.
//!
//! Deterministic: every generator runs off a fixed-seed SplitMix64.

use mpstream_core::SplitMix64;
use mpstream_serve::http::{
    parse_request, ParseError, MAX_BODY, MAX_HEADERS, MAX_HEADER_LINE, MAX_REQUEST_LINE,
};
use std::io::BufReader;

fn parse(bytes: &[u8]) -> Result<Option<mpstream_serve::http::Request>, ParseError> {
    parse_request(&mut BufReader::new(bytes))
}

/// A failure must carry a well-defined client-facing status (or be an
/// I/O condition with none); a success must have internally consistent
/// fields. Returns true if the input parsed as a complete request.
fn assert_outcome_sane(bytes: &[u8]) -> bool {
    match parse(bytes) {
        Ok(None) => false,
        Ok(Some(req)) => {
            assert!(!req.method.is_empty());
            assert!(req.method.bytes().all(|b| b.is_ascii_uppercase()));
            assert!(req.path.starts_with('/'));
            assert!(req.headers.len() <= MAX_HEADERS);
            assert!(req.body.len() <= MAX_BODY);
            true
        }
        Err(e) => {
            match e.status() {
                Some(400 | 431 | 413 | 408) => {}
                Some(other) => panic!("unexpected parse status {other} for {e:?}"),
                // Plain I/O errors and idle keep-alive deadlines carry
                // no client-facing status; the connection just closes.
                None => assert!(matches!(
                    e,
                    ParseError::Io(_) | ParseError::TimedOut { mid_request: false }
                )),
            }
            assert!(!e.reason().is_empty());
            false
        }
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _ in 0..2000 {
        let len = rng.gen_index(2048);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        assert_outcome_sane(&bytes);
    }
}

/// Byte soup biased toward HTTP-looking tokens, which reaches much
/// deeper into the parser than uniform noise.
#[test]
fn structured_soup_never_panics() {
    const TOKENS: &[&str] = &[
        "GET ",
        "POST ",
        "PUT ",
        "get ",
        "/jobs",
        "/jobs/1/results",
        "?offset=1&limit=",
        " HTTP/1.1",
        " HTTP/1.0",
        " HTTP/9.9",
        "\r\n",
        "\n",
        "\r",
        "Content-Length: ",
        "Content-Length: -1",
        "Content-Length: 99999999999999999999",
        "Transfer-Encoding: chunked",
        "Connection: close",
        "Host: x",
        ": no-name",
        "bad header",
        "0",
        "17",
        "{\"kernels\":\"copy\"}",
        "\u{00}\u{01}\u{ff}",
        " ",
    ];
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _ in 0..2000 {
        let mut wire = String::new();
        for _ in 0..rng.gen_index(24) {
            wire.push_str(TOKENS[rng.gen_index(TOKENS.len())]);
        }
        assert_outcome_sane(wire.as_bytes());
    }
}

/// Random single-byte mutations of a valid request must never panic,
/// and must never yield a request whose fields violate the invariants.
#[test]
fn mutated_valid_requests_never_panic() {
    let valid =
        b"POST /jobs HTTP/1.1\r\nHost: fuzz\r\nContent-Length: 18\r\n\r\n{\"kernels\":\"copy\"}"
            .to_vec();
    assert!(assert_outcome_sane(&valid), "baseline must parse");

    let mut rng = SplitMix64::new(0x5eed_0003);
    for _ in 0..2000 {
        let mut bytes = valid.clone();
        for _ in 0..1 + rng.gen_index(4) {
            match rng.gen_index(4) {
                0 => {
                    // Flip one byte.
                    if !bytes.is_empty() {
                        let i = rng.gen_index(bytes.len());
                        bytes[i] = (rng.next_u64() & 0xff) as u8;
                    }
                }
                1 => {
                    // Truncate.
                    bytes.truncate(rng.gen_index(bytes.len() + 1));
                }
                2 => {
                    // Insert a random byte.
                    let i = rng.gen_index(bytes.len() + 1);
                    bytes.insert(i, (rng.next_u64() & 0xff) as u8);
                }
                _ => {
                    // Delete one byte.
                    if !bytes.is_empty() {
                        let i = rng.gen_index(bytes.len());
                        bytes.remove(i);
                    }
                }
            }
        }
        assert_outcome_sane(&bytes);
    }
}

/// No strict prefix of a valid request with a body may parse as a
/// complete request; every prefix must be clean EOF or a 4xx error.
#[test]
fn truncated_requests_never_parse_complete() {
    let valid = b"POST /jobs HTTP/1.1\r\nHost: fuzz\r\nContent-Length: 4\r\n\r\nbody";
    assert!(assert_outcome_sane(valid));
    for cut in 0..valid.len() {
        let prefix = &valid[..cut];
        match parse(prefix) {
            Ok(None) => assert_eq!(cut, 0, "only the empty prefix is clean EOF"),
            Ok(Some(req)) => panic!("prefix of {cut} bytes parsed as complete: {req:?}"),
            Err(e) => assert_eq!(e.status(), Some(400), "prefix {cut}: {e:?}"),
        }
    }
}

/// Oversized inputs map to 431 (line/header) or 413 (body), at random
/// oversize amounts, without panicking or misclassifying.
#[test]
fn oversized_inputs_get_431_or_413() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    for _ in 0..50 {
        let extra = 1 + rng.gen_index(512);

        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE + extra)
        );
        assert_eq!(parse(long_line.as_bytes()).unwrap_err().status(), Some(431));

        let long_header = format!(
            "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE + extra)
        );
        assert_eq!(
            parse(long_header.as_bytes()).unwrap_err().status(),
            Some(431)
        );

        let big_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + extra
        );
        assert_eq!(parse(big_body.as_bytes()).unwrap_err().status(), Some(413));
    }
}

/// Random pipelines of valid requests parse back in order, then hit
/// clean EOF — the keep-alive loop never loses framing.
#[test]
fn pipelined_streams_keep_framing() {
    let mut rng = SplitMix64::new(0x5eed_0005);
    for _ in 0..200 {
        let n = 1 + rng.gen_index(8);
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for i in 0..n {
            let body: Vec<u8> = (0..rng.gen_index(64))
                .map(|_| b'a' + (rng.next_u64() % 26) as u8)
                .collect();
            let path = format!("/jobs/{i}");
            wire.extend_from_slice(
                format!(
                    "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            wire.extend_from_slice(&body);
            expected.push((path, body));
        }
        let mut reader = BufReader::new(&wire[..]);
        for (path, body) in &expected {
            let req = parse_request(&mut reader).unwrap().unwrap();
            assert_eq!(&req.path, path);
            assert_eq!(&req.body, body);
        }
        assert_eq!(parse_request(&mut reader).unwrap(), None, "clean EOF");
    }
}

/// Over a real socket: garbage requests get an error status or a close,
/// the worker pool survives, and a well-formed request still succeeds.
#[test]
fn server_survives_garbage_over_socket() {
    use mpstream_serve::{ServeOpts, Server};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let dir = std::env::temp_dir().join(format!("mpstream-httpfuzz-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.clone(),
        http_workers: 2,
        queue_capacity: 2,
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let running = std::thread::spawn(move || server.run());

    let mut rng = SplitMix64::new(0x5eed_0006);
    for round in 0..60 {
        let garbage: Vec<u8> = match round % 3 {
            0 => (0..rng.gen_index(256))
                .map(|_| (rng.next_u64() & 0xff) as u8)
                .collect(),
            1 => format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1)).into_bytes(),
            _ => b"NOT A REQUEST\r\n\r\n".to_vec(),
        };
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        conn.write_all(&garbage).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        let _ = conn.read_to_string(&mut reply); // reset mid-read is acceptable
        if let Some(rest) = reply.strip_prefix("HTTP/1.1 ") {
            let status: u16 = rest[..3].parse().unwrap();
            assert!(
                matches!(status, 400 | 404 | 405 | 413 | 431),
                "garbage answered with {status}: {reply:?}"
            );
        } else {
            // No response at all is only acceptable as a plain close.
            assert!(reply.is_empty(), "non-HTTP reply: {reply:?}");
        }
    }

    // The pool must still serve a healthy client after all that.
    let reply =
        mpstream_serve::client::http_request(&addr.to_string(), "GET", "/healthz", b"").unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.text(), "ok\n");

    handle.trigger();
    running.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Start a server with a short per-request deadline for the slowloris
/// tests; returns (addr, shutdown handle, join handle, store dir).
#[allow(clippy::type_complexity)]
fn deadline_server(
    tag: &str,
    deadline: std::time::Duration,
) -> (
    std::net::SocketAddr,
    mpstream_serve::server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    std::path::PathBuf,
) {
    use mpstream_serve::{ServeOpts, Server};
    let dir = std::env::temp_dir().join(format!("mpstream-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let server = Server::bind(ServeOpts {
        addr: "127.0.0.1:0".into(),
        store_dir: dir.clone(),
        http_workers: 2,
        queue_capacity: 2,
        request_deadline: deadline,
        ..ServeOpts::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let running = std::thread::spawn(move || server.run());
    (addr, handle, running, dir)
}

/// Random payloads chunk-encoded with random split points must decode
/// byte-identically through [`ChunkedReader`], whatever read-buffer
/// sizes the client uses — the framing layer may never merge, drop, or
/// duplicate bytes.
#[test]
fn chunked_round_trip_survives_random_split_points() {
    use mpstream_serve::http::{write_chunk, write_chunk_terminator, ChunkedReader};
    use std::io::Read;

    let mut rng = SplitMix64::new(0x5eed_0007);
    for _ in 0..300 {
        let payload: Vec<u8> = (0..rng.gen_index(4096))
            .map(|_| (rng.next_u64() & 0xff) as u8)
            .collect();

        // Encode in randomly sized chunks (empty slices are skipped by
        // the writer, so they must not terminate the body early).
        let mut wire = Vec::new();
        let mut off = 0;
        while off < payload.len() {
            let n = (1 + rng.gen_index(97)).min(payload.len() - off);
            write_chunk(&mut wire, &payload[off..off + n]).unwrap();
            if rng.gen_index(8) == 0 {
                write_chunk(&mut wire, b"").unwrap(); // no-op, not a terminator
            }
            off += n;
        }
        write_chunk_terminator(&mut wire).unwrap();

        // Decode with randomly sized read calls.
        let mut reader = ChunkedReader::new(BufReader::new(&wire[..]));
        let mut decoded = Vec::new();
        let mut buf = [0u8; 128];
        loop {
            let want = 1 + rng.gen_index(buf.len());
            let n = reader.read(&mut buf[..want]).unwrap();
            if n == 0 {
                break;
            }
            decoded.extend_from_slice(&buf[..n]);
        }
        assert_eq!(decoded, payload, "chunked round trip corrupted the body");
        assert!(reader.finished(), "terminator must mark the stream done");
    }
}

/// Every strict prefix of a valid chunked body must surface an error —
/// never a clean EOF, never a silently shortened payload that claims to
/// be finished. This is what lets `mpstream watch` distinguish a cut
/// connection from a complete stream.
#[test]
fn chunked_truncation_ladder_never_claims_finished() {
    use mpstream_serve::http::{write_chunk, write_chunk_terminator, ChunkedReader};
    use std::io::Read;

    let mut rng = SplitMix64::new(0x5eed_0008);
    for _ in 0..40 {
        let mut wire = Vec::new();
        for _ in 0..1 + rng.gen_index(4) {
            let piece: Vec<u8> = (0..1 + rng.gen_index(64))
                .map(|_| (rng.next_u64() & 0xff) as u8)
                .collect();
            write_chunk(&mut wire, &piece).unwrap();
        }
        write_chunk_terminator(&mut wire).unwrap();

        // The full wire decodes cleanly...
        let mut full = ChunkedReader::new(BufReader::new(&wire[..]));
        let mut sink = Vec::new();
        full.read_to_end(&mut sink).unwrap();
        assert!(full.finished());

        // ...and every strict prefix is a loud truncation.
        for cut in 0..wire.len() {
            let mut reader = ChunkedReader::new(BufReader::new(&wire[..cut]));
            let mut sink = Vec::new();
            let err = reader
                .read_to_end(&mut sink)
                .expect_err("truncated chunked body must error");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}: wrong error kind"
            );
            assert!(!reader.finished(), "cut at {cut}: truncation claimed done");
        }
    }
}

/// A client that opens `GET /jobs/N/stream` and then never reads must
/// not stall the worker pool (the streamer runs on its own thread) and
/// must not wedge the job: other clients stay fast, the job completes,
/// and the active-stream gauge drains once the slow socket is dropped.
#[test]
fn slow_stream_reader_does_not_stall_the_pool() {
    use std::io::Write;
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let (addr, handle, running, dir) = deadline_server("httpslowstream", Duration::from_secs(10));
    let addr_s = addr.to_string();

    let metric = |name: &str| -> u64 {
        let text = mpstream_serve::client::http_request(&addr_s, "GET", "/metrics", b"")
            .unwrap()
            .text()
            .to_string();
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} "))?.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };

    // Submit a small sweep job.
    let argv: Vec<String> = [
        "sweep", "--kernel", "copy", "--size", "64K", "--ntimes", "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let req = mpstream_core::cli::parse_args(&argv).unwrap().unwrap();
    let spec = mpstream_serve::spec::request_to_spec(&req).unwrap();
    let reply =
        mpstream_serve::client::http_request(&addr_s, "POST", "/jobs", spec.as_bytes()).unwrap();
    assert_eq!(reply.status, 202, "{}", reply.text());

    // Open the stream and then go silent: never read a byte.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"GET /jobs/1/stream HTTP/1.1\r\nHost: fuzz\r\nConnection: close\r\n\r\n")
        .unwrap();

    // Wait for the streamer to pick the request up off the pool.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metric("mpstream_stream_opened_total") == 0 {
        assert!(Instant::now() < deadline, "stream never opened");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The pool (2 workers) stays responsive with the stream held open.
    for _ in 0..8 {
        let t0 = Instant::now();
        let reply = mpstream_serve::client::http_request(&addr_s, "GET", "/healthz", b"").unwrap();
        assert_eq!(reply.status, 200);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "healthz slowed down behind a held stream"
        );
    }

    // The job still runs to completion behind the unread stream.
    let deadline = Instant::now() + Duration::from_secs(120);
    while metric("mpstream_jobs_completed_total") == 0 {
        assert!(Instant::now() < deadline, "job wedged behind slow stream");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drop the slow socket; the streamer notices (write error or final
    // terminator) and the active gauge returns to zero.
    drop(slow);
    let deadline = Instant::now() + Duration::from_secs(30);
    while metric("mpstream_stream_active_total") != 0 {
        assert!(Instant::now() < deadline, "active-stream gauge leaked");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(metric("mpstream_stream_opened_total") >= 1);

    handle.trigger();
    running.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// A slow-drip client (one header byte at a time, then silence) burns
/// through the total request deadline and gets a loud 408 — the budget
/// covers the whole request, so trickling bytes cannot hold a worker.
#[test]
fn slow_drip_headers_hit_the_deadline_as_408() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    let (addr, handle, running, dir) = deadline_server("httpdrip", Duration::from_millis(500));

    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // Drip a header byte-at-a-time, slower than the budget allows, then
    // go silent mid-header; each byte resets nothing — the deadline is
    // total, not per-read.
    for b in b"X-Slow" {
        conn.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut reply = String::new();
    let _ = conn.read_to_string(&mut reply);
    assert!(reply.starts_with("HTTP/1.1 408"), "want 408, got {reply:?}");

    // The pool is alive and fast clients are unaffected.
    let reply =
        mpstream_serve::client::http_request(&addr.to_string(), "GET", "/healthz", b"").unwrap();
    assert_eq!(reply.status, 200);

    handle.trigger();
    running.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Half-closed sockets: an immediate write-shutdown is a silent close
/// (no 4xx, no stuck worker), and a write-shutdown after a complete
/// request still receives its response on the open read half.
#[test]
fn half_closed_sockets_leave_the_pool_alive() {
    use std::io::{Read, Write};
    use std::net::{Shutdown, TcpStream};
    use std::time::Duration;

    let (addr, handle, running, dir) = deadline_server("httphalf", Duration::from_secs(2));

    // Connect and half-close without sending a byte: clean EOF, the
    // server closes silently without burning the deadline.
    let start = std::time::Instant::now();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    let mut reply = String::new();
    let _ = conn.read_to_string(&mut reply);
    assert!(reply.is_empty(), "EOF must close silently, got {reply:?}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "EOF close must not wait out the deadline"
    );

    // A complete request followed by a write-shutdown is still served:
    // the read half stays open for the response.
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    let mut reply = String::new();
    let _ = conn.read_to_string(&mut reply);
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "half-closed client still gets its response: {reply:?}"
    );

    let reply =
        mpstream_serve::client::http_request(&addr.to_string(), "GET", "/healthz", b"").unwrap();
    assert_eq!(reply.status, 200);

    handle.trigger();
    running.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
