//! Graceful-shutdown signals via the classic self-pipe trick, with no
//! libc crate: `std` already links the platform C library, so the four
//! symbols needed (`pipe`, `write`, `read`, `signal`) are declared
//! directly. The signal handler does the only async-signal-safe thing —
//! write one byte to a pipe — and a watcher thread blocked on the read
//! end turns that byte into an orderly shutdown.
//!
//! On non-Unix platforms this module compiles to a stub whose
//! [`ShutdownSignal::wait`] blocks forever; Ctrl-C then simply kills
//! the process, which is the pre-daemon behaviour.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Write end of the self-pipe, shared with the signal handler.
    static PIPE_WR: AtomicI32 = AtomicI32::new(-1);
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one write(2), errors ignored (a full pipe
        // means a byte is already pending, which is all that's needed).
        let fd = PIPE_WR.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [1u8];
            unsafe {
                let _ = write(fd, byte.as_ptr(), 1);
            }
        }
    }

    /// The read side of the installed handler.
    #[derive(Debug)]
    pub struct ShutdownSignal {
        read_fd: i32,
    }

    impl ShutdownSignal {
        /// Install handlers for SIGTERM and SIGINT. Installing twice in
        /// one process is refused — the pipe is process-global.
        pub fn install() -> std::io::Result<ShutdownSignal> {
            if INSTALLED.swap(true, Ordering::SeqCst) {
                return Err(std::io::Error::other("signal handler already installed"));
            }
            let mut fds = [-1i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(std::io::Error::last_os_error());
            }
            PIPE_WR.store(fds[1], Ordering::SeqCst);
            unsafe {
                signal(SIGTERM, on_signal);
                signal(SIGINT, on_signal);
            }
            Ok(ShutdownSignal { read_fd: fds[0] })
        }

        /// Block until a signal arrives (a byte lands on the pipe).
        pub fn wait(&self) {
            let mut byte = [0u8; 1];
            loop {
                let n = unsafe { read(self.read_fd, byte.as_mut_ptr(), 1) };
                if n >= 1 {
                    return;
                }
                if n == 0 {
                    // Write end closed: treat as shutdown.
                    return;
                }
                // n < 0: EINTR or transient error — retry.
            }
        }

        /// Trigger the pipe from in-process, exactly as a signal would
        /// (used by tests and programmatic shutdown).
        pub fn raise(&self) {
            on_signal(SIGTERM);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Stub: no signals to install; `wait` parks forever.
    #[derive(Debug)]
    pub struct ShutdownSignal;

    impl ShutdownSignal {
        pub fn install() -> std::io::Result<ShutdownSignal> {
            Ok(ShutdownSignal)
        }

        pub fn wait(&self) {
            loop {
                std::thread::park();
            }
        }

        pub fn raise(&self) {}
    }
}

pub use imp::ShutdownSignal;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn raise_unblocks_wait() {
        // One installer per process: this is the only test touching it.
        let sig = Arc::new(ShutdownSignal::install().unwrap());
        assert!(ShutdownSignal::install().is_err(), "second install refused");
        let waiter = Arc::clone(&sig);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            waiter.wait();
            tx.send(()).unwrap();
        });
        // Give the waiter a moment to block, then fire the handler the
        // way a real SIGTERM delivery would.
        std::thread::sleep(Duration::from_millis(50));
        sig.raise();
        rx.recv_timeout(Duration::from_secs(5))
            .expect("wait() returned after signal");
    }
}
