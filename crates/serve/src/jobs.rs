//! The job manager: a bounded queue of submitted sweeps drained by one
//! runner thread onto the core engine.
//!
//! One runner on purpose: each sweep already fans out across the
//! engine's worker pool (`jobs` in the spec), so running jobs serially
//! keeps device-model timing honest and makes every job's results
//! independent of what else was queued. Backpressure is explicit — a
//! full queue refuses the submit (the HTTP layer turns that into a 503
//! with `Retry-After`) instead of buffering unboundedly.
//!
//! Cancellation is cooperative via the engine's [`CancelToken`]: a
//! user cancel marks the job `Cancelled`; a daemon shutdown cancels the
//! token too but re-queues the job, so the next start resumes it from
//! its checkpoint. Either way the points already measured are on disk —
//! the engine checkpoints each one as its worker finishes.

use crate::metrics::Metrics;
use crate::spec;
use crate::store::{JobRecord, JobState, ResultStore};
use crate::tenant::ANONYMOUS;
use mpstream_core::cli::{self, CliRequest};
use mpstream_core::{CancelToken, Checkpoint};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The tenant a record belongs to, with pre-tenancy journals ("") owned
/// by the anonymous tenant.
fn tenant_of(rec: &JobRecord) -> &str {
    if rec.tenant.is_empty() {
        ANONYMOUS
    } else {
        &rec.tenant
    }
}

/// A pluggable job execution strategy. Runs one job to completion and
/// returns `Ok(Some(report))` when finished, `Ok(None)` when the token
/// cancelled it mid-run (the manager then decides cancelled-vs-requeue),
/// or `Err` on hard failure. The default executes on the in-process
/// engine (`JobManager::execute_local`); the cluster coordinator
/// installs a shard-dispatching executor instead.
pub type JobExecutor =
    Arc<dyn Fn(&JobRecord, &CancelToken) -> Result<Option<String>, String> + Send + Sync>;

/// Newtype so `JobManager` can keep deriving `Debug`.
struct Exec(JobExecutor);

impl std::fmt::Debug for Exec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobExecutor")
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job queue is at capacity — retry later (HTTP 503).
    Busy {
        /// Configured queue capacity, for the error body.
        capacity: usize,
    },
    /// The spec failed validation (HTTP 400).
    Invalid(String),
    /// The store could not record the job (HTTP 500).
    Store(String),
    /// The tenant is at its queue quota — retry later (HTTP 429).
    Quota {
        /// The tenant that hit its quota.
        tenant: String,
        /// The tenant's configured quota, for the error body.
        quota: usize,
    },
}

#[derive(Debug)]
struct Running {
    id: u64,
    token: CancelToken,
    user_cancelled: bool,
}

#[derive(Debug, Default)]
struct Inner {
    queue: VecDeque<u64>,
    running: Option<Running>,
    shutdown: bool,
    /// Live (queued or running) jobs per tenant — what queue quotas
    /// count against. A slot is taken at submit and released the moment
    /// the job stops being live: queued-cancel or terminal transition.
    live: HashMap<String, usize>,
}

/// The manager. Cheap to share; all state is behind one mutex.
#[derive(Debug)]
pub struct JobManager {
    store: Arc<ResultStore>,
    metrics: Arc<Metrics>,
    capacity: usize,
    inner: Mutex<Inner>,
    wake: Condvar,
    executor: OnceLock<Exec>,
}

impl JobManager {
    /// Build a manager over a store, re-queuing any job a previous
    /// daemon left `queued` or `running` (in id order).
    pub fn new(store: Arc<ResultStore>, metrics: Arc<Metrics>, capacity: usize) -> Arc<Self> {
        let mut inner = Inner::default();
        for rec in store.jobs() {
            if rec.state.is_live() {
                *inner.live.entry(tenant_of(&rec).to_string()).or_default() += 1;
                inner.queue.push_back(rec.id);
            }
        }
        Metrics::set(&metrics.queue_depth, inner.queue.len() as u64);
        Arc::new(JobManager {
            store,
            metrics,
            capacity: capacity.max(1),
            inner: Mutex::new(inner),
            wake: Condvar::new(),
            executor: OnceLock::new(),
        })
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<ResultStore> {
        &self.store
    }

    /// The metrics registry jobs are accounted against.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Replace the local-engine execution path with a custom
    /// [`JobExecutor`]. First caller wins; later calls are ignored.
    /// Install before [`spawn_runner`](Self::spawn_runner).
    pub fn set_executor(&self, exec: JobExecutor) {
        let _ = self.executor.set(Exec(exec));
    }

    /// Jobs currently waiting.
    pub fn queue_depth(&self) -> usize {
        self.inner.lock().expect("jobs mutex poisoned").queue.len()
    }

    /// Validate and enqueue a spec under the anonymous tenant with no
    /// quota. Returns the queued record.
    pub fn submit(&self, spec_line: &str) -> Result<JobRecord, SubmitError> {
        self.submit_for(spec_line, ANONYMOUS, 0)
    }

    /// Live (queued or running) jobs attributed to `tenant`.
    pub fn live_jobs(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .expect("jobs mutex poisoned")
            .live
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Validate and enqueue a spec for `tenant`, holding it to `quota`
    /// live jobs (0 = unlimited). Returns the queued record.
    pub fn submit_for(
        &self,
        spec_line: &str,
        tenant: &str,
        quota: usize,
    ) -> Result<JobRecord, SubmitError> {
        let req = spec::spec_to_request(spec_line).map_err(SubmitError::Invalid)?;
        let total = spec::total_points(&req);
        let mut inner = self.inner.lock().expect("jobs mutex poisoned");
        if inner.shutdown {
            return Err(SubmitError::Busy {
                capacity: self.capacity,
            });
        }
        if inner.queue.len() >= self.capacity {
            Metrics::inc(&self.metrics.http_busy);
            return Err(SubmitError::Busy {
                capacity: self.capacity,
            });
        }
        let live = inner.live.get(tenant).copied().unwrap_or(0);
        if quota > 0 && live >= quota {
            return Err(SubmitError::Quota {
                tenant: tenant.to_string(),
                quota,
            });
        }
        let rec = JobRecord {
            id: self.store.next_id(),
            state: JobState::Queued,
            spec: spec_line.to_string(),
            total,
            error: String::new(),
            tenant: tenant.to_string(),
            updated_unix: 0,
        };
        self.store
            .record(&rec)
            .map_err(|e| SubmitError::Store(e.to_string()))?;
        *inner.live.entry(tenant.to_string()).or_default() += 1;
        inner.queue.push_back(rec.id);
        Metrics::set(&self.metrics.queue_depth, inner.queue.len() as u64);
        Metrics::inc(&self.metrics.jobs_submitted);
        drop(inner);
        self.wake.notify_all();
        Ok(rec)
    }

    /// Release `tenant`'s quota slot for a job that stopped being live.
    fn release_slot(inner: &mut Inner, tenant: &str) {
        if let Some(n) = inner.live.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.live.remove(tenant);
            }
        }
    }

    /// A job's record plus its completed-point count.
    pub fn status(&self, id: u64) -> Option<(JobRecord, usize)> {
        let rec = self.store.get(id)?;
        let done = self.store.done_points(id);
        Some((rec, done))
    }

    /// Cancel a job. Queued jobs become `Cancelled` immediately; a
    /// running job gets its token cancelled and converges to
    /// `Cancelled` when the engine notices. Returns the job's state
    /// after the call, `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let rec = self.store.get(id)?;
        let mut inner = self.inner.lock().expect("jobs mutex poisoned");
        if let Some(pos) = inner.queue.iter().position(|&q| q == id) {
            inner.queue.remove(pos);
            // The job will never run: its tenant's quota slot frees
            // right now, not when the runner would have reached it.
            Self::release_slot(&mut inner, tenant_of(&rec));
            Metrics::set(&self.metrics.queue_depth, inner.queue.len() as u64);
            drop(inner);
            let cancelled = JobRecord {
                state: JobState::Cancelled,
                ..rec
            };
            self.store.record(&cancelled).ok()?;
            Metrics::inc(&self.metrics.jobs_cancelled);
            return Some(JobState::Cancelled);
        }
        if let Some(running) = inner.running.as_mut() {
            if running.id == id {
                running.user_cancelled = true;
                running.token.cancel();
                return Some(JobState::Running);
            }
        }
        Some(rec.state)
    }

    /// Begin shutdown: refuse new submits, cancel the running job's
    /// token *without* marking it user-cancelled (so it re-queues), and
    /// wake the runner so it can exit. Queued jobs stay queued in the
    /// journal and resume on the next start.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("jobs mutex poisoned");
        inner.shutdown = true;
        if let Some(running) = inner.running.as_ref() {
            running.token.cancel();
        }
        drop(inner);
        self.wake.notify_all();
    }

    /// Start the runner thread. Exits when [`shutdown`](Self::shutdown)
    /// is called (after re-queuing any in-flight job).
    pub fn spawn_runner(self: &Arc<Self>) -> JoinHandle<()> {
        let mgr = Arc::clone(self);
        std::thread::Builder::new()
            .name("mpstream-job-runner".into())
            .spawn(move || mgr.runner_loop())
            .expect("spawn job runner")
    }

    fn runner_loop(&self) {
        loop {
            let (id, token) = {
                let mut inner = self.inner.lock().expect("jobs mutex poisoned");
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        let token = CancelToken::new();
                        inner.running = Some(Running {
                            id,
                            token: token.clone(),
                            user_cancelled: false,
                        });
                        Metrics::set(&self.metrics.queue_depth, inner.queue.len() as u64);
                        Metrics::set(&self.metrics.jobs_running, 1);
                        break (id, token);
                    }
                    inner = self.wake.wait(inner).expect("jobs mutex poisoned");
                }
            };

            self.run_one(id, token);

            let mut inner = self.inner.lock().expect("jobs mutex poisoned");
            inner.running = None;
            Metrics::set(&self.metrics.jobs_running, 0);
            // A terminal landing releases the tenant's quota slot; a
            // shutdown re-queue keeps it (the job is still live).
            let terminal = match self.store.get(id) {
                Some(rec) if !rec.state.is_live() => {
                    Self::release_slot(&mut inner, tenant_of(&rec));
                    true
                }
                _ => false,
            };
            drop(inner);
            if terminal {
                // Finished jobs grow the store; hold it to its bounds.
                if let Err(why) = self.store.run_retention() {
                    eprintln!("mpstream serve: retention pass failed: {why}");
                }
            }
        }
    }

    /// Execute one job end to end, recording its terminal state.
    fn run_one(&self, id: u64, token: CancelToken) {
        let Some(rec) = self.store.get(id) else {
            return;
        };
        if let Err(why) = self.store.record(&JobRecord {
            state: JobState::Running,
            ..rec.clone()
        }) {
            let _ = self.store.record(&JobRecord {
                state: JobState::Failed,
                error: why.to_string(),
                ..rec
            });
            Metrics::inc(&self.metrics.jobs_failed);
            return;
        }

        match self.execute(&rec, &token) {
            Ok(()) => {}
            Err(why) => {
                let _ = self.store.record(&JobRecord {
                    state: JobState::Failed,
                    error: why,
                    ..rec
                });
                Metrics::inc(&self.metrics.jobs_failed);
            }
        }
    }

    /// Run `rec` through the installed executor (or the local engine)
    /// and record its terminal state.
    fn execute(&self, rec: &JobRecord, token: &CancelToken) -> Result<(), String> {
        let report = match self.executor.get() {
            Some(Exec(exec)) => exec(rec, token)?,
            None => self.execute_local(rec, token)?,
        };

        let Some(report) = report else {
            // Cancelled mid-run. A user cancel converges to Cancelled;
            // a shutdown drain re-queues for the next start — finished
            // points are already in the store either way.
            let user_cancelled = {
                let inner = self.inner.lock().expect("jobs mutex poisoned");
                inner
                    .running
                    .as_ref()
                    .is_some_and(|r| r.id == rec.id && r.user_cancelled)
            };
            let state = if user_cancelled {
                Metrics::inc(&self.metrics.jobs_cancelled);
                JobState::Cancelled
            } else {
                JobState::Queued
            };
            self.store
                .record(&JobRecord {
                    state,
                    ..rec.clone()
                })
                .map_err(|e| e.to_string())?;
            return Ok(());
        };

        self.store
            .write_report(rec.id, &report)
            .map_err(|e| format!("report: {e}"))?;
        self.store
            .record(&JobRecord {
                state: JobState::Done,
                ..rec.clone()
            })
            .map_err(|e| e.to_string())?;
        Metrics::inc(&self.metrics.jobs_completed);
        Ok(())
    }

    /// The default execution path: the in-process engine, resuming from
    /// the job's checkpoint. `None` when the token fired mid-run.
    fn execute_local(
        &self,
        rec: &JobRecord,
        token: &CancelToken,
    ) -> Result<Option<String>, String> {
        let req: CliRequest = spec::spec_to_request(&rec.spec)?;
        let engine = cli::build_engine(&req, None).with_cancel(Some(token.clone()));
        let ckpt = Checkpoint::resume(self.store.checkpoint_path(rec.id))
            .map_err(|e| format!("checkpoint: {e}"))?;
        if req.mode == cli::CliMode::Dse {
            let result = cli::run_dse(&engine, &req, Some(&ckpt));
            self.metrics.absorb_dse(&result);
            if token.is_cancelled() {
                return Ok(None);
            }
            return Ok(Some(cli::render_dse_report(&req, &result)));
        }
        let result = cli::run_sweep(&engine, &req, Some(&ckpt));
        self.metrics.absorb_sweep(&result);
        if token.is_cancelled() {
            return Ok(None);
        }
        Ok(Some(cli::render_sweep_report(&req, &result)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mpstream-jobs-{tag}-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn manager(dir: &PathBuf, capacity: usize) -> Arc<JobManager> {
        let store = Arc::new(ResultStore::open(dir).unwrap());
        JobManager::new(store, Arc::new(Metrics::default()), capacity)
    }

    const TINY: &str =
        "{\"kernels\":\"copy\",\"size_bytes\":65536,\"vectors\":\"1,2\",\"ntimes\":1,\"jobs\":1}";

    fn wait_for(mgr: &JobManager, id: u64, state: JobState) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (rec, _) = mgr.status(id).expect("job exists");
            if rec.state == state {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} stuck in {:?} waiting for {state:?}",
                rec.state
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn submit_run_report_lifecycle() {
        let dir = temp_dir("lifecycle");
        let mgr = manager(&dir, 4);
        let runner = mgr.spawn_runner();
        let rec = mgr.submit(TINY).unwrap();
        assert_eq!(rec.total, 2);
        wait_for(&mgr, rec.id, JobState::Done);
        let (done, points) = mgr.status(rec.id).unwrap();
        assert_eq!(points, 2, "both points checkpointed");
        assert_eq!(done.state, JobState::Done);
        let report = mgr.store().read_report(rec.id).unwrap();
        assert!(report.contains("sweep on"), "{report}");
        mgr.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_queue_refuses_with_busy() {
        let dir = temp_dir("busy");
        let mgr = manager(&dir, 1);
        // No runner: the queue cannot drain.
        mgr.submit(TINY).unwrap();
        match mgr.submit(TINY) {
            Err(SubmitError::Busy { capacity }) => assert_eq!(capacity, 1),
            other => panic!("expected Busy, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_spec_is_rejected_without_a_job() {
        let dir = temp_dir("invalid");
        let mgr = manager(&dir, 4);
        assert!(matches!(
            mgr.submit("{\"target\":\"tpu\"}"),
            Err(SubmitError::Invalid(_))
        ));
        assert!(mgr.store().jobs().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queued_job_cancels_immediately() {
        let dir = temp_dir("cancel");
        let mgr = manager(&dir, 4);
        // No runner: the job stays queued.
        let rec = mgr.submit(TINY).unwrap();
        assert_eq!(mgr.cancel(rec.id), Some(JobState::Cancelled));
        assert_eq!(mgr.store().get(rec.id).unwrap().state, JobState::Cancelled);
        assert_eq!(mgr.cancel(999), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_quota_holds_one_tenant_without_touching_the_other() {
        let dir = temp_dir("quota");
        let mgr = manager(&dir, 8);
        // No runner: everything stays queued and live.
        mgr.submit_for(TINY, "bursty", 2).unwrap();
        mgr.submit_for(TINY, "bursty", 2).unwrap();
        match mgr.submit_for(TINY, "bursty", 2) {
            Err(SubmitError::Quota { tenant, quota }) => {
                assert_eq!(tenant, "bursty");
                assert_eq!(quota, 2);
            }
            other => panic!("expected Quota, got {other:?}"),
        }
        assert_eq!(mgr.live_jobs("bursty"), 2);
        // The other tenant and the unlimited path are unaffected.
        mgr.submit_for(TINY, "steady", 4).unwrap();
        mgr.submit(TINY).unwrap();
        assert_eq!(mgr.live_jobs("steady"), 1);
        assert_eq!(mgr.live_jobs(ANONYMOUS), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelling_a_queued_job_releases_its_quota_slot() {
        let dir = temp_dir("quota-cancel");
        let mgr = manager(&dir, 8);
        let a = mgr.submit_for(TINY, "bursty", 2).unwrap();
        mgr.submit_for(TINY, "bursty", 2).unwrap();
        assert!(matches!(
            mgr.submit_for(TINY, "bursty", 2),
            Err(SubmitError::Quota { .. })
        ));
        assert_eq!(mgr.cancel(a.id), Some(JobState::Cancelled));
        assert_eq!(mgr.live_jobs("bursty"), 1, "slot freed immediately");
        mgr.submit_for(TINY, "bursty", 2)
            .expect("freed slot admits the next submit");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quota_slots_rebuild_from_a_reopened_journal() {
        let dir = temp_dir("quota-reopen");
        {
            let mgr = manager(&dir, 8);
            mgr.submit_for(TINY, "bursty", 2).unwrap();
            let done = mgr.submit_for(TINY, "steady", 0).unwrap();
            mgr.cancel(done.id);
        }
        let mgr = manager(&dir, 8);
        assert_eq!(mgr.live_jobs("bursty"), 1, "queued job still holds a slot");
        assert_eq!(mgr.live_jobs("steady"), 0, "cancelled job holds none");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finished_jobs_release_their_quota_slot() {
        let dir = temp_dir("quota-finish");
        let mgr = manager(&dir, 8);
        let runner = mgr.spawn_runner();
        let rec = mgr.submit_for(TINY, "bursty", 1).unwrap();
        wait_for(&mgr, rec.id, JobState::Done);
        // The slot frees after the terminal transition lands.
        let deadline = Instant::now() + Duration::from_secs(10);
        while mgr.live_jobs("bursty") != 0 {
            assert!(Instant::now() < deadline, "slot never released");
            std::thread::sleep(Duration::from_millis(5));
        }
        mgr.submit_for(TINY, "bursty", 1)
            .expect("slot is free again");
        mgr.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_jobs_requeue_on_reopen() {
        let dir = temp_dir("requeue");
        {
            let mgr = manager(&dir, 4);
            mgr.submit(TINY).unwrap();
        }
        let mgr = manager(&dir, 4);
        assert_eq!(mgr.queue_depth(), 1, "queued job came back");
        let runner = mgr.spawn_runner();
        wait_for(&mgr, 1, JobState::Done);
        mgr.shutdown();
        runner.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
