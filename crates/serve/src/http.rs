//! A deliberately small HTTP/1.1 implementation on `std::io` — just
//! enough protocol for the serve daemon's JSON/text endpoints, written
//! defensively because it faces arbitrary bytes from the network.
//!
//! Supported: request lines up to [`MAX_REQUEST_LINE`] bytes, up to
//! [`MAX_HEADERS`] headers of up to [`MAX_HEADER_LINE`] bytes each,
//! `Content-Length` bodies up to [`MAX_BODY`] bytes, keep-alive and
//! pipelining, and chunked transfer encoding on *responses* (the
//! `/jobs/N/stream` live feed: [`write_chunked_header`] /
//! [`write_chunk`] / [`write_chunk_terminator`] server-side,
//! [`ChunkedReader`] client-side). Not supported (rejected, never
//! guessed at): chunked request bodies, HTTP/2 upgrade, multiline
//! headers. The parser must never panic — `tests/serve_http.rs` fuzzes
//! it with seeded byte soup to hold it to that.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line (method + target + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path portion of the target, before any `?`.
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers, with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed, with the status code the
/// connection should answer before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or body framing → 400.
    Bad(&'static str),
    /// Request line or a header exceeded its size limit → 431.
    TooLarge(&'static str),
    /// Declared body exceeds [`MAX_BODY`] → 413.
    BodyTooLarge,
    /// The read deadline fired. `mid_request` distinguishes a client
    /// that started a request and stalled (slowloris — owed a 408 so it
    /// learns why it was cut off) from a keep-alive connection that
    /// simply went idle between requests (closed silently).
    TimedOut {
        /// Had any byte of the current request been received?
        mid_request: bool,
    },
    /// The underlying socket failed (reset, broken); no response owed.
    Io(std::io::ErrorKind),
}

impl ParseError {
    /// Status code to answer with (`None`: the socket is gone or owed
    /// nothing).
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::Bad(_) => Some(400),
            ParseError::TooLarge(_) => Some(431),
            ParseError::BodyTooLarge => Some(413),
            ParseError::TimedOut { mid_request: true } => Some(408),
            ParseError::TimedOut { mid_request: false } => None,
            ParseError::Io(_) => None,
        }
    }

    /// Human-readable reason, used as the error response body.
    pub fn reason(&self) -> String {
        match self {
            ParseError::Bad(why) => format!("bad request: {why}"),
            ParseError::TooLarge(what) => format!("{what} too large"),
            ParseError::BodyTooLarge => format!("body exceeds {MAX_BODY} bytes"),
            ParseError::TimedOut { .. } => "request deadline exceeded".to_string(),
            ParseError::Io(kind) => format!("io: {kind:?}"),
        }
    }
}

/// Is this I/O error a read timeout? Both kinds occur in the wild for
/// an expired `SO_RCVTIMEO`, depending on platform.
fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// A [`TcpStream`] reader that enforces a *total* deadline across all
/// reads since the last [`arm`](Self::arm) — the defense `server.rs`
/// mounts against slow-drip (slowloris) clients. A plain socket read
/// timeout only bounds the gap between bytes; a client trickling one
/// byte per interval holds a pool worker forever. Here every read gets
/// only the time remaining until the deadline, and an exhausted budget
/// fails with [`std::io::ErrorKind::TimedOut`] even if bytes are still
/// arriving.
#[derive(Debug)]
pub struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
}

impl DeadlineStream {
    /// Wrap a stream with `budget` on the clock.
    pub fn new(stream: TcpStream, budget: Duration) -> DeadlineStream {
        DeadlineStream {
            stream,
            deadline: Instant::now() + budget,
        }
    }

    /// Reset the deadline to `budget` from now — called between
    /// requests so keep-alive connections get a fresh budget per
    /// request, not per connection.
    pub fn arm(&mut self, budget: Duration) {
        self.deadline = Instant::now() + budget;
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf)
    }
}

/// Read one line terminated by `\n` without ever buffering more than
/// `limit` bytes; strips the trailing `\r\n` or `\n`. `Ok(None)` is
/// clean EOF before any byte — how a keep-alive connection ends.
fn read_limited_line(
    r: &mut impl BufRead,
    limit: usize,
    what: &'static str,
) -> Result<Option<Vec<u8>>, ParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(ParseError::Bad("truncated line"))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                if line.len() >= limit {
                    return Err(ParseError::TooLarge(what));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => {
                // A timeout mid-line means the peer started a request
                // and stalled; an empty line leaves the verdict to the
                // caller (request line: idle; header line: mid-request).
                return Err(ParseError::TimedOut {
                    mid_request: !line.is_empty(),
                });
            }
            Err(e) => return Err(ParseError::Io(e.kind())),
        }
    }
}

/// Upgrade a timeout to mid-request: past the request line, any stall
/// is a started request whatever the current line holds.
fn timeout_is_mid_request(e: ParseError) -> ParseError {
    match e {
        ParseError::TimedOut { .. } => ParseError::TimedOut { mid_request: true },
        other => other,
    }
}

/// Parse the query string portion (`a=1&b=two`) into pairs. No
/// percent-decoding: the daemon's parameter values (labels, counts) are
/// plain tokens by construction.
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (part.to_string(), String::new()),
        })
        .collect()
}

/// Parse the next request off a connection. `Ok(None)` means the peer
/// closed cleanly between requests (normal keep-alive shutdown).
pub fn parse_request(r: &mut impl BufRead) -> Result<Option<Request>, ParseError> {
    let Some(line) = read_limited_line(r, MAX_REQUEST_LINE, "request line")? else {
        return Ok(None);
    };
    let line = String::from_utf8(line).map_err(|_| ParseError::Bad("request line not utf-8"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Bad("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Bad("malformed method"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Bad("unsupported version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad("target must be absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_limited_line(r, MAX_HEADER_LINE, "header")
            .map_err(timeout_is_mid_request)?
            .ok_or(ParseError::Bad("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge("header count"));
        }
        let line = String::from_utf8(line).map_err(|_| ParseError::Bad("header not utf-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Bad("header missing colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Bad("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let lookup = |n: &str| {
        headers
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, v)| v.as_str())
    };
    if lookup("transfer-encoding").is_some() {
        return Err(ParseError::Bad("transfer-encoding not supported"));
    }
    let body = match lookup("content-length") {
        None => Vec::new(),
        Some(v) => {
            let len: usize = v
                .parse()
                .map_err(|_| ParseError::Bad("invalid content-length"))?;
            if len > MAX_BODY {
                return Err(ParseError::BodyTooLarge);
            }
            let mut body = vec![0u8; len];
            let mut filled = 0;
            while filled < len {
                match r.read(&mut body[filled..]) {
                    Ok(0) => return Err(ParseError::Bad("truncated body")),
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if is_timeout(e.kind()) => {
                        return Err(ParseError::TimedOut { mid_request: true })
                    }
                    Err(e) => return Err(ParseError::Io(e.kind())),
                }
            }
            body
        }
    };

    Ok(Some(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    }))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// Start a response with the given status code.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// Flat-JSON response (one object per line).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Add a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize onto a connection. `close` adds `Connection: close`.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        if close {
            write!(w, "Connection: close\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// The reason phrase for the status codes this daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

// ---------------------------------------------------------------------
// Chunked transfer encoding — responses only. The `/jobs/N/stream`
// endpoint cannot know `Content-Length` up front (records arrive as the
// job runs), so it is the one place the daemon frames a response with
// chunks instead of a length. The writer side is three small free
// functions so the streamer thread in `server.rs` can compose them
// around its own loop; the reader side is an incremental decoder so
// `mpstream watch` can surface each record the moment its chunk lands,
// not when the response ends.
// ---------------------------------------------------------------------

/// Longest accepted chunk-size line on the client side, bytes. Real
/// size lines are a few hex digits; anything near this limit is a
/// corrupt or hostile stream.
pub const MAX_CHUNK_SIZE_LINE: usize = 64;

/// Write the status line and headers of a chunked response. After this,
/// the body is whatever sequence of [`write_chunk`] calls follows,
/// ended by [`write_chunk_terminator`]. Always `Connection: close` —
/// a stream ends with its connection.
pub fn write_chunked_header(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        reason_phrase(status),
        content_type
    )?;
    w.flush()
}

/// Write one chunk: hex size line, payload, CRLF. Empty payloads are
/// skipped — a zero-size chunk is the terminator, and emitting one
/// mid-stream would end the body early. Flushes, because each chunk is
/// a live record the peer is waiting on.
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// End the chunked body: the zero-size chunk plus the empty trailer
/// section.
pub fn write_chunk_terminator(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Incremental client-side decoder for a chunked response body: a
/// [`Read`] over the decoded bytes that never buffers a whole chunk,
/// so a caller reading line-by-line sees each record as soon as its
/// chunk arrives. Malformed framing (bad size line, missing CRLF)
/// fails with [`std::io::ErrorKind::InvalidData`]; EOF before the
/// terminator fails with [`std::io::ErrorKind::UnexpectedEof`] — a
/// truncated stream is never mistaken for a complete one.
#[derive(Debug)]
pub struct ChunkedReader<R> {
    inner: R,
    /// Undecoded bytes left in the current chunk.
    remaining: usize,
    /// Saw the zero-size terminator chunk and its trailer end.
    finished: bool,
}

impl<R: BufRead> ChunkedReader<R> {
    /// Decode the chunked body arriving on `inner` (positioned just
    /// past the response headers).
    pub fn new(inner: R) -> ChunkedReader<R> {
        ChunkedReader {
            inner,
            remaining: 0,
            finished: false,
        }
    }

    /// Did the stream end with a proper terminator chunk (as opposed to
    /// the caller just stopping early)?
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Read one framing line (size line, chunk-trailing CRLF, trailer
    /// line), bounded, stripped of its `\r\n`.
    fn framing_line(&mut self) -> std::io::Result<Vec<u8>> {
        let mut line = Vec::new();
        loop {
            let mut byte = [0u8; 1];
            match self.inner.read(&mut byte) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "stream truncated mid-framing",
                    ));
                }
                Ok(_) => {
                    if byte[0] == b'\n' {
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        } else {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "chunk framing line not CRLF-terminated",
                            ));
                        }
                        return Ok(line);
                    }
                    if line.len() >= MAX_CHUNK_SIZE_LINE {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "chunk framing line too long",
                        ));
                    }
                    line.push(byte[0]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Parse the next chunk-size line; handles `;ext` chunk extensions
    /// by ignoring them, as the RFC requires of recipients.
    fn next_chunk_size(&mut self) -> std::io::Result<usize> {
        let line = self.framing_line()?;
        let line = std::str::from_utf8(&line)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "size not utf-8"))?;
        let digits = line.split(';').next().unwrap_or("").trim();
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed chunk size",
            ));
        }
        usize::from_str_radix(digits, 16).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "chunk size overflow")
        })
    }
}

impl<R: BufRead> Read for ChunkedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.finished || buf.is_empty() {
            return Ok(0);
        }
        if self.remaining == 0 {
            let size = self.next_chunk_size()?;
            if size == 0 {
                // Trailer section: zero or more header lines, then an
                // empty line. Our server sends none, but tolerate them.
                loop {
                    if self.framing_line()?.is_empty() {
                        break;
                    }
                }
                self.finished = true;
                return Ok(0);
            }
            self.remaining = size;
        }
        let want = buf.len().min(self.remaining);
        let n = match self.inner.read(&mut buf[..want]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream truncated mid-chunk",
                ));
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => return self.read(buf),
            Err(e) => return Err(e),
        };
        self.remaining -= n;
        if self.remaining == 0 {
            // The CRLF that closes every chunk's payload.
            let sep = self.framing_line()?;
            if !sep.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "chunk payload not followed by CRLF",
                ));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req = parse(b"GET /jobs/3/results?offset=10&limit=5 HTTP/1.1\r\nHost: x\r\nX-Mixed-Case: Value\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/3/results");
        assert_eq!(req.query_param("offset"), Some("10"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.header("x-mixed-case"), Some("Value"));
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_and_pipelined_followup() {
        let wire = b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let first = parse_request(&mut r).unwrap().unwrap();
        assert_eq!(first.body, b"body");
        let second = parse_request(&mut r).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(second.wants_close());
        assert_eq!(parse_request(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            match parse(bad) {
                Err(ParseError::Bad(_)) => {}
                other => panic!(
                    "{:?} should be Bad, got {other:?}",
                    String::from_utf8_lossy(bad)
                ),
            }
        }
    }

    #[test]
    fn truncated_requests_are_bad_not_eof() {
        assert!(matches!(
            parse(b"GET /x HT"),
            Err(ParseError::Bad("truncated line"))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: y\r\n"),
            Err(ParseError::Bad("eof in headers"))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Bad("truncated body"))
        ));
    }

    #[test]
    fn oversize_lines_and_bodies_are_rejected_with_the_right_status() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(long_line.as_bytes()).unwrap_err().status(), Some(431));

        let long_header = format!(
            "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        assert_eq!(
            parse(long_header.as_bytes()).unwrap_err().status(),
            Some(431)
        );

        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS)
                .map(|i| format!("X-{i}: v\r\n"))
                .collect::<String>()
        );
        assert_eq!(
            parse(many_headers.as_bytes()).unwrap_err(),
            ParseError::TooLarge("header count")
        );

        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(huge_body.as_bytes()).unwrap_err().status(), Some(413));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    /// A loopback pair: the returned closure writes bytes client-side,
    /// the `DeadlineStream` wraps the accepted server side.
    fn loopback(budget: Duration) -> (std::net::TcpStream, DeadlineStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, DeadlineStream::new(server, budget))
    }

    #[test]
    fn deadline_fires_mid_request_as_408() {
        let (mut client, server) = loopback(Duration::from_millis(80));
        // Slowloris: start a request, then stall forever.
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nX-Slow:")
            .unwrap();
        client.flush().unwrap();
        let err = parse_request(&mut BufReader::new(server)).unwrap_err();
        assert_eq!(err, ParseError::TimedOut { mid_request: true });
        assert_eq!(err.status(), Some(408));
    }

    #[test]
    fn deadline_on_idle_keepalive_is_silent() {
        let (_client, server) = loopback(Duration::from_millis(80));
        // No bytes at all: an idle keep-alive connection, owed nothing.
        let err = parse_request(&mut BufReader::new(server)).unwrap_err();
        assert_eq!(err, ParseError::TimedOut { mid_request: false });
        assert_eq!(err.status(), None);
    }

    #[test]
    fn deadline_rearm_grants_a_fresh_budget() {
        let (mut client, server) = loopback(Duration::from_millis(60));
        client.write_all(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(server);
        let first = parse_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        std::thread::sleep(Duration::from_millis(80));
        // Budget is spent; without re-arming the next parse would 408
        // even though the client sends promptly.
        reader.get_mut().arm(Duration::from_millis(500));
        client.write_all(b"GET /b HTTP/1.1\r\n\r\n").unwrap();
        let second = parse_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/b");
    }

    #[test]
    fn chunked_writer_and_reader_round_trip() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"first record\n").unwrap();
        write_chunk(&mut wire, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut wire, b"second\n").unwrap();
        write_chunk_terminator(&mut wire).unwrap();

        let mut r = ChunkedReader::new(BufReader::new(&wire[..]));
        let mut decoded = String::new();
        r.read_to_string(&mut decoded).unwrap();
        assert_eq!(decoded, "first record\nsecond\n");
        assert!(r.finished());
    }

    #[test]
    fn chunked_header_carries_transfer_encoding_and_close() {
        let mut wire = Vec::new();
        write_chunked_header(&mut wire, 200, "application/json").unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        assert!(!text.contains("Content-Length"));
    }

    #[test]
    fn chunked_reader_ignores_extensions_and_trailers() {
        let wire = b"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n";
        let mut r = ChunkedReader::new(BufReader::new(&wire[..]));
        let mut decoded = String::new();
        r.read_to_string(&mut decoded).unwrap();
        assert_eq!(decoded, "hello");
        assert!(r.finished());
    }

    #[test]
    fn chunked_reader_rejects_malformed_framing() {
        for (bad, why) in [
            (&b"zz\r\nhello\r\n0\r\n\r\n"[..], "non-hex size"),
            (b"\r\nhello\r\n0\r\n\r\n", "empty size line"),
            (b"5\nhello\r\n0\r\n\r\n", "bare-LF size line"),
            (b"5\r\nhelloXX0\r\n\r\n", "payload not CRLF-closed"),
        ] {
            let mut r = ChunkedReader::new(BufReader::new(bad));
            let err = r.read_to_string(&mut String::new()).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "{why}: {err:?}"
            );
        }
    }

    #[test]
    fn chunked_reader_truncation_is_unexpected_eof_never_success() {
        let mut full = Vec::new();
        write_chunk(&mut full, b"one\n").unwrap();
        write_chunk(&mut full, b"two\n").unwrap();
        write_chunk_terminator(&mut full).unwrap();
        // Every proper prefix either yields a clean partial decode that
        // is NOT marked finished, or errors — it never decodes as a
        // complete stream.
        for cut in 0..full.len() {
            let mut r = ChunkedReader::new(BufReader::new(&full[..cut]));
            let mut decoded = String::new();
            match r.read_to_string(&mut decoded) {
                Ok(_) => panic!("prefix of {cut} bytes decoded cleanly"),
                Err(e) => assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "cut at {cut}: {e:?}"
                ),
            }
            assert!(!r.finished(), "cut at {cut} claimed finished");
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut wire = Vec::new();
        Response::text(200, "ok\n")
            .header("X-Extra", "1")
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Extra: 1\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
