//! The wire form of a sweep or DSE job: one flat JSON object (the
//! dialect in `mpstream_core::json`) carrying the same parameters the
//! `mpstream sweep` / `mpstream dse` command lines do. A spec with a
//! `strategy` field is a DSE job; everything else is a sweep.
//!
//! Rather than maintain a parallel validation path, the server converts
//! the JSON back into the *exact* CLI argument vector and feeds it
//! through [`cli::parse_args`] — a submitted job is accepted iff the
//! equivalent offline command line would be, and executes with
//! identical semantics. The client side ([`request_to_spec`]) is the
//! inverse: it renders an already-parsed [`CliRequest`] into JSON.

use mpstream_core::cli::{self, CliMode, CliRequest};
use mpstream_core::json::{parse_flat_object, JsonLine, JsonObject, JsonValue};

use kernelgen::LoopMode;

/// The CLI token for a loop mode (`--loop <token>`).
fn loop_token(mode: LoopMode) -> &'static str {
    match mode {
        LoopMode::NdRange => "ndrange",
        LoopMode::SingleWorkItemFlat => "flat",
        LoopMode::SingleWorkItemNested => "nested",
    }
}

/// Render a parsed sweep or DSE request as the job-spec JSON line.
///
/// Only sweep- or dse-shaped requests make sense on the wire; the
/// local-only concerns (`--checkpoint`, `--resume`, `--trace`,
/// `--show-kernel`) are rejected — the server owns persistence for
/// submitted jobs.
pub fn request_to_spec(req: &CliRequest) -> Result<String, String> {
    if !matches!(req.mode, CliMode::Sweep | CliMode::Dse) {
        return Err(
            "only sweep or dse requests can be submitted (use the `sweep`/`dse` flags)".into(),
        );
    }
    if req.checkpoint.is_some() || req.resume {
        return Err("--checkpoint/--resume are local-only; the server persists jobs".into());
    }
    if req.trace.is_some() {
        return Err("--trace is local-only".into());
    }
    if req.show_kernel {
        return Err("--show-kernel is local-only".into());
    }
    if req.chart {
        return Err("--chart is local-only; use `mpstream watch` for a live chart".into());
    }
    let join = |list: &[u32]| {
        list.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut w = JsonLine::new();
    w.str_field("target", req.target.label());
    w.str_field(
        "kernels",
        &req.ops
            .iter()
            .map(|op| op.name())
            .collect::<Vec<_>>()
            .join(","),
    );
    w.u64_field("size_bytes", req.size_bytes);
    w.str_field(
        "dtype",
        match req.dtype {
            kernelgen::DataType::I32 => "int",
            kernelgen::DataType::F64 => "double",
        },
    );
    w.str_field("vectors", &join(&req.widths));
    w.str_field("unrolls", &join(&req.unrolls));
    w.str_field("loop", loop_token(req.loop_mode));
    w.str_field("pattern", &req.pattern.label());
    w.u64_field("ntimes", u64::from(req.ntimes));
    if let Some(jobs) = req.jobs {
        w.u64_field("jobs", jobs as u64);
    }
    if req.no_validate {
        w.raw_field("no_validate", "true");
    }
    if req.csv {
        w.raw_field("csv", "true");
    }
    if let Some((simd, cu)) = req.aocl {
        w.u64_field("simd", u64::from(simd));
        w.u64_field("compute_units", u64::from(cu));
    }
    if let Some(spec) = req.faults {
        w.str_field(
            "faults",
            &format!(
                "build={},timeout={},lost={},bitflip={}",
                spec.build, spec.timeout, spec.device_lost, spec.bit_flip
            ),
        );
    }
    if let Some(seed) = req.fault_seed {
        w.u64_field("fault_seed", seed);
    }
    if let Some(retries) = req.retries {
        w.u64_field("retries", u64::from(retries));
    }
    if let Some(ms) = req.deadline_ms {
        w.u64_field("deadline_ms", ms);
    }
    if req.mode == CliMode::Dse {
        // The strategy field is what marks a spec as a DSE job, so it is
        // always written (resolved to its default if the user gave none).
        w.str_field("strategy", req.strategy.label());
        if let Some(b) = req.budget {
            w.u64_field("budget", b as u64);
        }
        if let Some(s) = req.dse_seed {
            w.u64_field("dse_seed", s);
        }
    }
    Ok(w.finish())
}

/// Reconstruct the CLI argument vector a spec object stands for.
fn spec_to_argv(obj: &JsonObject) -> Result<Vec<String>, String> {
    let str_of = |k: &str| -> Result<Option<&str>, String> {
        match obj.get(k) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("field '{k}' must be a string")),
        }
    };
    let u64_of = |k: &str| -> Result<Option<u64>, String> {
        match obj.get(k) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("field '{k}' must be an unsigned number")),
        }
    };
    let bool_of = |k: &str| -> Result<bool, String> {
        match obj.get(k) {
            None => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("field '{k}' must be a bool")),
        }
    };

    fn flag(argv: &mut Vec<String>, name: &str, value: String) {
        argv.push(name.to_string());
        argv.push(value);
    }

    // A spec carrying a strategy is a DSE job; the subcommand and the
    // dse-only flags route through the same CLI grammar as everything
    // else, so validation stays single-sourced.
    let mut argv = if obj.get("strategy").is_some() {
        vec!["dse".to_string()]
    } else {
        vec!["sweep".to_string()]
    };
    if let Some(t) = str_of("target")? {
        flag(&mut argv, "--target", t.to_string());
    }
    for kernel in str_of("kernels")?.unwrap_or("").split(',') {
        if !kernel.is_empty() {
            flag(&mut argv, "--kernel", kernel.to_string());
        }
    }
    if let Some(n) = u64_of("size_bytes")? {
        flag(&mut argv, "--size", n.to_string());
    }
    if let Some(d) = str_of("dtype")? {
        flag(&mut argv, "--dtype", d.to_string());
    }
    if let Some(v) = str_of("vectors")? {
        flag(&mut argv, "--vectors", v.to_string());
    }
    if let Some(u) = str_of("unrolls")? {
        flag(&mut argv, "--unrolls", u.to_string());
    }
    if let Some(l) = str_of("loop")? {
        flag(&mut argv, "--loop", l.to_string());
    }
    if let Some(p) = str_of("pattern")? {
        flag(&mut argv, "--pattern", p.to_string());
    }
    if let Some(n) = u64_of("ntimes")? {
        flag(&mut argv, "--ntimes", n.to_string());
    }
    if let Some(n) = u64_of("jobs")? {
        flag(&mut argv, "--jobs", n.to_string());
    }
    if bool_of("no_validate")? {
        argv.push("--no-validate".to_string());
    }
    if bool_of("csv")? {
        argv.push("--csv".to_string());
    }
    if let Some(n) = u64_of("simd")? {
        flag(&mut argv, "--simd", n.to_string());
    }
    if let Some(n) = u64_of("compute_units")? {
        flag(&mut argv, "--compute-units", n.to_string());
    }
    if let Some(f) = str_of("faults")? {
        flag(&mut argv, "--faults", f.to_string());
    }
    if let Some(n) = u64_of("fault_seed")? {
        flag(&mut argv, "--fault-seed", n.to_string());
    }
    if let Some(n) = u64_of("retries")? {
        flag(&mut argv, "--retries", n.to_string());
    }
    if let Some(n) = u64_of("deadline_ms")? {
        flag(&mut argv, "--deadline-ms", n.to_string());
    }
    if let Some(s) = str_of("strategy")? {
        flag(&mut argv, "--strategy", s.to_string());
    }
    if let Some(n) = u64_of("budget")? {
        flag(&mut argv, "--budget", n.to_string());
    }
    if let Some(n) = u64_of("dse_seed")? {
        flag(&mut argv, "--dse-seed", n.to_string());
    }
    Ok(argv)
}

/// Parse a job-spec JSON line into the request it stands for, applying
/// the full CLI validation.
pub fn spec_to_request(line: &str) -> Result<CliRequest, String> {
    let obj = parse_flat_object(line).ok_or("spec is not a flat JSON object")?;
    for key in obj.keys() {
        const KNOWN: &[&str] = &[
            "target",
            "kernels",
            "size_bytes",
            "dtype",
            "vectors",
            "unrolls",
            "loop",
            "pattern",
            "ntimes",
            "jobs",
            "no_validate",
            "csv",
            "simd",
            "compute_units",
            "faults",
            "fault_seed",
            "retries",
            "deadline_ms",
            "strategy",
            "budget",
            "dse_seed",
        ];
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!("unknown spec field '{key}'"));
        }
    }
    let argv = spec_to_argv(&obj)?;
    match cli::parse_args(&argv)? {
        Some(req) => Ok(req),
        None => Err("spec parsed to --help".into()),
    }
}

/// How many points the job a spec describes will run: the whole
/// cartesian product for a sweep, the resolved evaluation budget for a
/// DSE search.
pub fn total_points(req: &CliRequest) -> usize {
    if req.mode == CliMode::Dse {
        let n = cli::dse_param_space(req).configs().len();
        cli::dse_budget(req, n)
    } else {
        cli::sweep_param_space(req).configs().len()
    }
}

/// Drop-in accessor used by the store: read a string field off a parsed
/// object, `None` when absent or non-string.
pub fn str_field<'a>(obj: &'a JsonObject, key: &str) -> Option<&'a str> {
    obj.get(key).and_then(JsonValue::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_cli(args: &[&str]) -> CliRequest {
        cli::parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .unwrap()
            .unwrap()
    }

    #[test]
    fn spec_round_trips_a_full_request() {
        let req = parse_cli(&[
            "sweep",
            "--target",
            "aocl",
            "--kernel",
            "copy",
            "--kernel",
            "triad",
            "--size",
            "64K",
            "--dtype",
            "double",
            "--vectors",
            "1,4,16",
            "--unrolls",
            "1,2",
            "--loop",
            "nested",
            "--pattern",
            "stride4",
            "--ntimes",
            "3",
            "--jobs",
            "2",
            "--no-validate",
            "--csv",
            "--simd",
            "2",
            "--compute-units",
            "4",
            "--faults",
            "build=0.2,timeout=0.1",
            "--fault-seed",
            "42",
            "--retries",
            "5",
            "--deadline-ms",
            "250",
        ]);
        let line = request_to_spec(&req).unwrap();
        let back = spec_to_request(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn spec_round_trips_defaults() {
        let req = parse_cli(&["sweep"]);
        let back = spec_to_request(&request_to_spec(&req).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn local_only_flags_are_rejected() {
        let mut req = parse_cli(&["sweep"]);
        req.checkpoint = Some("x.jsonl".into());
        assert!(request_to_spec(&req).is_err());
        let mut req = parse_cli(&["sweep"]);
        req.trace = Some("t.json".into());
        assert!(request_to_spec(&req).is_err());
        let mut req = parse_cli(&["sweep"]);
        req.chart = true;
        assert!(request_to_spec(&req).is_err(), "--chart is local-only");
        let req = parse_cli(&[]);
        assert!(request_to_spec(&req).is_err(), "run mode is not a job");
    }

    #[test]
    fn malformed_specs_error_cleanly() {
        assert!(spec_to_request("not json").is_err());
        assert!(spec_to_request("{\"surprise\":\"field\"}").is_err());
        assert!(
            spec_to_request("{\"target\":\"tpu\"}").is_err(),
            "cli validation applies"
        );
        assert!(spec_to_request("{\"vectors\":\"1,0\"}").is_err());
        assert!(spec_to_request("{\"ntimes\":\"three\"}").is_err());
    }

    #[test]
    fn spec_round_trips_a_dse_request() {
        let req = parse_cli(&[
            "dse",
            "--target",
            "aocl",
            "--kernel",
            "triad",
            "--strategy",
            "genetic",
            "--budget",
            "12",
            "--dse-seed",
            "7",
        ]);
        let line = request_to_spec(&req).unwrap();
        assert!(line.contains("\"strategy\":\"genetic\""), "{line}");
        let back = spec_to_request(&line).unwrap();
        assert_eq!(back, req);

        // Defaults round-trip too: the resolved strategy marks the spec
        // as DSE even when the user never passed --strategy.
        let plain = parse_cli(&["dse"]);
        let back = spec_to_request(&request_to_spec(&plain).unwrap()).unwrap();
        assert_eq!(back, plain);
        assert_eq!(back.mode, CliMode::Dse);
    }

    #[test]
    fn dse_spec_total_points_is_the_budget() {
        let req = parse_cli(&[
            "dse",
            "--kernel",
            "copy",
            "--kernel",
            "triad",
            "--vectors",
            "1,2,4,8,16",
            "--unrolls",
            "1,2,4",
        ]);
        // 90-point space, default budget = a tenth.
        assert_eq!(total_points(&req), 9);
        let explicit = parse_cli(&["dse", "--kernel", "copy", "--budget", "6"]);
        assert_eq!(total_points(&explicit), 6);
    }

    #[test]
    fn total_points_matches_the_cartesian_product() {
        let req = parse_cli(&[
            "sweep",
            "--kernel",
            "copy",
            "--vectors",
            "1,2,4",
            "--unrolls",
            "1,2",
        ]);
        assert_eq!(total_points(&req), 6);
    }
}
